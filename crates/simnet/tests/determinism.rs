//! Bit-level determinism of the simulator — the prerequisite for
//! reproducible fuzz corpora: a fuzzer genome (or a `RandomJitter` seed)
//! must map to exactly one trajectory, every time, at any flow count.

use ccmatic_simnet::{
    run_shared_link, run_simulation, AimdCca, Cca, LinearCca, MultiFlowConfig, MultiFlowResult,
    RandomJitter, SimConfig, SimResult, TableSchedule,
};

/// Bit-exact fingerprint of a single-flow result (f64 equality would hide
/// ±0.0 / NaN drift; the corpus store hashes bits).
fn sim_bits(r: &SimResult) -> Vec<u64> {
    let mut bits = vec![r.utilization.to_bits(), r.max_queue.to_bits(), r.avg_queue.to_bits()];
    for s in &r.steps {
        bits.extend([
            s.cwnd.to_bits(),
            s.arrivals.to_bits(),
            s.served.to_bits(),
            s.queue.to_bits(),
            s.wasted.to_bits(),
        ]);
    }
    bits
}

fn multi_bits(r: &MultiFlowResult) -> Vec<u64> {
    let mut bits = vec![r.jain_index.to_bits(), r.utilization.to_bits()];
    for f in &r.flows {
        bits.extend([f.throughput.to_bits(), f.max_queue.to_bits()]);
    }
    bits
}

#[test]
fn random_jitter_single_flow_is_bit_identical_across_runs() {
    let run = || {
        let mut cca = LinearCca::rocc();
        let mut sched = RandomJitter::new(0xf00d);
        run_simulation(&mut cca, &mut sched, &SimConfig::default())
    };
    assert_eq!(sim_bits(&run()), sim_bits(&run()));
}

#[test]
fn table_schedule_single_flow_is_bit_identical_across_runs() {
    // A genome-shaped schedule: dyadic λ/ω tables exactly as the fuzzer
    // emits them (k/16 quantization).
    let table = || TableSchedule {
        lambdas: (0..40).map(|i| (i % 17) as f64 / 16.0).collect(),
        omegas: (0..40).map(|i| ((i * 7) % 17) as f64 / 16.0).collect(),
    };
    let run = || {
        let mut cca = AimdCca::standard();
        let mut sched = table();
        let cfg = SimConfig { rounds: 60, warmup: 10, ..SimConfig::default() };
        run_simulation(&mut cca, &mut sched, &cfg)
    };
    assert_eq!(sim_bits(&run()), sim_bits(&run()));
}

#[test]
fn random_jitter_multi_flow_is_bit_identical_across_runs() {
    for n in [1usize, 4] {
        let run = || {
            let mut ccas: Vec<Box<dyn Cca>> = (0..n)
                .map(|i| -> Box<dyn Cca> {
                    if i % 2 == 0 {
                        Box::new(LinearCca::rocc())
                    } else {
                        Box::new(AimdCca::standard())
                    }
                })
                .collect();
            let mut sched = RandomJitter::new(99);
            run_shared_link(&mut ccas, &mut sched, &MultiFlowConfig::default())
        };
        assert_eq!(multi_bits(&run()), multi_bits(&run()), "{n} flows drifted");
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a trivially-constant fingerprint making the tests
    // above vacuous.
    let run = |seed| {
        let mut cca = LinearCca::rocc();
        let mut sched = RandomJitter::new(seed);
        run_simulation(&mut cca, &mut sched, &SimConfig::default())
    };
    assert_ne!(sim_bits(&run(1)), sim_bits(&run(2)));
}
