//! The token-bucket link with bounded non-congestive delay.

use ccmatic_num::SmallRng;

/// Static link parameters (mirrors `ccac_model::NetConfig`).
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Link rate `C` in BDP per Rm.
    pub rate: f64,
    /// Non-congestive delay bound `D` in Rm units.
    pub jitter: usize,
    /// Whether the link wastes surplus tokens while the sender is idle.
    pub waste: WastePolicy,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { rate: 1.0, jitter: 1, waste: WastePolicy::Eager }
    }
}

/// What the link does with tokens the sender cannot use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WastePolicy {
    /// Surplus tokens are discarded immediately (the adversarial choice the
    /// CCAC model allows — and the one that breaks window-undershooting
    /// CCAs).
    Eager,
    /// Tokens accumulate without bound (a benign, bufferbloat-style link).
    Never,
}

/// Chooses where in its feasibility band the link serves each step.
///
/// At step `t` the cumulative service `S(t)` may be anything in
/// `[lo, hi]` where `lo` enforces the lagged token floor and `hi` the token
/// cap (both clamped to available arrivals and monotonicity). A schedule is
/// the adversary's (or nature's) policy for that choice.
pub trait LinkSchedule {
    /// Return λ ∈ [0, 1]: 0 serves the minimum, 1 the maximum.
    fn lambda(&mut self, t: usize) -> f64;

    /// Fraction ω ∈ [0, 1] of this step's surplus tokens the link discards
    /// under [`WastePolicy::Eager`] (1 = classic eager waste, 0 = keep them
    /// all for later). The CCAC model admits any monotone waste process
    /// whose growth happens only while the queue sits at or under the token
    /// line, so a schedule may place waste anywhere in that band — but
    /// under-wasting raises later service floors above the arrival curve,
    /// which the model forbids; callers lifting partial-waste traces must
    /// re-check feasibility (`ccac_model::check_trace`).
    fn waste_fraction(&mut self, _t: usize) -> f64 {
        1.0
    }

    /// Diagnostic name.
    fn name(&self) -> String;
}

/// A fully explicit schedule: per-step λ (and optionally ω) read from
/// tables — the executable form of a fuzzer genome. Steps are 1-based as
/// in [`LinkState::step`]; beyond the table the last entry holds (an empty
/// λ table means the ideal link, an empty ω table means eager waste).
#[derive(Clone, Debug, Default)]
pub struct TableSchedule {
    /// Band position per step (`lambdas[t−1]` for step `t`).
    pub lambdas: Vec<f64>,
    /// Waste fraction per step (`omegas[t−1]` for step `t`).
    pub omegas: Vec<f64>,
}

impl TableSchedule {
    /// A schedule serving at band position λ everywhere with eager waste.
    pub fn uniform(lambda: f64, len: usize) -> Self {
        TableSchedule { lambdas: vec![lambda; len], omegas: Vec::new() }
    }
}

fn table_at(table: &[f64], t: usize, default: f64) -> f64 {
    let i = t.saturating_sub(1);
    table.get(i).copied().or_else(|| table.last().copied()).unwrap_or(default)
}

impl LinkSchedule for TableSchedule {
    fn lambda(&mut self, t: usize) -> f64 {
        table_at(&self.lambdas, t, 1.0)
    }

    fn waste_fraction(&mut self, t: usize) -> f64 {
        table_at(&self.omegas, t, 1.0)
    }

    fn name(&self) -> String {
        format!("table({} steps)", self.lambdas.len())
    }
}

/// Always serve as much as allowed — an ideal, jitter-free link.
#[derive(Clone, Debug, Default)]
pub struct IdealLink;

impl LinkSchedule for IdealLink {
    fn lambda(&mut self, _t: usize) -> f64 {
        1.0
    }
    fn name(&self) -> String {
        "ideal".into()
    }
}

/// Alternate between serving nothing extra and catching up in bursts — the
/// classic ACK-aggregation / jitter adversary (period configurable).
#[derive(Clone, Debug)]
pub struct AdversarialSawtooth {
    /// Steps per stall-then-burst cycle (≥ 2).
    pub period: usize,
}

impl Default for AdversarialSawtooth {
    fn default() -> Self {
        AdversarialSawtooth { period: 2 }
    }
}

impl LinkSchedule for AdversarialSawtooth {
    fn lambda(&mut self, t: usize) -> f64 {
        if t % self.period == self.period - 1 {
            1.0
        } else {
            0.0
        }
    }
    fn name(&self) -> String {
        format!("sawtooth(period {})", self.period)
    }
}

/// Uniformly random position in the band, seeded for reproducibility.
#[derive(Clone, Debug)]
pub struct RandomJitter {
    rng: SmallRng,
}

impl RandomJitter {
    /// Seeded RNG so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        RandomJitter { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl LinkSchedule for RandomJitter {
    fn lambda(&mut self, _t: usize) -> f64 {
        self.rng.next_f64()
    }
    fn name(&self) -> String {
        "random".into()
    }
}

/// Internal link state evolved by the runner.
#[derive(Clone, Debug)]
pub struct LinkState {
    /// Cumulative service S(t−1) so far.
    pub served: f64,
    /// Cumulative waste W(t−1).
    pub wasted: f64,
    /// History of W values (index = step), needed for the lagged floor.
    pub waste_history: Vec<f64>,
}

impl LinkState {
    /// Fresh link at trace start.
    pub fn new() -> Self {
        LinkState { served: 0.0, wasted: 0.0, waste_history: vec![0.0] }
    }

    /// Advance one step: given the step index `t` (1-based internally),
    /// cumulative arrivals `a`, the config and schedule, compute `S(t)` and
    /// update waste. Returns the new cumulative service.
    pub fn step(
        &mut self,
        t: usize,
        arrivals: f64,
        cfg: &LinkConfig,
        schedule: &mut dyn LinkSchedule,
    ) -> f64 {
        let tokens_now = cfg.rate * t as f64 - self.wasted;
        // Lagged token floor: C·(t−D) − W(t−D).
        let floor = if t >= cfg.jitter {
            let lag_t = t - cfg.jitter;
            let w_lag = self.waste_history.get(lag_t).copied().unwrap_or(0.0);
            cfg.rate * lag_t as f64 - w_lag
        } else {
            0.0
        };
        let hi = tokens_now.min(arrivals).max(self.served);
        let lo = floor.min(arrivals).max(self.served).min(hi);
        let lambda = schedule.lambda(t).clamp(0.0, 1.0);
        let served_now = lo + lambda * (hi - lo);
        self.served = served_now;
        // Waste: under the eager policy the link discards the schedule's
        // chosen fraction of every token the sender has no data for
        // (built-in schedules waste all of them).
        if cfg.waste == WastePolicy::Eager {
            let surplus = cfg.rate * t as f64 - self.wasted - arrivals;
            if surplus > 0.0 {
                self.wasted += schedule.waste_fraction(t).clamp(0.0, 1.0) * surplus;
            }
        }
        self.waste_history.push(self.wasted);
        served_now
    }
}

impl Default for LinkState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_serves_at_line_rate_when_backlogged() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        for t in 1..=10 {
            let s = link.step(t, 1e9, &cfg, &mut sched);
            assert!((s - t as f64).abs() < 1e-9, "t={t}, served={s}");
        }
    }

    #[test]
    fn sawtooth_lags_at_most_jitter() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = AdversarialSawtooth::default();
        for t in 1..=20 {
            let s = link.step(t, 1e9, &cfg, &mut sched);
            let floor = (t as f64 - cfg.jitter as f64).max(0.0);
            assert!(s >= floor - 1e-9, "t={t}: service {s} below floor {floor}");
            assert!(s <= t as f64 + 1e-9, "t={t}: service {s} above tokens");
        }
    }

    #[test]
    fn waste_accrues_when_idle() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        // Sender never sends: all tokens wasted.
        for t in 1..=5 {
            let s = link.step(t, 0.0, &cfg, &mut sched);
            assert_eq!(s, 0.0);
        }
        assert!((link.wasted - 5.0).abs() < 1e-9);
        // Late arrivals can only use post-idle tokens.
        let s = link.step(6, 100.0, &cfg, &mut sched);
        assert!((s - 1.0).abs() < 1e-9, "only 1 token since waste stopped, got {s}");
    }

    #[test]
    fn never_waste_accumulates_tokens() {
        let cfg = LinkConfig { waste: WastePolicy::Never, ..LinkConfig::default() };
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        for t in 1..=5 {
            link.step(t, 0.0, &cfg, &mut sched);
        }
        assert_eq!(link.wasted, 0.0);
        let s = link.step(6, 100.0, &cfg, &mut sched);
        assert!((s - 6.0).abs() < 1e-9, "all 6 accumulated tokens usable, got {s}");
    }

    #[test]
    fn service_never_exceeds_arrivals() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = RandomJitter::new(7);
        let mut arrivals = 0.0;
        for t in 1..=50 {
            arrivals += 0.3;
            let s = link.step(t, arrivals, &cfg, &mut sched);
            assert!(s <= arrivals + 1e-9);
        }
    }

    #[test]
    fn table_schedule_indexes_steps_and_holds_last_entry() {
        let mut sched = TableSchedule { lambdas: vec![0.0, 1.0, 0.5], omegas: vec![0.25] };
        assert_eq!(sched.lambda(1), 0.0);
        assert_eq!(sched.lambda(2), 1.0);
        assert_eq!(sched.lambda(3), 0.5);
        assert_eq!(sched.lambda(9), 0.5, "holds the last entry");
        assert_eq!(sched.waste_fraction(1), 0.25);
        assert_eq!(sched.waste_fraction(7), 0.25);
        let mut empty = TableSchedule::default();
        assert_eq!(empty.lambda(1), 1.0, "empty table = ideal link");
        assert_eq!(empty.waste_fraction(1), 1.0, "empty table = eager waste");
    }

    #[test]
    fn partial_waste_keeps_tokens_for_later() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        // Waste only half the surplus each idle step.
        let mut sched = TableSchedule { lambdas: vec![1.0], omegas: vec![0.5] };
        link.step(1, 0.0, &cfg, &mut sched);
        assert!((link.wasted - 0.5).abs() < 1e-9, "half of 1 surplus token, got {}", link.wasted);
        link.step(2, 0.0, &cfg, &mut sched);
        // Surplus at step 2: 2 − 0.5 − 0 = 1.5; waste grows by 0.75.
        assert!((link.wasted - 1.25).abs() < 1e-9, "got {}", link.wasted);
    }

    #[test]
    fn random_jitter_reproducible() {
        let mut a = RandomJitter::new(42);
        let mut b = RandomJitter::new(42);
        for t in 0..10 {
            assert_eq!(a.lambda(t), b.lambda(t));
        }
    }
}
