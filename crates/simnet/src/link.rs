//! The token-bucket link with bounded non-congestive delay.

use ccmatic_num::SmallRng;

/// Static link parameters (mirrors `ccac_model::NetConfig`).
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Link rate `C` in BDP per Rm.
    pub rate: f64,
    /// Non-congestive delay bound `D` in Rm units.
    pub jitter: usize,
    /// Whether the link wastes surplus tokens while the sender is idle.
    pub waste: WastePolicy,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { rate: 1.0, jitter: 1, waste: WastePolicy::Eager }
    }
}

/// What the link does with tokens the sender cannot use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WastePolicy {
    /// Surplus tokens are discarded immediately (the adversarial choice the
    /// CCAC model allows — and the one that breaks window-undershooting
    /// CCAs).
    Eager,
    /// Tokens accumulate without bound (a benign, bufferbloat-style link).
    Never,
}

/// Chooses where in its feasibility band the link serves each step.
///
/// At step `t` the cumulative service `S(t)` may be anything in
/// `[lo, hi]` where `lo` enforces the lagged token floor and `hi` the token
/// cap (both clamped to available arrivals and monotonicity). A schedule is
/// the adversary's (or nature's) policy for that choice.
pub trait LinkSchedule {
    /// Return λ ∈ [0, 1]: 0 serves the minimum, 1 the maximum.
    fn lambda(&mut self, t: usize) -> f64;

    /// Diagnostic name.
    fn name(&self) -> String;
}

/// Always serve as much as allowed — an ideal, jitter-free link.
#[derive(Clone, Debug, Default)]
pub struct IdealLink;

impl LinkSchedule for IdealLink {
    fn lambda(&mut self, _t: usize) -> f64 {
        1.0
    }
    fn name(&self) -> String {
        "ideal".into()
    }
}

/// Alternate between serving nothing extra and catching up in bursts — the
/// classic ACK-aggregation / jitter adversary (period configurable).
#[derive(Clone, Debug)]
pub struct AdversarialSawtooth {
    /// Steps per stall-then-burst cycle (≥ 2).
    pub period: usize,
}

impl Default for AdversarialSawtooth {
    fn default() -> Self {
        AdversarialSawtooth { period: 2 }
    }
}

impl LinkSchedule for AdversarialSawtooth {
    fn lambda(&mut self, t: usize) -> f64 {
        if t % self.period == self.period - 1 {
            1.0
        } else {
            0.0
        }
    }
    fn name(&self) -> String {
        format!("sawtooth(period {})", self.period)
    }
}

/// Uniformly random position in the band, seeded for reproducibility.
#[derive(Clone, Debug)]
pub struct RandomJitter {
    rng: SmallRng,
}

impl RandomJitter {
    /// Seeded RNG so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        RandomJitter { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl LinkSchedule for RandomJitter {
    fn lambda(&mut self, _t: usize) -> f64 {
        self.rng.next_f64()
    }
    fn name(&self) -> String {
        "random".into()
    }
}

/// Internal link state evolved by the runner.
#[derive(Clone, Debug)]
pub struct LinkState {
    /// Cumulative service S(t−1) so far.
    pub served: f64,
    /// Cumulative waste W(t−1).
    pub wasted: f64,
    /// History of W values (index = step), needed for the lagged floor.
    pub waste_history: Vec<f64>,
}

impl LinkState {
    /// Fresh link at trace start.
    pub fn new() -> Self {
        LinkState { served: 0.0, wasted: 0.0, waste_history: vec![0.0] }
    }

    /// Advance one step: given the step index `t` (1-based internally),
    /// cumulative arrivals `a`, the config and schedule, compute `S(t)` and
    /// update waste. Returns the new cumulative service.
    pub fn step(
        &mut self,
        t: usize,
        arrivals: f64,
        cfg: &LinkConfig,
        schedule: &mut dyn LinkSchedule,
    ) -> f64 {
        let tokens_now = cfg.rate * t as f64 - self.wasted;
        // Lagged token floor: C·(t−D) − W(t−D).
        let floor = if t >= cfg.jitter {
            let lag_t = t - cfg.jitter;
            let w_lag = self.waste_history.get(lag_t).copied().unwrap_or(0.0);
            cfg.rate * lag_t as f64 - w_lag
        } else {
            0.0
        };
        let hi = tokens_now.min(arrivals).max(self.served);
        let lo = floor.min(arrivals).max(self.served).min(hi);
        let lambda = schedule.lambda(t).clamp(0.0, 1.0);
        let served_now = lo + lambda * (hi - lo);
        self.served = served_now;
        // Waste: under the eager policy the link discards every token the
        // sender has no data for.
        if cfg.waste == WastePolicy::Eager {
            let surplus = cfg.rate * t as f64 - self.wasted - arrivals;
            if surplus > 0.0 {
                self.wasted += surplus;
            }
        }
        self.waste_history.push(self.wasted);
        served_now
    }
}

impl Default for LinkState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_serves_at_line_rate_when_backlogged() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        for t in 1..=10 {
            let s = link.step(t, 1e9, &cfg, &mut sched);
            assert!((s - t as f64).abs() < 1e-9, "t={t}, served={s}");
        }
    }

    #[test]
    fn sawtooth_lags_at_most_jitter() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = AdversarialSawtooth::default();
        for t in 1..=20 {
            let s = link.step(t, 1e9, &cfg, &mut sched);
            let floor = (t as f64 - cfg.jitter as f64).max(0.0);
            assert!(s >= floor - 1e-9, "t={t}: service {s} below floor {floor}");
            assert!(s <= t as f64 + 1e-9, "t={t}: service {s} above tokens");
        }
    }

    #[test]
    fn waste_accrues_when_idle() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        // Sender never sends: all tokens wasted.
        for t in 1..=5 {
            let s = link.step(t, 0.0, &cfg, &mut sched);
            assert_eq!(s, 0.0);
        }
        assert!((link.wasted - 5.0).abs() < 1e-9);
        // Late arrivals can only use post-idle tokens.
        let s = link.step(6, 100.0, &cfg, &mut sched);
        assert!((s - 1.0).abs() < 1e-9, "only 1 token since waste stopped, got {s}");
    }

    #[test]
    fn never_waste_accumulates_tokens() {
        let cfg = LinkConfig { waste: WastePolicy::Never, ..LinkConfig::default() };
        let mut link = LinkState::new();
        let mut sched = IdealLink;
        for t in 1..=5 {
            link.step(t, 0.0, &cfg, &mut sched);
        }
        assert_eq!(link.wasted, 0.0);
        let s = link.step(6, 100.0, &cfg, &mut sched);
        assert!((s - 6.0).abs() < 1e-9, "all 6 accumulated tokens usable, got {s}");
    }

    #[test]
    fn service_never_exceeds_arrivals() {
        let cfg = LinkConfig::default();
        let mut link = LinkState::new();
        let mut sched = RandomJitter::new(7);
        let mut arrivals = 0.0;
        for t in 1..=50 {
            arrivals += 0.3;
            let s = link.step(t, arrivals, &cfg, &mut sched);
            assert!(s <= arrivals + 1e-9);
        }
    }

    #[test]
    fn random_jitter_reproducible() {
        let mut a = RandomJitter::new(42);
        let mut b = RandomJitter::new(42);
        for t in 0..10 {
            assert_eq!(a.lambda(t), b.lambda(t));
        }
    }
}
