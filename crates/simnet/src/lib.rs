//! A concrete discrete-time simulator of the CCAC link model.
//!
//! The SMT encoding in [`ccac-model`](../ccac_model/index.html) reasons
//! about *all* traces; this crate executes *one* trace at a time, with the
//! same semantics, so that synthesized CCAs can be validated behaviorally
//! (the paper's authors sanity-checked RoCC the same way) and so the
//! benchmark harness can plot utilization/queue trajectories.
//!
//! Semantics mirror the verifier model exactly, per step `t` (time in Rm
//! units, data in BDP units, link rate `C`):
//!
//! 1. the CCA observes `ack(t) = S(t−1)` and history, and picks `cwnd(t)`;
//! 2. the sender fills its window: `A(t) = max(A(t−1), S(t−1) + cwnd(t))`;
//! 3. the link serves somewhere inside its feasibility band
//!    `[max(S(t−1), C·(t−D) − W(t−D) bounded by A), min(A(t), C·t − W(t))]`
//!    — where in the band is chosen by a pluggable [`LinkSchedule`]
//!    (ideal, adversarial sawtooth, or seeded-random jitter);
//! 4. if the sender has nothing queued above the token line, the surplus
//!    tokens are wasted (`W` grows) under the eager waste policy.
//!
//! Arithmetic is `f64`: the simulator is for behavioural validation and
//! plotting, not proofs — the proofs live in the SMT pipeline.

pub mod cca;
pub mod link;
pub mod multiflow;
pub mod runner;

pub use cca::{AimdCca, Cca, ConstCwnd, LinearCca, Observation, ThresholdCca};
pub use link::{
    AdversarialSawtooth, IdealLink, LinkConfig, LinkSchedule, RandomJitter, TableSchedule,
    WastePolicy,
};
pub use multiflow::{run_shared_link, FlowResult, MultiFlowConfig, MultiFlowResult};
pub use runner::{run_simulation, run_simulation_with_hook, SimConfig, SimResult, StepRecord};
