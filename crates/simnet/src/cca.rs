//! Congestion-control algorithms runnable on the simulator.

/// What a CCA sees at the start of round `t`.
///
/// Histories are indexed backwards: `ack_back(1)` is `ack(t−1)`,
/// `cwnd_back(1)` is `cwnd(t−1)`, etc. Lookbacks beyond the recorded
/// history saturate at the oldest value (ack) or 0 (cwnd), matching a flow
/// that has just started.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Current round number (starts at 0).
    pub t: usize,
    /// Cumulative-ACK samples: `acks[i]` is `ack(t−i)` for `i ≥ 1`
    /// (index 0 unused, kept for symmetric indexing).
    acks: Vec<f64>,
    /// Previous cwnd values: `cwnds[i]` is `cwnd(t−i)` for `i ≥ 1`.
    cwnds: Vec<f64>,
}

impl Observation {
    /// Build an observation from backwards histories (index `i` ↦ `t−i−1`).
    pub fn new(t: usize, ack_history: &[f64], cwnd_history: &[f64]) -> Self {
        let mut acks = vec![0.0];
        acks.extend_from_slice(ack_history);
        let mut cwnds = vec![0.0];
        cwnds.extend_from_slice(cwnd_history);
        Observation { t, acks, cwnds }
    }

    /// `ack(t−i)` (cumulative bytes ACKed), `i ≥ 1`. Saturates at the
    /// oldest recorded sample.
    pub fn ack_back(&self, i: usize) -> f64 {
        debug_assert!(i >= 1);
        if i < self.acks.len() {
            self.acks[i]
        } else {
            *self.acks.last().unwrap_or(&0.0)
        }
    }

    /// `cwnd(t−i)`, `i ≥ 1`. Returns 0 beyond recorded history.
    pub fn cwnd_back(&self, i: usize) -> f64 {
        debug_assert!(i >= 1);
        if i < self.cwnds.len() {
            self.cwnds[i]
        } else {
            0.0
        }
    }
}

/// A congestion-control algorithm operating at per-RTT granularity
/// (the paper's template granularity; prior work shows per-RTT summary
/// control matches per-ACK control in this model).
pub trait Cca {
    /// Choose `cwnd(t)` from the observation.
    fn on_round(&mut self, obs: &Observation) -> f64;

    /// Diagnostic name.
    fn name(&self) -> String;
}

/// The paper's linear template (Equation ii):
/// `cwnd(t) = Σᵢ αᵢ·cwnd(t−i) + βᵢ·ack(t−i) + γ`.
///
/// RoCC is `LinearCca::rocc()`: `cwnd(t) = ack(t−1) − ack(t−3) + 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearCca {
    /// Coefficients on historical cwnd, `alpha[i]` multiplying `cwnd(t−i−1)`.
    pub alpha: Vec<f64>,
    /// Coefficients on historical cumulative ACKs, `beta[i]` on `ack(t−i−1)`.
    pub beta: Vec<f64>,
    /// Additive constant γ (in BDP units; the "+1 MSS" of RoCC).
    pub gamma: f64,
}

impl LinearCca {
    /// RoCC (Equation in §4): `cwnd(t) = ack(t−1) − ack(t−3) + 1`.
    pub fn rocc() -> Self {
        LinearCca { alpha: vec![0.0; 3], beta: vec![1.0, 0.0, -1.0], gamma: 1.0 }
    }

    /// The paper's Equation (iii):
    /// `cwnd(t) = 3/2·ack(t−1) − 1/2·ack(t−2) − ack(t−3)`.
    pub fn eq_iii() -> Self {
        LinearCca { alpha: vec![0.0; 3], beta: vec![1.5, -0.5, -1.0], gamma: 0.0 }
    }
}

impl Cca for LinearCca {
    fn on_round(&mut self, obs: &Observation) -> f64 {
        let mut cwnd = self.gamma;
        for (i, a) in self.alpha.iter().enumerate() {
            cwnd += a * obs.cwnd_back(i + 1);
        }
        for (i, b) in self.beta.iter().enumerate() {
            cwnd += b * obs.ack_back(i + 1);
        }
        cwnd
    }

    fn name(&self) -> String {
        let mut parts = Vec::new();
        for (i, a) in self.alpha.iter().enumerate() {
            if *a != 0.0 {
                parts.push(format!("{a:+}·cwnd(t−{})", i + 1));
            }
        }
        for (i, b) in self.beta.iter().enumerate() {
            if *b != 0.0 {
                parts.push(format!("{b:+}·ack(t−{})", i + 1));
            }
        }
        if self.gamma != 0.0 {
            parts.push(format!("{:+}", self.gamma));
        }
        if parts.is_empty() {
            parts.push("0".into());
        }
        format!("cwnd(t) = {}", parts.join(" "))
    }
}

/// A fixed congestion window (useful as a failing baseline: small values
/// starve, large values build standing queues).
#[derive(Clone, Debug)]
pub struct ConstCwnd(pub f64);

impl Cca for ConstCwnd {
    fn on_round(&mut self, _obs: &Observation) -> f64 {
        self.0
    }

    fn name(&self) -> String {
        format!("const cwnd = {}", self.0)
    }
}

/// A two-branch conditional rule (the §4.1 template): when the last RTT
/// delivered at least `theta`, run the `then_branch`; otherwise the
/// `else_branch`. Mirrors `ccmatic::conditional::ConditionalCca` so
/// verified conditional rules can be validated behaviourally.
#[derive(Clone, Debug)]
pub struct ThresholdCca {
    /// Delivery threshold (BDP per RTT).
    pub theta: f64,
    /// Rule when delivery keeps up.
    pub then_branch: LinearCca,
    /// Rule when delivery stalls.
    pub else_branch: LinearCca,
}

impl Cca for ThresholdCca {
    fn on_round(&mut self, obs: &Observation) -> f64 {
        let delivered = obs.ack_back(1) - obs.ack_back(2);
        if delivered >= self.theta {
            self.then_branch.on_round(obs)
        } else {
            self.else_branch.on_round(obs)
        }
    }

    fn name(&self) -> String {
        format!(
            "if delivered ≥ {} then [{}] else [{}]",
            self.theta,
            self.then_branch.name(),
            self.else_branch.name()
        )
    }
}

/// Loss-less AIMD caricature: additive increase every round, multiplicative
/// decrease when the observed queue delay (inferred from ACK rate deficit)
/// exceeds a threshold. In an infinite-buffer lossless model classic AIMD
/// has no loss signal at all and grows its queue forever; this delay-backed
/// variant is the honest equivalent and still violates tight delay bounds.
#[derive(Clone, Debug)]
pub struct AimdCca {
    /// Additive increase per RTT (BDP units).
    pub increase: f64,
    /// Multiplicative decrease factor on congestion.
    pub decrease: f64,
    /// Queue-delay threshold (RTTs) that triggers decrease.
    pub delay_trigger: f64,
    cwnd: f64,
}

impl AimdCca {
    /// Standard parameters: +1 per RTT, halve on congestion, trigger at
    /// 8 RTTs of inferred standing queue.
    pub fn standard() -> Self {
        AimdCca { increase: 1.0, decrease: 0.5, delay_trigger: 8.0, cwnd: 1.0 }
    }
}

impl Cca for AimdCca {
    fn on_round(&mut self, obs: &Observation) -> f64 {
        // Inferred inflight beyond one BDP ≈ standing queue: cwnd − delivered
        // over the last RTT.
        let delivered = obs.ack_back(1) - obs.ack_back(2);
        let queue_est = (self.cwnd - delivered).max(0.0);
        if queue_est > self.delay_trigger {
            self.cwnd *= self.decrease;
        } else {
            self.cwnd += self.increase;
        }
        self.cwnd = self.cwnd.max(self.increase.min(1.0));
        self.cwnd
    }

    fn name(&self) -> String {
        format!("AIMD(+{}, ×{})", self.increase, self.decrease)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_saturating_lookback() {
        let obs = Observation::new(5, &[10.0, 8.0, 5.0], &[2.0, 2.0]);
        assert_eq!(obs.ack_back(1), 10.0);
        assert_eq!(obs.ack_back(3), 5.0);
        assert_eq!(obs.ack_back(7), 5.0, "saturates at oldest ack");
        assert_eq!(obs.cwnd_back(1), 2.0);
        assert_eq!(obs.cwnd_back(5), 0.0, "cwnd saturates at 0");
    }

    #[test]
    fn rocc_formula() {
        let mut rocc = LinearCca::rocc();
        // ack(t−1)=10, ack(t−3)=6 → cwnd = 10 − 6 + 1 = 5.
        let obs = Observation::new(4, &[10.0, 8.0, 6.0], &[0.0; 3]);
        assert_eq!(rocc.on_round(&obs), 5.0);
        assert!(rocc.name().contains("ack(t−1)"));
    }

    #[test]
    fn eq_iii_formula() {
        let mut cca = LinearCca::eq_iii();
        let obs = Observation::new(4, &[10.0, 8.0, 6.0], &[0.0; 3]);
        // 1.5·10 − 0.5·8 − 6 = 15 − 4 − 6 = 5.
        assert_eq!(cca.on_round(&obs), 5.0);
    }

    #[test]
    fn const_cwnd_is_constant() {
        let mut c = ConstCwnd(3.5);
        let obs = Observation::new(0, &[], &[]);
        assert_eq!(c.on_round(&obs), 3.5);
        assert_eq!(c.on_round(&obs), 3.5);
    }

    #[test]
    fn aimd_grows_until_trigger() {
        let mut aimd = AimdCca::standard();
        // Deliveries keep pace → growth.
        let obs = Observation::new(1, &[10.0, 8.0], &[2.0]);
        let c1 = aimd.on_round(&obs);
        let obs2 = Observation::new(2, &[12.0, 10.0], &[c1]);
        let c2 = aimd.on_round(&obs2);
        assert!(c2 > c1);
        // Stalled deliveries with a big window → decrease.
        let obs3 = Observation::new(3, &[12.0, 12.0], &[c2]);
        let mut big = AimdCca { cwnd: 100.0, ..AimdCca::standard() };
        let c3 = big.on_round(&obs3);
        assert!(c3 < 100.0);
    }
}
