//! Multiple flows sharing one bottleneck — the substrate for the paper's
//! §4.1 fairness/starvation discussion ("Recent work showed that network
//! delays can cause competing flows to starve for many known CCAs. It is
//! unknown if a CCA outside this class can avoid starvation").
//!
//! The shared link serves the aggregate arrival process inside the usual
//! token band; within a step, service is split across flows in proportion
//! to their standing backlogs (fluid processor sharing — the neutral
//! choice that attributes unfairness to the CCAs, not the scheduler).

use crate::cca::{Cca, Observation};
use crate::link::{LinkConfig, LinkSchedule, LinkState};

/// Per-flow output of a shared-link run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Steady-state throughput share of the link (fraction of `C`).
    pub throughput: f64,
    /// Max standing backlog attributable to the flow (BDP).
    pub max_queue: f64,
}

/// Aggregate output of [`run_shared_link`].
#[derive(Clone, Debug)]
pub struct MultiFlowResult {
    /// Per-flow results, in input order.
    pub flows: Vec<FlowResult>,
    /// Jain's fairness index over steady-state throughputs
    /// (1 = perfectly fair, 1/n = one flow hogs everything).
    pub jain_index: f64,
    /// Total link utilization.
    pub utilization: f64,
}

/// Shared-link run parameters.
#[derive(Clone, Debug)]
pub struct MultiFlowConfig {
    /// Rounds to simulate.
    pub rounds: usize,
    /// Warmup rounds excluded from metrics.
    pub warmup: usize,
    /// The shared link.
    pub link: LinkConfig,
}

impl Default for MultiFlowConfig {
    fn default() -> Self {
        MultiFlowConfig { rounds: 300, warmup: 60, link: LinkConfig::default() }
    }
}

/// Run `ccas` against one shared bottleneck.
pub fn run_shared_link(
    ccas: &mut [Box<dyn Cca>],
    schedule: &mut dyn LinkSchedule,
    cfg: &MultiFlowConfig,
) -> MultiFlowResult {
    let n = ccas.len();
    assert!(n > 0, "need at least one flow");
    let mut link = LinkState::new();
    let mut arrivals = vec![0.0f64; n]; // cumulative per flow
    let mut served = vec![0.0f64; n]; // cumulative per flow
    let mut ack_hist: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut cwnd_hist: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut served_prev = vec![0.0f64; n];
    let mut max_queue = vec![0.0f64; n];
    let mut served_at_warmup = vec![0.0f64; n];
    let mut total_served_prev = 0.0;

    for t in 0..cfg.rounds {
        // Each flow picks its window and fills it.
        for i in 0..n {
            let obs = Observation::new(t, &ack_hist[i], &cwnd_hist[i]);
            let cwnd = ccas[i].on_round(&obs).max(0.0);
            let target = served_prev[i] + cwnd;
            if target > arrivals[i] {
                arrivals[i] = target;
            }
            cwnd_hist[i].insert(0, cwnd);
            if cwnd_hist[i].len() > 16 {
                cwnd_hist[i].pop();
            }
        }
        // The link serves the aggregate inside its band.
        let total_arrivals: f64 = arrivals.iter().sum();
        let total_served = link.step(t + 1, total_arrivals, &cfg.link, schedule);
        let delta = (total_served - total_served_prev).max(0.0);
        total_served_prev = total_served;
        // Processor sharing: split the service increment by backlog.
        let backlogs: Vec<f64> = (0..n).map(|i| (arrivals[i] - served[i]).max(0.0)).collect();
        let total_backlog: f64 = backlogs.iter().sum();
        if total_backlog > 1e-12 {
            for i in 0..n {
                let share = delta * backlogs[i] / total_backlog;
                served[i] = (served[i] + share).min(arrivals[i]);
            }
        }
        // Feedback and metrics.
        for i in 0..n {
            ack_hist[i].insert(0, served_prev[i]);
            if ack_hist[i].len() > 16 {
                ack_hist[i].pop();
            }
            served_prev[i] = served[i];
            if t >= cfg.warmup {
                max_queue[i] = max_queue[i].max(arrivals[i] - served[i]);
            }
        }
        if t + 1 == cfg.warmup {
            served_at_warmup.copy_from_slice(&served);
        }
    }

    let window = (cfg.rounds - cfg.warmup).max(1) as f64;
    let throughputs: Vec<f64> =
        (0..n).map(|i| (served[i] - served_at_warmup[i]) / (cfg.link.rate * window)).collect();
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    let jain_index = if sum_sq > 1e-12 { sum * sum / (n as f64 * sum_sq) } else { 1.0 };
    MultiFlowResult {
        flows: (0..n)
            .map(|i| FlowResult { throughput: throughputs[i], max_queue: max_queue[i] })
            .collect(),
        jain_index,
        utilization: sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::{ConstCwnd, LinearCca};
    use crate::link::IdealLink;

    #[test]
    fn two_rocc_flows_share_fairly() {
        let mut ccas: Vec<Box<dyn Cca>> =
            vec![Box::new(LinearCca::rocc()), Box::new(LinearCca::rocc())];
        let mut sched = IdealLink;
        let res = run_shared_link(&mut ccas, &mut sched, &MultiFlowConfig::default());
        assert!(res.jain_index > 0.95, "Jain index {}", res.jain_index);
        assert!(res.utilization > 0.9, "utilization {}", res.utilization);
        for f in &res.flows {
            assert!(f.throughput > 0.4, "per-flow share {}", f.throughput);
        }
    }

    #[test]
    fn aggressive_constant_window_starves_a_peer() {
        // A huge fixed window keeps a standing backlog and, under
        // backlog-proportional sharing, crowds out a RoCC flow — the
        // §4.1-style starvation phenomenon.
        let mut ccas: Vec<Box<dyn Cca>> =
            vec![Box::new(ConstCwnd(30.0)), Box::new(LinearCca::rocc())];
        let mut sched = IdealLink;
        let res = run_shared_link(&mut ccas, &mut sched, &MultiFlowConfig::default());
        assert!(
            res.flows[0].throughput > res.flows[1].throughput,
            "the aggressive flow should dominate ({} vs {})",
            res.flows[0].throughput,
            res.flows[1].throughput
        );
        assert!(res.jain_index < 0.95, "expected measurable unfairness, {}", res.jain_index);
    }

    #[test]
    fn single_flow_matches_single_flow_runner() {
        let mut ccas: Vec<Box<dyn Cca>> = vec![Box::new(LinearCca::rocc())];
        let mut sched = IdealLink;
        let res = run_shared_link(&mut ccas, &mut sched, &MultiFlowConfig::default());
        assert!(res.utilization > 0.95);
        assert_eq!(res.flows.len(), 1);
        assert!((res.jain_index - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughputs_sum_to_utilization() {
        let mut ccas: Vec<Box<dyn Cca>> = vec![
            Box::new(LinearCca::rocc()),
            Box::new(LinearCca::eq_iii()),
            Box::new(ConstCwnd(2.0)),
        ];
        let mut sched = IdealLink;
        let res = run_shared_link(&mut ccas, &mut sched, &MultiFlowConfig::default());
        let sum: f64 = res.flows.iter().map(|f| f.throughput).sum();
        assert!((sum - res.utilization).abs() < 1e-9);
        assert!(res.utilization <= 1.0 + 1e-9);
    }
}
