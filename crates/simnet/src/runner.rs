//! Simulation driver: CCA × link schedule → trajectory and metrics.

use crate::cca::{Cca, Observation};
use crate::link::{LinkConfig, LinkSchedule, LinkState};

/// Run parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of rounds to simulate.
    pub rounds: usize,
    /// Rounds to discard before computing steady-state metrics (ramp-up).
    pub warmup: usize,
    /// Link parameters.
    pub link: LinkConfig,
    /// Initial backlog in the queue (BDP units) — the adversarial initial
    /// condition of the verifier model.
    pub initial_backlog: f64,
    /// Initial cwnd used before the CCA has history.
    pub initial_cwnd: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 200,
            warmup: 20,
            link: LinkConfig::default(),
            initial_backlog: 0.0,
            initial_cwnd: 1.0,
        }
    }
}

/// One row of the trajectory.
#[derive(Clone, Copy, Debug)]
pub struct StepRecord {
    /// Round index.
    pub t: usize,
    /// cwnd chosen this round.
    pub cwnd: f64,
    /// Cumulative arrivals after sending.
    pub arrivals: f64,
    /// Cumulative service after the link step.
    pub served: f64,
    /// Standing queue (arrivals − served).
    pub queue: f64,
    /// Cumulative wasted tokens.
    pub wasted: f64,
}

/// Aggregated outcome of a run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-round trajectory.
    pub steps: Vec<StepRecord>,
    /// `(S(end) − S(warmup)) / (C · window)` — steady-state utilization.
    pub utilization: f64,
    /// Max standing queue after warmup (BDP ≈ RTTs of delay at C = 1).
    pub max_queue: f64,
    /// Mean standing queue after warmup.
    pub avg_queue: f64,
}

/// Execute `cca` against the link for `cfg.rounds` rounds.
pub fn run_simulation(
    cca: &mut dyn Cca,
    schedule: &mut dyn LinkSchedule,
    cfg: &SimConfig,
) -> SimResult {
    run_simulation_with_hook(cca, schedule, cfg, &mut |_| {})
}

/// [`run_simulation`] with a per-step observer: `hook` sees every
/// [`StepRecord`] as it is produced, before the next round runs — letting
/// callers (fitness functions, live plotters) fold over the trajectory
/// without waiting for, or re-scanning, the finished result.
pub fn run_simulation_with_hook(
    cca: &mut dyn Cca,
    schedule: &mut dyn LinkSchedule,
    cfg: &SimConfig,
    hook: &mut dyn FnMut(&StepRecord),
) -> SimResult {
    let mut link = LinkState::new();
    let mut arrivals = cfg.initial_backlog;
    let mut ack_history: Vec<f64> = Vec::new(); // newest first
    let mut cwnd_history: Vec<f64> = Vec::new();
    let mut steps = Vec::with_capacity(cfg.rounds);
    let mut served_prev = 0.0;

    for t in 0..cfg.rounds {
        // ACK feedback is one propagation unit old.
        let obs = Observation::new(t, &ack_history, &cwnd_history);
        let cwnd = if t == 0 && cwnd_history.is_empty() {
            cfg.initial_cwnd.max(cca.on_round(&obs))
        } else {
            cca.on_round(&obs)
        };
        // Aggressive cwnd-limited sender.
        let window_target = served_prev + cwnd;
        arrivals = arrivals.max(window_target);
        // Link serves within its band (simulator steps are 1-based).
        let served = link.step(t + 1, arrivals, &cfg.link, schedule);
        let record =
            StepRecord { t, cwnd, arrivals, served, queue: arrivals - served, wasted: link.wasted };
        hook(&record);
        steps.push(record);
        // Shift histories (newest first).
        ack_history.insert(0, served_prev);
        cwnd_history.insert(0, cwnd);
        if ack_history.len() > 16 {
            ack_history.pop();
        }
        if cwnd_history.len() > 16 {
            cwnd_history.pop();
        }
        served_prev = served;
    }

    let w0 = cfg.warmup.min(cfg.rounds.saturating_sub(1));
    let window = (cfg.rounds - w0).max(1) as f64;
    let s_start = if w0 == 0 { 0.0 } else { steps[w0 - 1].served };
    let s_end = steps.last().map(|r| r.served).unwrap_or(0.0);
    let utilization = (s_end - s_start) / (cfg.link.rate * window);
    let tail = &steps[w0..];
    let max_queue = tail.iter().map(|r| r.queue).fold(0.0, f64::max);
    let avg_queue = tail.iter().map(|r| r.queue).sum::<f64>() / tail.len().max(1) as f64;

    SimResult { steps, utilization, max_queue, avg_queue }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cca::{AimdCca, ConstCwnd, LinearCca};
    use crate::link::{AdversarialSawtooth, IdealLink, RandomJitter};

    #[test]
    fn rocc_on_ideal_link_full_utilization_bounded_queue() {
        let mut cca = LinearCca::rocc();
        let mut sched = IdealLink;
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        assert!(res.utilization > 0.95, "utilization {}", res.utilization);
        // Paper: RoCC converges to a queue of BDP + MSS on an ideal link.
        assert!(res.max_queue <= 2.0 + 1e-6, "queue {}", res.max_queue);
    }

    #[test]
    fn rocc_survives_adversarial_jitter() {
        let mut cca = LinearCca::rocc();
        let mut sched = AdversarialSawtooth::default();
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        assert!(res.utilization >= 0.5, "utilization {}", res.utilization);
        assert!(res.max_queue <= 4.0 + 1e-6, "queue {}", res.max_queue);
    }

    #[test]
    fn rocc_drains_initial_backlog() {
        let mut cca = LinearCca::rocc();
        let mut sched = IdealLink;
        let cfg = SimConfig { initial_backlog: 50.0, warmup: 100, ..SimConfig::default() };
        let res = run_simulation(&mut cca, &mut sched, &cfg);
        assert!(res.max_queue <= 3.0, "backlog should drain, max queue {}", res.max_queue);
    }

    #[test]
    fn small_const_cwnd_starves_under_jitter() {
        // cwnd = 1 BDP exactly: eager waste + sawtooth jitter drop
        // utilization well below 1 (the paper's motivation for RoCC's +1).
        let mut cca = ConstCwnd(1.0);
        let mut sched = AdversarialSawtooth::default();
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        assert!(res.utilization < 0.95, "expected degraded utilization, got {}", res.utilization);
    }

    #[test]
    fn large_const_cwnd_builds_standing_queue() {
        let mut cca = ConstCwnd(10.0);
        let mut sched = IdealLink;
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        assert!(res.max_queue > 4.0, "expected standing queue > 4, got {}", res.max_queue);
        assert!(res.utilization > 0.95);
    }

    #[test]
    fn aimd_oscillates_but_keeps_link_busy() {
        let mut cca = AimdCca::standard();
        let mut sched = IdealLink;
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        assert!(res.utilization > 0.8, "AIMD utilization {}", res.utilization);
        // AIMD's sawtooth spends time above RoCC's queue bound.
        assert!(res.max_queue > 2.0, "AIMD max queue {}", res.max_queue);
    }

    #[test]
    fn random_jitter_runs_are_reproducible() {
        let cfg = SimConfig::default();
        let run = |seed| {
            let mut cca = LinearCca::rocc();
            let mut sched = RandomJitter::new(seed);
            run_simulation(&mut cca, &mut sched, &cfg).utilization
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn trajectory_invariants_hold() {
        let mut cca = LinearCca::rocc();
        let mut sched = RandomJitter::new(3);
        let res = run_simulation(&mut cca, &mut sched, &SimConfig::default());
        let mut prev_a = 0.0;
        let mut prev_s = 0.0;
        for r in &res.steps {
            assert!(r.arrivals >= prev_a - 1e-9, "A monotone");
            assert!(r.served >= prev_s - 1e-9, "S monotone");
            assert!(r.served <= r.arrivals + 1e-9, "S ≤ A");
            assert!(r.queue >= -1e-9, "queue nonnegative");
            prev_a = r.arrivals;
            prev_s = r.served;
        }
    }
}
