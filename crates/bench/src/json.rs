//! A minimal JSON value + serializer, so the bench binaries can emit
//! machine-readable `BENCH_*.json` files without pulling a serialization
//! dependency into the workspace.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (iteration counts, probe counts).
    UInt(u64),
    /// A float (wall-clock seconds). Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Serialize `value` to `path`, logging the path to stderr.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())?;
    eprintln!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::Str("table1".into())),
            ("wall_s", Json::Num(1.5)),
            ("solved", Json::Bool(true)),
            ("cells", Json::Arr(vec![Json::UInt(7), Json::Null])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"table1\""));
        assert!(s.contains("\"wall_s\": 1.5"));
        assert!(s.contains("\"cells\": ["));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }
}
