//! A small fixed-iteration timing harness for the `benches/` binaries
//! (`harness = false`), replacing the external benchmark framework: run a
//! closure a fixed number of times after a warmup, report total / mean /
//! min, and hand back the numbers for JSON emission.

use std::time::{Duration, Instant};

/// Timing summary for one benchmark case.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Case label.
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: u32,
    /// Total wall-clock across the timed iterations.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl MicroResult {
    /// Mean time per iteration.
    pub fn mean(&self) -> Duration {
        self.total / self.iters.max(1)
    }
}

/// Run `f` `warmup + iters` times, timing the last `iters`, and print a
/// one-line summary to stderr.
pub fn bench_case(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) -> MicroResult {
    for _ in 0..warmup {
        f();
    }
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let result = MicroResult { name: name.to_string(), iters: iters.max(1), total, min };
    eprintln!(
        "{name}: mean {:.3} ms, min {:.3} ms over {} iters",
        result.mean().as_secs_f64() * 1e3,
        result.min.as_secs_f64() * 1e3,
        result.iters
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let mut calls = 0u32;
        let r = bench_case("spin", 2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(r.iters, 5);
        assert!(r.min <= r.mean());
    }
}
