//! Certified verification of the known-CCA set plus a certified synthesis
//! cell: every UNSAT verdict (including each WCE binary-search
//! infeasibility probe) must carry a DRAT+Farkas certificate that the
//! independent checker in `ccmatic-proof` accepts, and every SAT verdict an
//! exact-audited model. A rejected certificate panics inside the verifier,
//! so this binary exiting 0 *is* the acceptance statement.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin certify -- [--budget-secs N]
//! ```
//!
//! Emits `BENCH_certify.json` with per-CCA certificate statistics and the
//! certified-vs-plain overhead factor on the No-cwnd/Small RP+WCE cell.

use ccac_model::Thresholds;
use ccmatic::known;
use ccmatic::synth::OptMode;
use ccmatic::template::CcaSpec;
use ccmatic::verifier::{CcaVerifier, VerifyConfig};
use ccmatic_bench::{run_cell_with, table1_rows, write_json, Json, Scale};
use ccmatic_num::{rat, Rat};
use std::process::ExitCode;
use std::time::Duration;

fn certified_verify(spec: &CcaSpec, worst_case: bool) -> (bool, CcaVerifier) {
    let rows = table1_rows(Scale::Ci);
    let mut net = rows[0].net.clone();
    net.history = spec.beta.len().max(spec.alpha.len()) + 1;
    let mut v = CcaVerifier::new(VerifyConfig {
        net,
        thresholds: Thresholds::default(),
        worst_case,
        wce_precision: rat(1, 2),
        incremental: true,
        certify: true,
        search: Default::default(),
        theory_sync: true,
    });
    let pass = v.verify(spec).is_ok();
    (pass, v)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(120);

    // The known-CCA set: RoCC plus two reference variants the paper
    // discusses. Verdicts differ (RoCC passes, a constant window is
    // refuted); the invariant under test is that *every* verdict is backed
    // by an accepted certificate or an exact-audited model.
    let cases: Vec<(&str, CcaSpec)> = vec![
        ("rocc", known::rocc()),
        ("eq_iii", known::eq_iii()),
        ("const_cwnd_2", known::const_cwnd(Rat::from(2i64))),
    ];
    let mut json_cases = Vec::new();
    for (name, spec) in &cases {
        for worst_case in [false, true] {
            let (pass, v) = certified_verify(spec, worst_case);
            let a = v.cert_audit;
            println!(
                "{name}{}: {} — {} certificates replayed ({} clauses, {} bytes, {:.2} ms in checker)",
                if worst_case { " (WCE)" } else { "" },
                if pass { "VERIFIED" } else { "REFUTED" },
                a.checked,
                a.clauses,
                a.bytes,
                a.check_ns as f64 / 1e6,
            );
            json_cases.push(Json::obj(vec![
                ("cca", Json::Str((*name).into())),
                ("worst_case", Json::Bool(worst_case)),
                ("verified", Json::Bool(pass)),
                ("certs_checked", Json::UInt(a.checked)),
                ("proof_clauses", Json::UInt(a.clauses)),
                ("cert_bytes", Json::UInt(a.bytes)),
                ("check_ms", Json::Num(a.check_ns as f64 / 1e6)),
                ("solver_probes", Json::UInt(v.solver_probes)),
            ]));
        }
    }

    // Certified synthesis on the Table-1 No-cwnd/Small RP+WCE cell, next to
    // the plain run, so the certification overhead factor is on record.
    let rows = table1_rows(Scale::Ci);
    let budget = Duration::from_secs(budget_secs);
    println!("\nrunning No-cwnd/Small RP+WCE, plain …");
    let plain = run_cell_with(&rows[0], OptMode::RangePruningWce, budget, true, 1, false, true);
    println!("running No-cwnd/Small RP+WCE, certified …");
    let cert = run_cell_with(&rows[0], OptMode::RangePruningWce, budget, true, 1, true, true);
    let overhead = cert.wall.as_secs_f64() / plain.wall.as_secs_f64().max(1e-9);
    println!(
        "plain {:.2}s vs certified {:.2}s → {overhead:.2}x overhead ({} proof clauses, {} cert bytes, {:.1} ms in checker)",
        plain.wall.as_secs_f64(),
        cert.wall.as_secs_f64(),
        cert.proof_clauses,
        cert.cert_bytes,
        cert.check_ms,
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("certify".into())),
        ("budget_secs", Json::UInt(budget_secs)),
        ("cases", Json::Arr(json_cases)),
        ("synth_plain", plain.to_json()),
        ("synth_certified", cert.to_json()),
        ("certify_overhead", Json::Num(overhead)),
    ]);
    let _ = write_json("BENCH_certify.json", &json);

    if !plain.solved || !cert.solved {
        eprintln!("certify: synthesis cell failed to solve within {budget_secs}s");
        return ExitCode::FAILURE;
    }
    if cert.proof_clauses == 0 || cert.cert_bytes == 0 {
        eprintln!("certify: certified run produced no certificates");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
