//! Regenerate §4's threshold observations (E3/E4): solution counts as the
//! utilization and delay targets move.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin threshold_sweep -- [--scale ci|paper] [--budget-secs N]
//! ```

use ccac_model::Thresholds;
use ccmatic::sweep::{render_table, sweep_delay, sweep_utilization};
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic_bench::{table1_rows, Scale};
use ccmatic_cegis::Budget;
use ccmatic_num::{int, rat};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "paper") {
        Scale::Paper
    } else {
        Scale::Ci
    };
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(600);

    // The paper sweeps the No-cwnd/Large space; at ci scale we sweep the
    // Small row so the full sweep fits in minutes.
    let rows = table1_rows(scale);
    let row = match scale {
        Scale::Paper => &rows[1],
        Scale::Ci => &rows[0],
    };
    let base = SynthOptions {
        shape: row.shape.clone(),
        net: row.net.clone(),
        thresholds: Thresholds::default(),
        mode: OptMode::RangePruningWce,
        budget: Budget {
            max_iterations: 1_000_000,
            max_wall: Duration::from_secs(budget_secs),
        },
        wce_precision: rat(1, 2),
    };

    println!("# Threshold sweeps over {} / {}\n", row.params, row.domain_label);

    println!("## E4: delay sweep at util ≥ 1/2");
    println!("paper: 245 @ ≤8×RTT · 12 @ ≤4 · 9 @ ≤3.6 · 0 @ ≤3\n");
    let rows = sweep_delay(&base, &[int(8), int(4), rat(18, 5), int(3)]);
    println!("{}", render_table(&rows));

    println!("## E3: utilization sweep at delay ≤ 4×RTT");
    println!("paper: 12 @ ≥50% · 2 @ ≥65% · 1 @ ≥70% (Eq. iii)\n");
    let rows = sweep_utilization(&base, &[rat(1, 2), rat(13, 20), rat(7, 10)]);
    println!("{}", render_table(&rows));
}
