//! Regenerate §4's threshold observations (E3/E4): solution counts as the
//! utilization and delay targets move.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin threshold_sweep -- [--scale ci|paper] [--budget-secs N]
//! ```
//!
//! Sweep points fan out across a worker pool (override with
//! `CCMATIC_SWEEP_THREADS`). Emits `BENCH_threshold_sweep.json` with the
//! machine-readable numbers.

use ccac_model::Thresholds;
use ccmatic::sweep::{render_table, sweep_delay, sweep_threads, sweep_utilization, SweepRow};
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic_bench::{table1_rows, write_json, Json, Scale};
use ccmatic_cegis::Budget;
use ccmatic_num::{int, rat, Rat};
use std::time::{Duration, Instant};

fn sweep_json(rows: &[SweepRow], values: &[Rat], wall_s: f64) -> Json {
    Json::obj(vec![
        ("wall_s", Json::Num(wall_s)),
        (
            "points",
            Json::Arr(
                rows.iter()
                    .zip(values)
                    .map(|(row, v)| {
                        Json::obj(vec![
                            ("threshold", Json::Str(v.to_string())),
                            ("solutions", Json::UInt(row.result.solutions.len() as u64)),
                            ("complete", Json::Bool(row.result.complete)),
                            ("iterations", Json::UInt(row.result.stats.iterations)),
                            ("wall_s", Json::Num(row.result.stats.wall.as_secs_f64())),
                            ("solver_probes", Json::UInt(row.result.solver_probes)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "paper") { Scale::Paper } else { Scale::Ci };
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(600);

    // The paper sweeps the No-cwnd/Large space; at ci scale we sweep the
    // Small row so the full sweep fits in minutes.
    let rows = table1_rows(scale);
    let row = match scale {
        Scale::Paper => &rows[1],
        Scale::Ci => &rows[0],
    };
    let base = SynthOptions {
        shape: row.shape.clone(),
        net: row.net.clone(),
        thresholds: Thresholds::default(),
        mode: OptMode::RangePruningWce,
        budget: Budget { max_iterations: 1_000_000, max_wall: Duration::from_secs(budget_secs) },
        wce_precision: rat(1, 2),
        incremental: true,
        threads: 1,
        seed: 0,
        dispatch_min: ccmatic::synth::DEFAULT_DISPATCH_MIN,
        certify: false,
        region_pruning: true,
    };

    let threads = sweep_threads();
    println!(
        "# Threshold sweeps over {} / {} ({threads} worker threads)\n",
        row.params, row.domain_label
    );

    println!("## E4: delay sweep at util ≥ 1/2");
    println!("paper: 245 @ ≤8×RTT · 12 @ ≤4 · 9 @ ≤3.6 · 0 @ ≤3\n");
    let delay_values = [int(8), int(4), rat(18, 5), int(3)];
    let t0 = Instant::now();
    let delay_rows = sweep_delay(&base, &delay_values);
    let delay_wall = t0.elapsed().as_secs_f64();
    println!("{}", render_table(&delay_rows));
    println!("sweep wall: {delay_wall:.1}s\n");

    println!("## E3: utilization sweep at delay ≤ 4×RTT");
    println!("paper: 12 @ ≥50% · 2 @ ≥65% · 1 @ ≥70% (Eq. iii)\n");
    let util_values = [rat(1, 2), rat(13, 20), rat(7, 10)];
    let t0 = Instant::now();
    let util_rows = sweep_utilization(&base, &util_values);
    let util_wall = t0.elapsed().as_secs_f64();
    println!("{}", render_table(&util_rows));
    println!("sweep wall: {util_wall:.1}s");

    let json = Json::obj(vec![
        ("bench", Json::Str("threshold_sweep".into())),
        ("scale", Json::Str(format!("{scale:?}").to_lowercase())),
        ("budget_secs", Json::UInt(budget_secs)),
        ("threads", Json::UInt(threads as u64)),
        ("params", Json::Str(row.params.into())),
        ("domain", Json::Str(row.domain_label.into())),
        ("delay_sweep", sweep_json(&delay_rows, &delay_values, delay_wall)),
        ("utilization_sweep", sweep_json(&util_rows, &util_values, util_wall)),
    ]);
    let _ = write_json("BENCH_threshold_sweep.json", &json);
}
