//! Regenerate §4's threshold observations (E3/E4): solution counts as the
//! utilization and delay targets move.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin threshold_sweep -- \
//!     [--scale ci|paper] [--budget-secs N] [--sweep-budget-secs N] \
//!     [--no-warm-start] [--cache-dir DIR] [--require-cached] [--out FILE]
//! ```
//!
//! By default each axis runs warm-started: points execute sequentially
//! loose→tight, carrying re-validated counterexample traces and
//! pre-verified solutions forward. `--no-warm-start` restores the cold
//! parallel fan-out (worker pool, override with `CCMATIC_SWEEP_THREADS`).
//! With `--cache-dir` every point consults (and populates) the persistent
//! certificate-backed result cache; `--require-cached` then fails the run
//! unless *every* point was answered from the cache with zero solver
//! probes — CI uses this to prove the cache actually short-circuits.
//!
//! The sweep-level wall budget (`--sweep-budget-secs`, default
//! `--budget-secs`) bounds each whole axis: successive points get only the
//! wall that remains, and overruns are reported as `budget_exceeded` in
//! the JSON instead of silently blowing past the budget.
//!
//! Emits `BENCH_threshold_sweep.json` (or `--out FILE`) with the
//! machine-readable numbers.

use ccac_model::Thresholds;
use ccmatic::cache::ResultCache;
use ccmatic::sweep::{render_table, sweep_threads, sweep_with_config, SweepConfig, SweepReport};
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic_bench::{table1_rows, write_json, Json, Scale};
use ccmatic_cegis::Budget;
use ccmatic_num::{int, rat, Rat};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn sweep_json(report: &SweepReport, values: &[Rat], wall_s: f64) -> Json {
    let cs = &report.cache_stats;
    Json::obj(vec![
        ("wall_s", Json::Num(wall_s)),
        ("budget_exceeded", Json::Bool(report.budget_exceeded)),
        (
            "cache",
            Json::obj(vec![
                ("hits", Json::UInt(cs.hits)),
                ("misses", Json::UInt(cs.misses)),
                ("rejected", Json::UInt(cs.rejected)),
                ("stores", Json::UInt(cs.stores)),
                ("cert_ms", Json::Num(cs.cert_ms)),
            ]),
        ),
        (
            "points",
            Json::Arr(
                report
                    .rows
                    .iter()
                    .zip(values)
                    .map(|(row, v)| {
                        let s = &row.result.stats;
                        Json::obj(vec![
                            ("threshold", Json::Str(v.to_string())),
                            ("solutions", Json::UInt(row.result.solutions.len() as u64)),
                            ("complete", Json::Bool(row.result.complete)),
                            ("iterations", Json::UInt(s.iterations)),
                            ("wall_s", Json::Num(s.wall.as_secs_f64())),
                            ("solver_probes", Json::UInt(row.result.solver_probes)),
                            ("warm_traces_seeded", Json::UInt(s.warm_traces_seeded)),
                            ("warm_traces_rejected", Json::UInt(s.warm_traces_rejected)),
                            ("warm_solutions_confirmed", Json::UInt(s.warm_solutions_confirmed)),
                            ("cache_hits", Json::UInt(s.cache_hits)),
                            ("cache_cert_ms", Json::Num(s.cache_cert_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `--require-cached`: every point must have been answered by the cache
/// (certificate re-check only, zero solver probes).
fn require_cached(axis: &str, report: &SweepReport, values: &[Rat]) -> bool {
    let mut ok = true;
    for (row, v) in report.rows.iter().zip(values) {
        if row.result.stats.cache_hits == 0 || row.result.solver_probes > 0 {
            eprintln!(
                "require-cached FAILED: {axis} point {v} re-solved \
                 (cache hits {}, solver probes {})",
                row.result.stats.cache_hits, row.result.solver_probes
            );
            ok = false;
        }
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |k: &str| args.iter().any(|a| a == k);
    let opt = |k: &str| args.windows(2).find(|w| w[0] == k).map(|w| w[1].clone());
    let scale = if args.iter().any(|a| a == "paper") { Scale::Paper } else { Scale::Ci };
    let budget_secs: u64 = opt("--budget-secs").and_then(|v| v.parse().ok()).unwrap_or(600);
    let sweep_budget_secs: u64 =
        opt("--sweep-budget-secs").and_then(|v| v.parse().ok()).unwrap_or(budget_secs);
    let warm_start = !flag("--no-warm-start");
    let cache_dir = opt("--cache-dir");
    let out = opt("--out").unwrap_or_else(|| "BENCH_threshold_sweep.json".into());

    // The paper sweeps the No-cwnd/Large space; at ci scale we sweep the
    // Small row so the full sweep fits in minutes.
    let rows = table1_rows(scale);
    let row = match scale {
        Scale::Paper => &rows[1],
        Scale::Ci => &rows[0],
    };
    let base = SynthOptions {
        shape: row.shape.clone(),
        net: row.net.clone(),
        thresholds: Thresholds::default(),
        mode: OptMode::RangePruningWce,
        budget: Budget { max_iterations: 1_000_000, max_wall: Duration::from_secs(budget_secs) },
        wce_precision: rat(1, 2),
        incremental: true,
        threads: 1,
        seed: 0,
        dispatch_min: ccmatic::synth::DEFAULT_DISPATCH_MIN,
        certify: false,
        region_pruning: true,
        theory_sync: true,
    };

    let make_cfg = || SweepConfig {
        threads: sweep_threads(),
        warm_start,
        cache: cache_dir.as_ref().map(|d| ResultCache::new(d).expect("unusable --cache-dir")),
        sweep_wall: Some(Duration::from_secs(sweep_budget_secs)),
    };

    let threads = sweep_threads();
    println!(
        "# Threshold sweeps over {} / {} ({}, {sweep_budget_secs}s per axis)\n",
        row.params,
        row.domain_label,
        if warm_start {
            "warm-started, sequential".to_string()
        } else {
            format!("cold, {threads} worker threads")
        }
    );

    // Both axes sweep loose→tight so the warm carry's nested-solution
    // pre-verification pays off.
    println!("## E4: delay sweep at util ≥ 1/2");
    println!("paper: 245 @ ≤8×RTT · 12 @ ≤4 · 9 @ ≤3.6 · 0 @ ≤3\n");
    let delay_values = [int(8), int(4), rat(18, 5), int(3)];
    let t0 = Instant::now();
    let delay_report =
        sweep_with_config(&base, &delay_values, |t, d| t.delay = d.clone(), &make_cfg());
    let delay_wall = t0.elapsed().as_secs_f64();
    println!("{}", render_table(&delay_report.rows));
    println!("sweep wall: {delay_wall:.1}s (budget exceeded: {})\n", delay_report.budget_exceeded);

    println!("## E3: utilization sweep at delay ≤ 4×RTT");
    println!("paper: 12 @ ≥50% · 2 @ ≥65% · 1 @ ≥70% (Eq. iii)\n");
    let util_values = [rat(1, 2), rat(13, 20), rat(7, 10)];
    let t0 = Instant::now();
    let util_report =
        sweep_with_config(&base, &util_values, |t, u| t.util = u.clone(), &make_cfg());
    let util_wall = t0.elapsed().as_secs_f64();
    println!("{}", render_table(&util_report.rows));
    println!("sweep wall: {util_wall:.1}s (budget exceeded: {})", util_report.budget_exceeded);

    let json = Json::obj(vec![
        ("bench", Json::Str("threshold_sweep".into())),
        ("scale", Json::Str(format!("{scale:?}").to_lowercase())),
        ("budget_secs", Json::UInt(budget_secs)),
        ("sweep_budget_secs", Json::UInt(sweep_budget_secs)),
        ("warm_start", Json::Bool(warm_start)),
        ("threads", Json::UInt(threads as u64)),
        ("params", Json::Str(row.params.into())),
        ("domain", Json::Str(row.domain_label.into())),
        ("delay_sweep", sweep_json(&delay_report, &delay_values, delay_wall)),
        ("utilization_sweep", sweep_json(&util_report, &util_values, util_wall)),
    ]);
    let _ = write_json(&out, &json);

    if flag("--require-cached") {
        let ok = require_cached("delay", &delay_report, &delay_values)
            & require_cached("util", &util_report, &util_values);
        if !ok {
            return ExitCode::FAILURE;
        }
        println!("require-cached: every point answered by certificate re-check");
    }
    ExitCode::SUCCESS
}
