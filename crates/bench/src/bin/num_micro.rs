//! Microbenchmarks of the arithmetic kernel under the simplex: `Rat`
//! add/mul/cmp on the small-value fast path, `BigInt` gcd, and a simplex
//! pivot kernel driven through the public `Simplex` API. These back the
//! DESIGN.md §8 claim that the hot loop runs allocation-free on
//! machine-word operands.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin num_micro
//! ```
//!
//! Emits `BENCH_num_micro.json` with per-case mean/min timings plus the
//! arithmetic fast-path counters accumulated across the whole run.

use ccmatic_bench::{bench_case, write_json, Json, MicroResult};
use ccmatic_num::{rat, BigInt, DeltaRat, Rat, SmallRng};
use ccmatic_smt::lra::Simplex;
use std::hint::black_box;

/// Pre-generate small rational operands of the kind the LRA tableau holds:
/// single-digit numerators over denominators up to 16.
fn small_rats(n: usize, seed: u64) -> Vec<Rat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rat(rng.gen_range_i64(-9, 10), rng.gen_range_i64(1, 17))).collect()
}

fn rat_add_case(operands: &[Rat]) -> MicroResult {
    bench_case("rat_add", 3, 20, || {
        let mut acc = Rat::zero();
        for r in operands {
            acc += r;
        }
        black_box(&acc);
    })
}

fn rat_mul_case(operands: &[Rat]) -> MicroResult {
    bench_case("rat_mul", 3, 20, || {
        // Multiply in pairs rather than folding one product: a running
        // product would promote to bignum and measure the slow path.
        let mut acc = Rat::zero();
        for pair in operands.chunks_exact(2) {
            acc += &(&pair[0] * &pair[1]);
        }
        black_box(&acc);
    })
}

fn rat_cmp_case(operands: &[Rat]) -> MicroResult {
    bench_case("rat_cmp", 3, 20, || {
        let mut less = 0u32;
        for pair in operands.windows(2) {
            if pair[0] < pair[1] {
                less += 1;
            }
        }
        black_box(less);
    })
}

fn gcd_case() -> MicroResult {
    let mut rng = SmallRng::seed_from_u64(7);
    let pairs: Vec<(BigInt, BigInt)> = (0..2_000)
        .map(|_| {
            (
                BigInt::from(rng.gen_range_i64(i64::MIN / 2, i64::MAX / 2)),
                BigInt::from(rng.gen_range_i64(1, 1 << 40)),
            )
        })
        .collect();
    bench_case("bigint_gcd", 3, 20, || {
        let mut acc = 0u64;
        for (a, b) in &pairs {
            acc = acc.wrapping_add(a.gcd(b).to_i64().unwrap_or(0) as u64);
        }
        black_box(acc);
    })
}

/// A simplex kernel that pivots through a full chain on every iteration:
/// `n` variables chained by slack rows `s_i = x_i - x_{i+1}`, with bounds
/// that contradict the all-zero initial assignment. The tableau is rebuilt
/// each iteration — once pivoted to feasibility the basis stays feasible,
/// so reusing it would measure only bound bookkeeping.
fn simplex_pivot_case(n: usize) -> MicroResult {
    bench_case("simplex_pivot", 3, 20, || {
        let mut s = Simplex::new();
        let vars: Vec<_> = (0..n).map(|_| s.new_var()).collect();
        // Bounding s_i ≤ -1 forces x to increase down the chain, driving
        // a pivot through every row.
        let slacks: Vec<_> = (0..n - 1)
            .map(|i| s.define_slack(&[(vars[i], Rat::one()), (vars[i + 1], -&Rat::one())]))
            .collect();
        let mut tag = 0u32;
        for &sl in &slacks {
            s.assert_upper(sl, DeltaRat::new(rat(-1, 1), Rat::zero()), tag).expect("consistent");
            tag += 1;
        }
        s.assert_lower(vars[0], DeltaRat::new(Rat::zero(), Rat::zero()), tag).expect("consistent");
        s.check().expect("feasible chain");
        black_box(s.raw_value(vars[n - 1]));
    })
}

fn case_json(r: &MicroResult) -> Json {
    Json::obj(vec![
        ("name", Json::Str(r.name.clone())),
        ("iters", Json::UInt(r.iters as u64)),
        ("mean_us", Json::Num(r.mean().as_secs_f64() * 1e6)),
        ("min_us", Json::Num(r.min.as_secs_f64() * 1e6)),
    ])
}

fn main() {
    let operands = small_rats(4_000, 42);
    let before = ccmatic_num::arith_snapshot();
    let pivots_before = ccmatic_smt::lra::pivots_total();
    let results = [
        rat_add_case(&operands),
        rat_mul_case(&operands),
        rat_cmp_case(&operands),
        gcd_case(),
        simplex_pivot_case(40),
    ];
    let arith = ccmatic_num::arith_snapshot().since(&before);
    let pivots = ccmatic_smt::lra::pivots_total().saturating_sub(pivots_before);
    eprintln!(
        "kernel: pivots {} · promotions {} · fast-path {:.2}% ({} small / {} big ops)",
        pivots,
        arith.promotions,
        arith.fast_fraction() * 100.0,
        arith.small_ops,
        arith.big_ops
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("num_micro".into())),
        ("cases", Json::Arr(results.iter().map(case_json).collect())),
        ("pivots", Json::UInt(pivots)),
        ("promotions", Json::UInt(arith.promotions)),
        ("small_ops", Json::UInt(arith.small_ops)),
        ("big_ops", Json::UInt(arith.big_ops)),
        ("fast_fraction", Json::Num(arith.fast_fraction())),
    ]);
    let _ = write_json("BENCH_num_micro.json", &json);
}
