//! Regenerate §4 "Extensions": exhaustively enumerate every solution in a
//! search space and report how much history each uses (the paper finds 12
//! RoCC variants in the No-cwnd/Large space: six using 2 RTTs of history,
//! six using 3).
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin solution_space -- [--scale ci|paper] [--budget-secs N]
//! ```
//!
//! Emits `BENCH_solution_space.json` with the machine-readable numbers.

use ccac_model::Thresholds;
use ccmatic::enumerate::enumerate_all;
use ccmatic::known;
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic_bench::{table1_rows, write_json, Json, Scale};
use ccmatic_cegis::Budget;
use ccmatic_num::rat;
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "paper") { Scale::Paper } else { Scale::Ci };
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(600);

    // Row 1 = No-cwnd/Small (RoCC rediscovery), row 2 = No-cwnd/Large (the
    // 12-solution space).
    let rows = table1_rows(scale);
    let mut json_rows = Vec::new();
    for row in &rows[..2] {
        let opts = SynthOptions {
            shape: row.shape.clone(),
            net: row.net.clone(),
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: Budget {
                max_iterations: 1_000_000,
                max_wall: Duration::from_secs(budget_secs),
            },
            wce_precision: rat(1, 2),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: ccmatic::synth::DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
            theory_sync: true,
        };
        println!(
            "\n## {} / {} — {} candidates",
            row.params,
            row.domain_label,
            row.shape.search_space_size()
        );
        let result = enumerate_all(&opts);
        println!(
            "{} solution(s); exhaustive: {}; {} iterations; {:.1}s",
            result.solutions.len(),
            result.complete,
            result.stats.iterations,
            result.stats.wall.as_secs_f64()
        );
        let mut by_history: BTreeMap<usize, usize> = BTreeMap::new();
        let rocc = known::rocc();
        for s in &result.solutions {
            *by_history.entry(s.history_used()).or_default() += 1;
            let marker =
                if s.beta == rocc.beta && s.gamma == rocc.gamma { "  ← RoCC" } else { "" };
            println!("  {s}{marker}");
        }
        print!("history usage:");
        for (h, n) in &by_history {
            print!("  {n} use {h} RTTs;");
        }
        println!();
        json_rows.push(Json::obj(vec![
            ("params", Json::Str(row.params.into())),
            ("domain", Json::Str(row.domain_label.into())),
            ("solutions", Json::UInt(result.solutions.len() as u64)),
            ("complete", Json::Bool(result.complete)),
            ("iterations", Json::UInt(result.stats.iterations)),
            ("wall_s", Json::Num(result.stats.wall.as_secs_f64())),
            ("solver_probes", Json::UInt(result.solver_probes)),
            ("threads", Json::UInt(1)),
            (
                "history_usage",
                Json::Obj(
                    by_history
                        .iter()
                        .map(|(h, n)| (h.to_string(), Json::UInt(*n as u64)))
                        .collect(),
                ),
            ),
        ]));
    }
    println!("\nPaper reference: 12 solutions in No-cwnd/Large (6 × 2 RTTs, 6 × 3 RTTs),");
    println!("all RoCC variants. Our counts are reported in EXPERIMENTS.md next to the");
    println!("paper's — the encoding re-derivation shifts exact counts, not the shape.");

    let json = Json::obj(vec![
        ("bench", Json::Str("solution_space".into())),
        ("scale", Json::Str(format!("{scale:?}").to_lowercase())),
        ("budget_secs", Json::UInt(budget_secs)),
        ("rows", Json::Arr(json_rows)),
    ]);
    let _ = write_json("BENCH_solution_space.json", &json);
}
