//! Compare a fresh `BENCH_table1.json` against a committed baseline and
//! fail on wall-clock regressions of previously-solved cells.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin table1_regress -- baseline.json fresh.json
//! ```
//!
//! A cell regresses when the baseline solved it and the fresh run either
//! no longer solves it, takes more than 2× the baseline wall time (plus
//! a 1 s noise floor, so sub-second cells don't flap on scheduler jitter),
//! or spends more than 2× the baseline's simplex `pivots` or bignum
//! `big_ops` (plus generous absolute floors) — the arithmetic-volume gates
//! exist because wall alone can hide a kernel regression on a time-sliced
//! runner. Cells are matched by the full identity tuple (params, domain,
//! method, incremental, threads, certified, theory_sync); baseline cells
//! missing from the fresh run count as regressions, fresh-only cells (e.g.
//! the `(no-sync)` A/B legs on older baselines) are ignored. Exit status
//! is nonzero iff any cell regressed.

use ccmatic_bench::Json;
use std::process::ExitCode;

/// Factor over the baseline wall beyond which a solved cell regressed.
const MAX_SLOWDOWN: f64 = 2.0;
/// Absolute seconds added to the allowance: sub-second cells vary more
/// than 2× run-to-run on shared CI runners.
const NOISE_FLOOR_S: f64 = 1.0;
/// Factor over the baseline's per-cell `pivots` / `big_ops` beyond which
/// the cell regressed, independent of wall.
const MAX_OP_GROWTH: f64 = 2.0;
/// Absolute pivot allowance: portfolio scheduling can shift a small cell's
/// pivot count by thousands without anything being wrong.
const FLOOR_PIVOTS: f64 = 10_000.0;
/// Absolute big-op allowance, same reasoning at bignum-op granularity.
const FLOOR_BIG_OPS: f64 = 1_000_000.0;

/// Identity + measurement of one cell, flattened from the nested JSON.
struct Cell {
    key: String,
    solved: bool,
    wall_s: f64,
    pivots: f64,
    big_ops: f64,
}

fn load(path: &str) -> Result<Vec<Cell>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut cells = Vec::new();
    let rows = doc.get("rows").and_then(Json::as_arr).ok_or(format!("{path}: no rows"))?;
    for row in rows {
        let params = row.get("params").and_then(Json::as_str).unwrap_or("?");
        let domain = row.get("domain").and_then(Json::as_str).unwrap_or("?");
        for cell in row.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
            let get_bool = |k: &str| cell.get(k).and_then(Json::as_bool).unwrap_or(false);
            let get_num = |k: &str| cell.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let method = cell.get("method").and_then(Json::as_str).unwrap_or("?");
            // Missing on pre-trail-sync baselines, where every cell ran
            // the (then-only) synchronized-equivalent path: default true
            // so old baselines keep matching fresh default cells.
            let theory_sync = cell.get("theory_sync").and_then(Json::as_bool).unwrap_or(true);
            cells.push(Cell {
                key: format!(
                    "{params} / {domain} / {method}{}{}{}{}",
                    if get_bool("incremental") { "" } else { " (scratch)" },
                    match get_num("threads") as u64 {
                        0 | 1 => String::new(),
                        t => format!(" ({t}T)"),
                    },
                    if get_bool("certified") { " (certified)" } else { "" },
                    if theory_sync { "" } else { " (no-sync)" },
                ),
                solved: get_bool("solved"),
                wall_s: get_num("wall_s"),
                pivots: get_num("pivots"),
                big_ops: get_num("big_ops"),
            });
        }
    }
    Ok(cells)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, fresh_path] = &args[..] else {
        eprintln!("usage: table1_regress <baseline.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("table1_regress: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut checked = 0usize;
    for base in baseline.iter().filter(|c| c.solved) {
        checked += 1;
        let allowance = base.wall_s * MAX_SLOWDOWN + NOISE_FLOOR_S;
        match fresh.iter().find(|c| c.key == base.key) {
            None => {
                regressions += 1;
                println!("REGRESSION  {}: solved in baseline, missing from fresh run", base.key);
            }
            Some(f) if !f.solved => {
                regressions += 1;
                println!(
                    "REGRESSION  {}: solved in {:.2}s in baseline, DNF in fresh run",
                    base.key, base.wall_s
                );
            }
            Some(f) if f.wall_s > allowance => {
                regressions += 1;
                println!(
                    "REGRESSION  {}: {:.2}s → {:.2}s (allowed ≤ {:.2}s)",
                    base.key, base.wall_s, f.wall_s, allowance
                );
            }
            Some(f) if f.pivots > base.pivots * MAX_OP_GROWTH + FLOOR_PIVOTS => {
                regressions += 1;
                println!(
                    "REGRESSION  {}: pivots {:.0} → {:.0} (allowed ≤ {:.0})",
                    base.key,
                    base.pivots,
                    f.pivots,
                    base.pivots * MAX_OP_GROWTH + FLOOR_PIVOTS
                );
            }
            Some(f) if f.big_ops > base.big_ops * MAX_OP_GROWTH + FLOOR_BIG_OPS => {
                regressions += 1;
                println!(
                    "REGRESSION  {}: big_ops {:.0} → {:.0} (allowed ≤ {:.0})",
                    base.key,
                    base.big_ops,
                    f.big_ops,
                    base.big_ops * MAX_OP_GROWTH + FLOOR_BIG_OPS
                );
            }
            Some(f) => {
                println!("ok          {}: {:.2}s → {:.2}s", base.key, base.wall_s, f.wall_s);
            }
        }
    }
    println!("{checked} solved baseline cells checked, {regressions} regressed");
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
