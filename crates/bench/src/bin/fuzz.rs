//! Fuzzing benchmark: adversarial-schedule search against broken and
//! verified CCAs, plus the seeded-CEGIS A/B that measures what fuzz-found
//! counterexamples are worth as warm-start seeds.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin fuzz -- [--budget-secs N] [--fuzz-seed N]
//! ```
//!
//! Emits `BENCH_fuzz.json` with, per fuzz run: the counter columns
//! (genomes evaluated, failures, model gaps, lift-infeasible discards),
//! the per-generation best-fitness trajectory, and the verifier verdict —
//! and for the A/B: cold vs seeded iteration counts on a Table-1 cell.
//!
//! Exit-code invariants (CI smoke relies on these):
//! * broken targets must yield failures and **zero** model gaps;
//! * verified targets must yield zero failures and zero gaps;
//! * the seeded run must agree with the cold run's outcome in no more
//!   iterations.

use ccac_model::Thresholds;
use ccmatic::known;
use ccmatic::synth::{synthesize, synthesize_seeded, SynthOptions};
use ccmatic::template::CcaSpec;
use ccmatic_bench::{table1_rows, write_json, Json, Scale};
use ccmatic_cegis::Budget;
use ccmatic_fuzz::{run_fuzz, FuzzConfig, FuzzTarget};
use ccmatic_num::{int, Rat};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |key: &str| args.windows(2).find(|w| w[0] == key).map(|w| w[1].clone());
    let budget_secs: u64 = flag("--budget-secs").and_then(|v| v.parse().ok()).unwrap_or(120);
    let fuzz_seed: u64 = flag("--fuzz-seed").and_then(|v| v.parse().ok()).unwrap_or(7);

    let net = |history: usize| ccac_model::NetConfig {
        horizon: 6,
        history,
        link_rate: Rat::one(),
        jitter: 1,
        buffer: None,
    };
    let fuzz_cfg = |spec: CcaSpec| FuzzConfig {
        seed: fuzz_seed,
        generations: 12,
        population: 16,
        net: net(spec.beta.len().max(spec.alpha.len()) + 1),
        thresholds: Thresholds::default(),
        initial_cwnd: Rat::one(),
        target: FuzzTarget::Spec(spec),
        skip_verify: false,
    };

    // Named targets: two broken windows the fuzzer must break, two
    // verified CCAs it must leave standing.
    let cases: Vec<(&str, CcaSpec, bool)> = vec![
        ("const_cwnd_6", known::const_cwnd(int(6)), true),
        ("const_cwnd_0", known::const_cwnd(int(0)), true),
        ("rocc", known::rocc(), false),
        ("eq_iii", known::eq_iii(), false),
    ];
    let mut ok = true;
    let mut json_runs = Vec::new();
    for (name, spec, broken) in &cases {
        let report = run_fuzz(&fuzz_cfg(spec.clone()));
        let c = &report.counters;
        println!(
            "{name}: verifier {} · {}",
            match report.verifier_passed {
                Some(true) => "VERIFIED",
                Some(false) => "REFUTED",
                None => "-",
            },
            report.stats_line()
        );
        if c.model_gaps != 0 {
            eprintln!("{name}: MODEL GAP — a certified claim admits a concrete violation");
            ok = false;
        }
        if *broken && c.failures_found == 0 {
            eprintln!("{name}: broken CCA survived the fuzzer");
            ok = false;
        }
        // A *verifier-certified* target admits no exact failure by
        // definition (anything else is a gap, caught above); targets the
        // verifier refutes may legitimately fall either way.
        if report.verifier_passed == Some(true) && c.failures_found != 0 {
            eprintln!("{name}: exact failure claimed against a verified CCA");
            ok = false;
        }
        let mut run = vec![("name", Json::Str((*name).into()))];
        run.push(("report", report.to_json()));
        json_runs.push(Json::obj(run));
    }

    // Seeded-CEGIS A/B on the Table-1 No-cwnd/Small cell (CI scale):
    // fuzz two in-space broken candidates, feed their corpora into
    // `synthesize_seeded`, and compare iteration counts against the cold
    // loop on the same cell.
    let row = &table1_rows(Scale::Ci)[0];
    let opts = SynthOptions {
        shape: row.shape.clone(),
        net: row.net.clone(),
        thresholds: Thresholds::default(),
        budget: Budget { max_iterations: 1_000_000, max_wall: Duration::from_secs(budget_secs) },
        ..SynthOptions::default()
    };
    let mut seeds = Vec::new();
    for gamma in [0i64, 6] {
        let broken = CcaSpec { alpha: vec![], beta: vec![int(0); 3], gamma: int(gamma) };
        let mut cfg = fuzz_cfg(broken.clone());
        cfg.net = row.net.clone();
        cfg.skip_verify = true; // verdict known (broken); only the corpus matters
        let report = run_fuzz(&cfg);
        println!("seed source γ={gamma}: {}", report.stats_line());
        seeds.extend(report.corpus.cegis_seeds(&broken));
    }
    println!("cold run on {}/{} …", row.params, row.domain_label);
    let cold = synthesize(&opts);
    println!("seeded run ({} fuzz traces) …", seeds.len());
    let seeded = synthesize_seeded(&opts, &seeds);
    let (ci, si) = (cold.stats.iterations, seeded.stats.iterations);
    println!(
        "A/B: cold {ci} iterations vs seeded {si} ({} traces seeded, {} rejected, {} subsumed)",
        seeded.stats.warm_traces_seeded,
        seeded.stats.warm_traces_rejected,
        seeded.stats.cex_subsumed
    );
    // Seeding may legitimately change *which* solution the generator
    // reaches first; the invariant is kind-level agreement (solution /
    // no-solution / budget), since every returned solution is
    // verifier-checked inside the loop.
    let outcomes_agree =
        std::mem::discriminant(&cold.outcome) == std::mem::discriminant(&seeded.outcome);
    if !outcomes_agree {
        eprintln!("A/B outcome mismatch: cold {:?} vs seeded {:?}", cold.outcome, seeded.outcome);
        ok = false;
    }
    if si > ci {
        eprintln!("seeded run cost iterations ({si} > {ci}); warm seeds must not hurt");
        ok = false;
    }

    let json = Json::obj(vec![
        ("bench", Json::Str("fuzz".into())),
        ("fuzz_seed", Json::UInt(fuzz_seed)),
        ("budget_secs", Json::UInt(budget_secs)),
        ("runs", Json::Arr(json_runs)),
        (
            "seeded_cegis_ab",
            Json::obj(vec![
                ("cell", Json::Str(format!("{}/{}", row.params, row.domain_label))),
                ("fuzz_traces", Json::UInt(seeds.len() as u64)),
                ("cold_iterations", Json::UInt(ci)),
                ("seeded_iterations", Json::UInt(si)),
                ("traces_seeded", Json::UInt(seeded.stats.warm_traces_seeded)),
                ("traces_rejected", Json::UInt(seeded.stats.warm_traces_rejected)),
                ("cex_subsumed", Json::UInt(seeded.stats.cex_subsumed)),
                ("outcomes_agree", Json::Bool(outcomes_agree)),
                ("cold_wall_s", Json::Num(cold.stats.wall.as_secs_f64())),
                ("seeded_wall_s", Json::Num(seeded.stats.wall.as_secs_f64())),
            ]),
        ),
    ]);
    let _ = write_json("BENCH_fuzz.json", &json);

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
