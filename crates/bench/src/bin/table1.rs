//! Regenerate Table 1: time and iterations to synthesize the first
//! solution, per search space × optimization method.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin table1 -- [--scale ci|paper] [--budget-secs N] [--stats] [--expected]
//! ```
//!
//! Default: CI scale with a 120 s per-cell budget. At `--scale paper` the
//! grid matches the paper's (3⁵ … 9⁹); expect the Baseline column to DNF,
//! exactly as the paper reports ("did not finish within a week" — our
//! budget substitutes for the week). Pass `--expected` to also print the
//! paper's reference numbers; by default the log carries only measured
//! results.

use ccmatic::synth::OptMode;
use ccmatic_bench::{
    fmt_duration, render_table1, run_cell, run_cell_with, table1_rows, write_json, Json, Scale,
};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "paper")
        || args.windows(2).any(|w| w[0] == "--scale" && w[1] == "paper")
    {
        Scale::Paper
    } else {
        Scale::Ci
    };
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(120);
    let show_stats = args.iter().any(|a| a == "--stats");
    // `--rows N` limits the grid to the first N rows; the cwnd rows' WCE
    // searches can exceed the per-cell budget by an hour at ci scale (the
    // wall budget is only checked between CEGIS iterations).
    let max_rows: usize = args
        .windows(2)
        .find(|w| w[0] == "--rows")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(usize::MAX);
    let budget = Duration::from_secs(budget_secs);

    println!("# Table 1 — time to synthesize first solution ({scale:?} scale, {budget_secs}s/cell budget)\n");
    // Measured results only by default: the paper's expected-shape table
    // is opt-in so CI logs aren't mistaken for measurements.
    if args.iter().any(|a| a == "--expected") {
        println!("Paper reference (Xeon 6226R, Z3 4.8.17, 1 core):");
        println!("  No-cwnd/Small : Baseline 100 itr / 3m  → RP 30/30s → RP+WCE 7/3s");
        println!("  No-cwnd/Large : Baseline DNF           → RP 60/1m  → RP+WCE 50/1m");
        println!("  cwnd/Small    : Baseline DNF           → RP 100/9m → RP+WCE 50/30s");
        println!("  cwnd/Large    : Baseline DNF           → RP 360/32h→ RP+WCE 80/45m\n");
    }

    let mut rows = table1_rows(scale);
    rows.truncate(max_rows);
    let mut results = Vec::new();
    for row in rows {
        let mut cells = Vec::new();
        for mode in [OptMode::Baseline, OptMode::RangePruning, OptMode::RangePruningWce] {
            eprintln!("running {} / {} / {} …", row.params, row.domain_label, mode.label());
            let cell = run_cell(&row, mode, budget);
            eprintln!(
                "  → {} in {} ({} iterations, {} verifier probes)",
                if cell.solved { "solved" } else { "DNF" },
                fmt_duration(cell.wall, true),
                cell.iterations,
                cell.verifier_probes,
            );
            if show_stats {
                eprintln!(
                    "  stats: {:.2} probes/iteration · {} pivots · {} promotions · fast-path {:.2}% · {} regions pruned · {} cexs subsumed",
                    cell.verifier_probes as f64 / cell.iterations.max(1) as f64,
                    cell.pivots,
                    cell.promotions,
                    cell.fast_fraction() * 100.0,
                    cell.regions_pruned,
                    cell.cex_subsumed,
                );
                eprintln!(
                    "  theory: {} props · {} bounds asserted · {} reused",
                    cell.theory_props, cell.bounds_asserted, cell.bounds_reused,
                );
            }
            cells.push(cell);
        }
        // The same-build A/B pair for the trail-sync speedup claim: re-run
        // the RP+WCE cell with the legacy reset-and-reassert theory bridge.
        eprintln!("running {} / {} / RP+WCE (no-sync) …", row.params, row.domain_label);
        let nosync = run_cell_with(&row, OptMode::RangePruningWce, budget, true, 1, false, false);
        let sync_wall = cells[2].wall;
        eprintln!(
            "  → {} in {} ({} iterations, {:.2}x the trail-synced cell)",
            if nosync.solved { "solved" } else { "DNF" },
            fmt_duration(nosync.wall, true),
            nosync.iterations,
            nosync.wall.as_secs_f64() / sync_wall.as_secs_f64().max(1e-9),
        );
        cells.push(nosync);
        // The before/after pair for the incremental-verifier speedup claim:
        // re-run the RP+WCE cell with the pre-scope from-scratch verifier.
        eprintln!(
            "running {} / {} / RP+WCE (from-scratch verifier) …",
            row.params, row.domain_label
        );
        let scratch = run_cell_with(&row, OptMode::RangePruningWce, budget, false, 1, false, true);
        eprintln!(
            "  → {} in {} ({} iterations, {} verifier probes)",
            if scratch.solved { "solved" } else { "DNF" },
            fmt_duration(scratch.wall, true),
            scratch.iterations,
            scratch.verifier_probes,
        );
        cells.push(scratch);
        // Certified RP+WCE: every verdict carries a checker-replayed proof
        // certificate. Reported next to the uncertified cell so the
        // overhead factor is visible per row.
        eprintln!("running {} / {} / RP+WCE (certified) …", row.params, row.domain_label);
        let certified = run_cell_with(&row, OptMode::RangePruningWce, budget, true, 1, true, true);
        let plain_wall = cells[2].wall;
        eprintln!(
            "  → {} in {} ({} proof clauses, {} cert bytes, {:.1} ms in checker, {:.2}x uncertified)",
            if certified.solved { "solved" } else { "DNF" },
            fmt_duration(certified.wall, true),
            certified.proof_clauses,
            certified.cert_bytes,
            certified.check_ms,
            certified.wall.as_secs_f64() / plain_wall.as_secs_f64().max(1e-9),
        );
        cells.push(certified);
        // Shard-stealing portfolio at 2 and 4 workers, same cell. Small
        // spaces auto-fall back to the serial loop below the dispatch
        // threshold; on a single hardware core the rest measure overhead,
        // not speedup. The JSON records `hardware_cores` next to `threads`
        // so readers can tell which is which.
        for threads in [2usize, 4] {
            eprintln!(
                "running {} / {} / RP+WCE ({} workers) …",
                row.params, row.domain_label, threads
            );
            let cell =
                run_cell_with(&row, OptMode::RangePruningWce, budget, true, threads, false, true);
            eprintln!(
                "  → {} in {} ({} iterations, {} replay hits, {} wasted, {} shards stolen, {}/{} clauses shared)",
                if cell.solved { "solved" } else { "DNF" },
                fmt_duration(cell.wall, true),
                cell.iterations,
                cell.replay_hits,
                cell.speculative_wasted,
                cell.shards_stolen,
                cell.shared_clauses_exported,
                cell.shared_clauses_imported,
            );
            cells.push(cell);
        }
        results.push((row, cells));
    }

    println!("{}", render_table1(&results));
    println!("\nDNF = no solution within the per-cell budget (the paper's analogue: one week).");
    println!("Each row's extra RP+WCE lines: (no-sync) = the legacy reset-and-reassert theory");
    println!("bridge (the trail-sync A/B pair), (scratch) = the non-incremental verifier,");
    println!("(certified) = checker-replayed proofs on every verdict; the (2T)/(4T) lines run");
    println!("the shard-stealing portfolio at that worker count (tiny spaces auto-fall back");
    println!("to the serial loop below the dispatch threshold).");

    let json = Json::obj(vec![
        ("bench", Json::Str("table1".into())),
        ("scale", Json::Str(format!("{scale:?}").to_lowercase())),
        ("budget_secs", Json::UInt(budget_secs)),
        (
            "rows",
            Json::Arr(
                results
                    .iter()
                    .map(|(row, cells)| {
                        Json::obj(vec![
                            ("params", Json::Str(row.params.into())),
                            ("domain", Json::Str(row.domain_label.into())),
                            (
                                "search_size",
                                Json::UInt(
                                    row.shape.search_space_size().min(u64::MAX as u128) as u64
                                ),
                            ),
                            ("cells", Json::Arr(cells.iter().map(|c| c.to_json()).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let _ = write_json("BENCH_table1.json", &json);
}
