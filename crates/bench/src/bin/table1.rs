//! Regenerate Table 1: time and iterations to synthesize the first
//! solution, per search space × optimization method.
//!
//! ```sh
//! cargo run --release -p ccmatic-bench --bin table1 -- [--scale ci|paper] [--budget-secs N] [--stats]
//! ```
//!
//! Default: CI scale with a 120 s per-cell budget. At `--scale paper` the
//! grid matches the paper's (3⁵ … 9⁹); expect the Baseline column to DNF,
//! exactly as the paper reports ("did not finish within a week" — our
//! budget substitutes for the week).

use ccmatic::synth::OptMode;
use ccmatic_bench::{fmt_duration, run_cell, table1_rows, render_table1, Scale};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "paper") || args.windows(2).any(|w| w[0] == "--scale" && w[1] == "paper") {
        Scale::Paper
    } else {
        Scale::Ci
    };
    let budget_secs: u64 = args
        .windows(2)
        .find(|w| w[0] == "--budget-secs")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(120);
    let show_stats = args.iter().any(|a| a == "--stats");
    let budget = Duration::from_secs(budget_secs);

    println!("# Table 1 — time to synthesize first solution ({scale:?} scale, {budget_secs}s/cell budget)\n");
    println!("Paper reference (Xeon 6226R, Z3 4.8.17, 1 core):");
    println!("  No-cwnd/Small : Baseline 100 itr / 3m  → RP 30/30s → RP+WCE 7/3s");
    println!("  No-cwnd/Large : Baseline DNF           → RP 60/1m  → RP+WCE 50/1m");
    println!("  cwnd/Small    : Baseline DNF           → RP 100/9m → RP+WCE 50/30s");
    println!("  cwnd/Large    : Baseline DNF           → RP 360/32h→ RP+WCE 80/45m\n");

    let rows = table1_rows(scale);
    let mut results = Vec::new();
    for row in rows {
        let mut cells = Vec::new();
        for mode in [OptMode::Baseline, OptMode::RangePruning, OptMode::RangePruningWce] {
            eprintln!(
                "running {} / {} / {} …",
                row.params,
                row.domain_label,
                mode.label()
            );
            let cell = run_cell(&row, mode, budget);
            eprintln!(
                "  → {} in {} ({} iterations, {} verifier probes)",
                if cell.solved { "solved" } else { "DNF" },
                fmt_duration(cell.wall, true),
                cell.iterations,
                cell.verifier_probes,
            );
            if show_stats {
                eprintln!(
                    "  stats: {:.2} probes/iteration",
                    cell.verifier_probes as f64 / cell.iterations.max(1) as f64
                );
            }
            cells.push(cell);
        }
        results.push((row, cells));
    }

    println!("{}", render_table1(&results));
    println!("\nDNF = no solution within the per-cell budget (the paper's analogue: one week).");
}
