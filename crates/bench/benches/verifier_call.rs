//! §4 scalability claim: "The complexity of verifier formulation is fixed
//! across iterations … The verifier typically takes ≈0.5s to compute a
//! counterexample." This bench measures one verifier call in its three
//! regimes: certify (unsat), refute (sat), and refute-with-WCE (binary
//! search).

use ccac_model::{NetConfig, Thresholds};
use ccmatic::known;
use ccmatic::verifier::{CcaVerifier, VerifyConfig};
use ccmatic_num::{rat, Rat};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn cfg(worst_case: bool) -> VerifyConfig {
    VerifyConfig {
        net: NetConfig { horizon: 6, history: 5, link_rate: Rat::one(), jitter: 1, buffer: None },
        thresholds: Thresholds::default(),
        worst_case,
        wce_precision: rat(1, 2),
    }
}

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));

    group.bench_function("certify_rocc", |b| {
        b.iter(|| {
            let mut v = CcaVerifier::new(cfg(false));
            assert!(v.verify(&known::rocc()).is_ok());
        })
    });
    group.bench_function("refute_const_cwnd", |b| {
        b.iter(|| {
            let mut v = CcaVerifier::new(cfg(false));
            assert!(v.verify(&known::const_cwnd(Rat::zero())).is_err());
        })
    });
    group.bench_function("refute_with_wce", |b| {
        b.iter(|| {
            let mut v = CcaVerifier::new(cfg(true));
            assert!(v.verify(&known::const_cwnd(Rat::zero())).is_err());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
