//! §4 scalability claim: "The complexity of verifier formulation is fixed
//! across iterations … The verifier typically takes ≈0.5s to compute a
//! counterexample." This bench measures one verifier call in its three
//! regimes — certify (unsat), refute (sat), refute-with-WCE (binary
//! search) — on both the from-scratch and incremental (push/pop scope)
//! verifier paths.
//!
//! Run with `cargo bench -p ccmatic-bench --bench verifier_call`.

use ccac_model::{NetConfig, Thresholds};
use ccmatic::known;
use ccmatic::verifier::{CcaVerifier, VerifyConfig};
use ccmatic_bench::bench_case;
use ccmatic_num::{rat, Rat};

fn cfg(worst_case: bool, incremental: bool) -> VerifyConfig {
    VerifyConfig {
        net: NetConfig { horizon: 6, history: 5, link_rate: Rat::one(), jitter: 1, buffer: None },
        thresholds: Thresholds::default(),
        worst_case,
        wce_precision: rat(1, 2),
        incremental,
        certify: false,
        search: Default::default(),
        theory_sync: true,
    }
}

fn main() {
    for incremental in [false, true] {
        let tag = if incremental { "incremental" } else { "scratch" };
        // Long-lived verifiers: in incremental mode the network encoding is
        // amortized across iterations, matching how CEGIS drives it.
        let mut certify = CcaVerifier::new(cfg(false, incremental));
        bench_case(&format!("certify_rocc/{tag}"), 1, 10, || {
            assert!(certify.verify(&known::rocc()).is_ok());
        });
        let mut refute = CcaVerifier::new(cfg(false, incremental));
        bench_case(&format!("refute_const_cwnd/{tag}"), 1, 10, || {
            assert!(refute.verify(&known::const_cwnd(Rat::zero())).is_err());
        });
        let mut wce = CcaVerifier::new(cfg(true, incremental));
        bench_case(&format!("refute_with_wce/{tag}"), 1, 10, || {
            assert!(wce.verify(&known::const_cwnd(Rat::zero())).is_err());
        });
    }
}
