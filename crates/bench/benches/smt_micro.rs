//! Microbenchmarks of the solver substrate: the CDCL core, the simplex,
//! and the combined QF-LRA pipeline. These back the DESIGN.md claim that
//! the from-scratch solver is adequate for the paper's formula sizes.
//!
//! Run with `cargo bench -p ccmatic-bench --bench smt_micro`.

use ccmatic_bench::bench_case;
use ccmatic_num::{int, Rat};
use ccmatic_smt::sat::{Lit, NoTheory, SatSolver, SolveResult, Var};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver};

/// Pigeonhole PHP(n+1, n): classically hard for resolution, a good CDCL
/// stress test.
fn pigeonhole(n: usize) -> SolveResult {
    let mut s = SatSolver::new();
    let mut p = vec![vec![Var(0); n]; n + 1];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
    }
    for (i1, row1) in p.iter().enumerate() {
        for row2 in &p[i1 + 1..] {
            for (&a, &b) in row1.iter().zip(row2) {
                s.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
            }
        }
    }
    s.solve(&mut NoTheory).unwrap()
}

/// A chained LP: x0 = 1, x_{i+1} = x_i + 1, all bounded — exercises the
/// simplex through the full solver.
fn chain_lp(n: usize) -> SatResult {
    let mut ctx = Context::new();
    let vars: Vec<_> = (0..n).map(|i| ctx.real_var(format!("x{i}"))).collect();
    let mut s = Solver::new();
    let first = ctx.eq(LinExpr::var(vars[0]), LinExpr::constant(int(1)));
    s.assert(&ctx, first);
    for w in vars.windows(2) {
        let step = ctx.eq(LinExpr::var(w[1]), LinExpr::var(w[0]) + LinExpr::constant(int(1)));
        s.assert(&ctx, step);
    }
    let cap = ctx.le(LinExpr::var(vars[n - 1]), LinExpr::constant(Rat::from(n as i64 * 2)));
    s.assert(&ctx, cap);
    s.check(&ctx)
}

/// Scoped re-checks against one base encoding — the pattern the incremental
/// verifier leans on (`push; assert; check; pop` per probe).
fn scoped_probes(n_probes: usize) -> u32 {
    let mut ctx = Context::new();
    let vars: Vec<_> = (0..20).map(|i| ctx.real_var(format!("x{i}"))).collect();
    let mut s = Solver::new();
    let first = ctx.eq(LinExpr::var(vars[0]), LinExpr::constant(int(1)));
    s.assert(&ctx, first);
    for w in vars.windows(2) {
        let step = ctx.eq(LinExpr::var(w[1]), LinExpr::var(w[0]) + LinExpr::constant(int(1)));
        s.assert(&ctx, step);
    }
    let mut sats = 0u32;
    for k in 0..n_probes {
        s.push();
        let cap = ctx.le(LinExpr::var(vars[19]), LinExpr::constant(Rat::from(k as i64)));
        s.assert(&ctx, cap);
        if s.check(&ctx) == SatResult::Sat {
            sats += 1;
        }
        s.pop();
    }
    sats
}

fn main() {
    bench_case("cdcl_pigeonhole_6", 1, 10, || {
        assert_eq!(pigeonhole(6), SolveResult::Unsat);
    });
    bench_case("qflra_chain_40", 1, 10, || {
        assert_eq!(chain_lp(40), SatResult::Sat);
    });
    bench_case("scoped_probes_30", 1, 10, || {
        // x19 = 20, so probes with cap < 20 are unsat: 30 probes, 10 sat.
        assert_eq!(scoped_probes(30), 10);
    });
}
