//! Microbenchmarks of the solver substrate: the CDCL core, the simplex,
//! and the combined QF-LRA pipeline. These back the DESIGN.md claim that
//! the from-scratch solver is adequate for the paper's formula sizes.

use ccmatic_num::{int, Rat};
use ccmatic_smt::sat::{Lit, NoTheory, SatSolver, SolveResult, Var};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Pigeonhole PHP(n+1, n): classically hard for resolution, a good CDCL
/// stress test.
fn pigeonhole(n: usize) -> SolveResult {
    let mut s = SatSolver::new();
    let mut p = vec![vec![Var(0); n]; n + 1];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
    }
    for j in 0..n {
        for i1 in 0..=n {
            for i2 in (i1 + 1)..=n {
                s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s.solve(&mut NoTheory).unwrap()
}

/// A chained LP: x0 = 1, x_{i+1} = x_i + 1, all bounded — exercises the
/// simplex through the full solver.
fn chain_lp(n: usize) -> SatResult {
    let mut ctx = Context::new();
    let vars: Vec<_> = (0..n).map(|i| ctx.real_var(format!("x{i}"))).collect();
    let mut s = Solver::new();
    let first = ctx.eq(LinExpr::var(vars[0]), LinExpr::constant(int(1)));
    s.assert(&ctx, first);
    for w in vars.windows(2) {
        let step = ctx.eq(
            LinExpr::var(w[1]),
            LinExpr::var(w[0]) + LinExpr::constant(int(1)),
        );
        s.assert(&ctx, step);
    }
    let cap = ctx.le(
        LinExpr::var(vars[n - 1]),
        LinExpr::constant(Rat::from(n as i64 * 2)),
    );
    s.assert(&ctx, cap);
    s.check(&ctx)
}

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));

    group.bench_function("cdcl_pigeonhole_6", |b| {
        b.iter(|| assert_eq!(pigeonhole(6), SolveResult::Unsat))
    });
    group.bench_function("qflra_chain_40", |b| {
        b.iter(|| assert_eq!(chain_lp(40), SatResult::Sat))
    });
    group.finish();
}

criterion_group!(benches, bench_smt);
criterion_main!(benches);
