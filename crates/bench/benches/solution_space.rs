//! Benchmark of exhaustive solution enumeration on a compact space — the
//! machinery behind the paper's "we ask CCmatic to produce all possible
//! solutions" result (E2) and the threshold sweeps (E3/E4).
//!
//! Run with `cargo bench -p ccmatic-bench --bench solution_space`.

use ccac_model::{NetConfig, Thresholds};
use ccmatic::enumerate::enumerate_all;
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic::template::{CoeffDomain, TemplateShape};
use ccmatic_bench::bench_case;
use ccmatic_cegis::Budget;
use ccmatic_num::{rat, Rat};
use std::time::Duration;

fn main() {
    let opts = SynthOptions {
        shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
        net: NetConfig { horizon: 4, history: 3, link_rate: Rat::one(), jitter: 1, buffer: None },
        thresholds: Thresholds::default(),
        mode: OptMode::RangePruningWce,
        budget: Budget { max_iterations: 2000, max_wall: Duration::from_secs(300) },
        wce_precision: rat(1, 2),
        incremental: true,
        threads: 1,
        seed: 0,
        dispatch_min: ccmatic::synth::DEFAULT_DISPATCH_MIN,
        certify: false,
        region_pruning: true,
        theory_sync: true,
    };
    bench_case("enumerate_lookback2_small", 1, 5, || {
        let r = enumerate_all(&opts);
        assert!(r.complete);
    });
}
