//! Benchmark of exhaustive solution enumeration on a compact space — the
//! machinery behind the paper's "we ask CCmatic to produce all possible
//! solutions" result (E2) and the threshold sweeps (E3/E4).

use ccac_model::{NetConfig, Thresholds};
use ccmatic::enumerate::enumerate_all;
use ccmatic::synth::{OptMode, SynthOptions};
use ccmatic::template::{CoeffDomain, TemplateShape};
use ccmatic_cegis::Budget;
use ccmatic_num::{rat, Rat};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_enumerate(c: &mut Criterion) {
    let opts = SynthOptions {
        shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
        net: NetConfig { horizon: 4, history: 3, link_rate: Rat::one(), jitter: 1, buffer: None },
        thresholds: Thresholds::default(),
        mode: OptMode::RangePruningWce,
        budget: Budget { max_iterations: 2000, max_wall: Duration::from_secs(300) },
        wce_precision: rat(1, 2),
    };
    let mut group = c.benchmark_group("solution_space");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    group.bench_function("enumerate_lookback2_small", |b| {
        b.iter(|| {
            let r = enumerate_all(&opts);
            assert!(r.complete);
            r.solutions.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumerate);
criterion_main!(benches);
