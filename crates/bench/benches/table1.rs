//! Benchmark tracking Table 1's headline cell: time to first solution with
//! each optimization level on the (CI-scale) No-cwnd/Small space. The full
//! paper-scale grid is the `table1` *binary*; this bench exists so
//! regressions in the synthesis pipeline show up in `cargo bench`.
//!
//! Run with `cargo bench -p ccmatic-bench --bench table1`.

use ccmatic::synth::OptMode;
use ccmatic_bench::{bench_case, run_cell, run_cell_with, table1_rows, Scale};
use std::time::Duration;

fn main() {
    let rows = table1_rows(Scale::Ci);
    let row = rows[0].clone(); // No cwnd / Small

    bench_case("table1/no_cwnd_small/rp_wce", 1, 5, || {
        let cell = run_cell(&row, OptMode::RangePruningWce, Duration::from_secs(120));
        assert!(cell.solved);
    });
    bench_case("table1/no_cwnd_small/rp_wce_scratch", 1, 5, || {
        let cell = run_cell_with(
            &row,
            OptMode::RangePruningWce,
            Duration::from_secs(120),
            false,
            1,
            false,
            true,
        );
        assert!(cell.solved);
    });
    bench_case("table1/no_cwnd_small/rp_wce_certified", 1, 5, || {
        let cell = run_cell_with(
            &row,
            OptMode::RangePruningWce,
            Duration::from_secs(120),
            true,
            1,
            true,
            true,
        );
        assert!(cell.solved);
        assert!(cell.proof_clauses > 0, "certified run must have replayed certificates");
    });
    bench_case("table1/no_cwnd_small/rp", 1, 5, || {
        let cell = run_cell(&row, OptMode::RangePruning, Duration::from_secs(120));
        assert!(cell.solved);
    });

    // The Baseline column is measured separately with a short budget: it is
    // expected to be dramatically slower (the paper's DNF behaviour); we
    // record the time-to-budget rather than failing the bench.
    bench_case("table1/no_cwnd_small/baseline_budgeted", 0, 3, || {
        let _ = run_cell(&row, OptMode::Baseline, Duration::from_secs(2));
    });
}
