//! Criterion benchmark tracking Table 1's headline cell: time to first
//! solution with each optimization level on the (CI-scale) No-cwnd/Small
//! space. The full paper-scale grid is the `table1` *binary*; this bench
//! exists so regressions in the synthesis pipeline show up in `cargo bench`.

use ccmatic::synth::OptMode;
use ccmatic_bench::{run_cell, table1_rows, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table1_cell(c: &mut Criterion) {
    let rows = table1_rows(Scale::Ci);
    let row = rows[0].clone(); // No cwnd / Small

    let mut group = c.benchmark_group("table1/no_cwnd_small");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));

    group.bench_function("rp_wce", |b| {
        b.iter(|| {
            let cell = run_cell(&row, OptMode::RangePruningWce, Duration::from_secs(120));
            assert!(cell.solved);
            cell.iterations
        })
    });
    group.bench_function("rp", |b| {
        b.iter(|| {
            let cell = run_cell(&row, OptMode::RangePruning, Duration::from_secs(120));
            assert!(cell.solved);
            cell.iterations
        })
    });
    group.finish();

    // The Baseline column is measured separately with a short budget: it is
    // expected to be dramatically slower (the paper's DNF behaviour); we
    // record the time-to-budget rather than failing the bench.
    let mut slow = c.benchmark_group("table1/no_cwnd_small_baseline");
    slow.sample_size(10);
    slow.measurement_time(Duration::from_secs(25));
    slow.bench_function("baseline_budgeted", |b| {
        b.iter(|| {
            let cell = run_cell(&row, OptMode::Baseline, Duration::from_secs(2));
            cell.iterations
        })
    });
    slow.finish();
}

criterion_group!(benches, bench_table1_cell);
criterion_main!(benches);
