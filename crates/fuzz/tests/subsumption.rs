//! Fuzz corpus → CEGIS learn sites: the serial subsumption guard must
//! fire on redundant fuzz-found traces, and `synthesize_seeded` must
//! accept a fuzz corpus as warm-start counterexamples.

use ccac_model::{NetConfig, Thresholds};
use ccmatic::generator::FeasibilityMode;
use ccmatic::lift::lift_checked;
use ccmatic::replay::TraceReplay;
use ccmatic::synth::{build_loop, synthesize_seeded, SynthOptions};
use ccmatic::template::{CcaSpec, CoeffDomain, TemplateShape};
use ccmatic_cegis::{Budget, Generator, Outcome};
use ccmatic_fuzz::ScheduleGenome;
use ccmatic_num::{int, Rat};
use std::time::Duration;

fn small_net() -> NetConfig {
    NetConfig { horizon: 6, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None }
}

fn opts() -> SynthOptions {
    SynthOptions {
        shape: TemplateShape {
            lookback: 1,
            use_cwnd: false,
            domain: CoeffDomain::Custom(vec![int(0), int(6), int(7)]),
        },
        net: small_net(),
        thresholds: Thresholds::default(),
        budget: Budget { max_iterations: 200, max_wall: Duration::from_secs(120) },
        ..SynthOptions::default()
    }
}

/// Two broken constant-window candidates attacked by the *same* benign
/// fuzz genome lift to traces with identical service and waste schedules
/// (they differ only in the sender/cwnd rows the replayer recomputes
/// anyway). Learning the second through the serial `GenAdapter` after the
/// first must trip the subsumption guard instead of asserting a redundant
/// counterexample.
#[test]
fn subsumption_guard_fires_on_a_fuzz_corpus() {
    let o = opts();
    let c1 = CcaSpec { alpha: vec![], beta: vec![int(0)], gamma: int(6) };
    let c2 = CcaSpec { alpha: vec![], beta: vec![int(0)], gamma: int(7) };

    // The benign genome: ideal band position, eager waste, no backlog —
    // the standing queue is entirely the candidate's own oversized window.
    let genome = ScheduleGenome::ideal(o.net.history + o.net.horizon);
    let lift = |spec: &CcaSpec| {
        lift_checked(spec, &genome.lift_config(&o.net, &int(7))).expect("eager lifts are feasible")
    };
    let (t1, t2) = (lift(&c1), lift(&c2));
    assert_ne!(t1, t2, "different windows must give different sender rows");
    assert_eq!(t1.s, t2.s, "service is schedule-driven, not candidate-driven");

    let replay =
        TraceReplay::new(o.net.clone(), o.thresholds.clone(), FeasibilityMode::RangePruning);
    assert!(replay.refutes(&c1, &t1), "queue 5 > delay 4 must refute γ=6");
    assert!(replay.refutes(&c2, &t2), "queue 6 > delay 4 must refute γ=7");

    let (mut gen, _ver) = build_loop(&o);
    gen.learn(&c1, &t1);
    assert_eq!(gen.cex_subsumed, 0, "first trace must be asserted");
    gen.learn(&c2, &t2);
    assert_eq!(
        gen.cex_subsumed, 1,
        "second trace carries no new service/waste content; the guard must drop it"
    );
}

/// A fuzz corpus warm-starts CEGIS: seeds that replay as refutations are
/// pre-learned (counted in `warm_traces_seeded`), and the loop still
/// reaches the right outcome.
#[test]
fn fuzz_seeds_warm_start_cegis() {
    let o = opts();
    let c1 = CcaSpec { alpha: vec![], beta: vec![int(0)], gamma: int(6) };
    let genome = ScheduleGenome::ideal(o.net.history + o.net.horizon);
    let trace =
        lift_checked(&c1, &genome.lift_config(&o.net, &int(7))).expect("eager lifts are feasible");

    let seeded = synthesize_seeded(&o, &[(c1, trace)]);
    assert_eq!(seeded.stats.warm_traces_seeded, 1, "the refuting seed must be pre-learned");
    assert_eq!(seeded.stats.warm_traces_rejected, 0);

    // γ = 0 (the all-zero candidate) trivially violates utilization; the
    // broken constants are excluded; the cell has no solution — seeded and
    // cold runs must agree on that.
    let cold = ccmatic::synth::synthesize(&o);
    match (&seeded.outcome, &cold.outcome) {
        (Outcome::NoSolution, Outcome::NoSolution) => {}
        other => panic!("seeded/cold outcome mismatch: {other:?}"),
    }
    assert!(
        seeded.stats.iterations <= cold.stats.iterations,
        "a pre-learned refutation cannot cost iterations: seeded {} vs cold {}",
        seeded.stats.iterations,
        cold.stats.iterations
    );
}
