//! `ccmatic-fuzz` — adversarial trace fuzzing for the CCmatic loop.
//!
//! The SMT verifier quantifies over *every* feasible link behaviour; this
//! crate attacks from the other side, *searching* for concrete feasible
//! behaviours that break a fixed CCA. A seeded genetic algorithm evolves
//! quantized link schedules ([`genome`]), scores them by objective-violation
//! margin in the `f64` simulator ([`fitness`]), confirms hits in exact
//! rational arithmetic via the trace lift, and cross-checks every confirmed
//! failure against the verifier's verdict ([`engine`]). A confirmed concrete
//! failure on a candidate the verifier certified is a **model gap** — a
//! soundness bug in the encoding — minimized by [`shrink`] and dumped as a
//! replayable artifact. Everything else lands in the [`corpus`] and feeds
//! back into CEGIS as warm-start counterexamples.

pub mod corpus;
pub mod engine;
pub mod fitness;
pub mod genome;
pub mod shrink;

pub use corpus::{Corpus, CorpusEntry};
pub use engine::{run_fuzz, FuzzConfig, FuzzCounters, FuzzReport, FuzzTarget, ModelGapReport};
pub use fitness::{evaluate, Fitness, FitnessConfig, ModelCca, Violation};
pub use genome::ScheduleGenome;
pub use shrink::shrink;
