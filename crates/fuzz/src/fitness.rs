//! The `f64` screening tier: run a genome through the simulator and score
//! how close the trajectory comes to violating the verifier's desired
//! property on the model window.
//!
//! Scores are *screens*, not verdicts — float arithmetic drifts once band
//! positions compound (denominators grow as `16^t`), so every flagged
//! genome is re-derived in exact rationals and judged by
//! [`TraceReplay::refutes`](ccmatic::replay::TraceReplay) before anything
//! is claimed. The screen's job is cheap gradient: continuous violation
//! margins the genetic search can climb even while every genome in the
//! population still satisfies the property.

use ccac_model::{NetConfig, Thresholds};
use ccmatic::template::CcaSpec;
use ccmatic_simnet::{
    run_simulation_with_hook, Cca, LinkConfig, Observation, SimConfig, StepRecord, WastePolicy,
};

/// A [`CcaSpec`] evaluated under the *model's* observation convention:
/// `cwnd(t) = γ + Σᵢ αᵢ·cwnd(t−i−1) + Σᵢ βᵢ·S(t−i−2)`, with lookback past
/// the trace start reading the model anchors (`S = 0`) instead of the
/// simulator's saturate-at-oldest. [`ccmatic_simnet::LinearCca`] taps one
/// step fresher (`S(t−i−1)`); using it here would make the screen disagree
/// with the exact lift on every ack-driven candidate.
pub struct ModelCca {
    alpha: Vec<f64>,
    beta: Vec<f64>,
    gamma: f64,
}

impl ModelCca {
    /// Lower a spec's coefficients to `f64` (exact for the integer and
    /// dyadic coefficient domains the synthesizer searches).
    pub fn new(spec: &CcaSpec) -> Self {
        let (alpha, beta, gamma) = spec.coefficients_f64();
        ModelCca { alpha, beta, gamma }
    }
}

impl Cca for ModelCca {
    fn on_round(&mut self, obs: &Observation) -> f64 {
        let mut cwnd = self.gamma;
        for (i, a) in self.alpha.iter().enumerate() {
            cwnd += a * obs.cwnd_back(i + 1);
        }
        for (i, b) in self.beta.iter().enumerate() {
            // Model tap S(t−i−2); rounds before 0 read the anchor S = 0.
            let back = i + 2;
            let s = if back <= obs.t { obs.ack_back(back) } else { 0.0 };
            cwnd += b * s;
        }
        cwnd
    }

    fn name(&self) -> String {
        "model-template".into()
    }
}

/// Which disjunct of the desired property a trajectory violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Utilization shortfall without cwnd growth (first clause).
    Starvation,
    /// Delay overshoot without queue drain or cwnd backoff (second clause).
    DelayOvershoot,
}

/// Screening outcome for one genome.
#[derive(Clone, Copy, Debug)]
pub struct Fitness {
    /// Selection score: the violation margin (higher = closer to breaking
    /// the property), plus a large bonus when a clause is fully violated.
    pub score: f64,
    /// `Some` iff the trajectory violates the property in `f64`.
    pub violated: Option<Violation>,
}

/// Bonus added once a clause is fully violated, so any violating genome
/// outranks every non-violating one.
const VIOLATION_BONUS: f64 = 1.0e3;

/// Network/threshold context for the screen (mirrors the verifier's).
#[derive(Clone, Debug)]
pub struct FitnessConfig {
    /// Network shape — fixes the simulated window to `history + horizon`
    /// rounds, with the property read on the model window `[0, T]`.
    pub net: NetConfig,
    /// The objective being fuzzed against.
    pub thresholds: Thresholds,
    /// Round-0 cwnd floor (mirrors `SimConfig::initial_cwnd`).
    pub initial_cwnd: f64,
}

impl FitnessConfig {
    fn sim_config(&self, initial_backlog: f64) -> SimConfig {
        SimConfig {
            rounds: self.net.history + self.net.horizon,
            warmup: 0,
            link: LinkConfig {
                rate: self.net.link_rate.to_f64(),
                jitter: self.net.jitter,
                waste: WastePolicy::Eager,
            },
            initial_backlog,
            initial_cwnd: self.initial_cwnd,
        }
    }
}

/// Run one genome's schedule against `cca` and score the trajectory
/// against the desired property on the model window.
///
/// Simulator round `u` is model time `t = u + 1 − h`, so the enforced
/// window `t ∈ [0, T]` is rounds `[h−1, h+T−1]`; `t = 0` state comes from
/// round `h−1` and `t = T` from the last round. Queue is `A − S` (the
/// lossless scope). The fold runs in the per-step hook, so the screen
/// never re-scans the finished trajectory.
pub fn evaluate(
    cca: &mut dyn Cca,
    schedule: &mut dyn ccmatic_simnet::LinkSchedule,
    initial_backlog: f64,
    cfg: &FitnessConfig,
) -> Fitness {
    let h = cfg.net.history;
    let t_end = cfg.net.horizon;
    let sim = cfg.sim_config(initial_backlog);
    let first = h - 1; // round holding model t = 0
    let last = h + t_end - 1; // round holding t = T

    let mut s0 = 0.0;
    let mut s_t = 0.0;
    let mut cwnd0 = 0.0;
    let mut cwnd_t = 0.0;
    let mut q0 = 0.0;
    let mut q_t = 0.0;
    let mut max_q = f64::NEG_INFINITY;
    run_simulation_with_hook(cca, schedule, &sim, &mut |r: &StepRecord| {
        if r.t < first {
            return;
        }
        if r.t == first {
            s0 = r.served;
            cwnd0 = r.cwnd;
            q0 = r.queue;
        }
        max_q = max_q.max(r.queue);
        s_t = r.served;
        cwnd_t = r.cwnd;
        q_t = r.queue;
    });
    debug_assert!(last >= first);

    let th_util = cfg.thresholds.util.to_f64();
    let th_delay = cfg.thresholds.delay.to_f64();
    let rate = cfg.net.link_rate.to_f64();
    let target = th_util * rate * t_end as f64;

    // Clause 1 (¬util_ok ∧ ¬cwnd_up): margins must *all* be met, so the
    // binding one — the minimum — is the score.
    let score_a = (target - (s_t - s0)).min(cwnd0 - cwnd_t);
    let violated_a = target - (s_t - s0) > 0.0 && cwnd0 - cwnd_t >= 0.0;

    // Clause 2 (¬queue_ok ∧ ¬queue_down ∧ ¬cwnd_down).
    let score_b = (max_q - th_delay).min(q_t - q0).min(cwnd_t - cwnd0);
    let violated_b = max_q - th_delay > 0.0 && q_t - q0 >= 0.0 && cwnd_t - cwnd0 >= 0.0;

    let (score, violated) = if violated_a && (!violated_b || score_a >= score_b) {
        (score_a + VIOLATION_BONUS, Some(Violation::Starvation))
    } else if violated_b {
        (score_b + VIOLATION_BONUS, Some(Violation::DelayOvershoot))
    } else {
        (score_a.max(score_b), None)
    };
    Fitness { score, violated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic::known;
    use ccmatic_num::{int, Rat};
    use ccmatic_simnet::{IdealLink, TableSchedule};

    fn cfg(history: usize) -> FitnessConfig {
        FitnessConfig {
            net: NetConfig { horizon: 6, history, link_rate: Rat::one(), jitter: 1, buffer: None },
            thresholds: Thresholds::default(),
            initial_cwnd: 1.0,
        }
    }

    #[test]
    fn rocc_on_ideal_schedule_is_not_flagged() {
        let cfg = cfg(5);
        let mut cca = ModelCca::new(&known::rocc());
        let fit = evaluate(&mut cca, &mut IdealLink, 0.0, &cfg);
        assert!(fit.violated.is_none(), "RoCC flagged on the ideal link: {fit:?}");
    }

    #[test]
    fn oversized_const_window_overshoots_delay() {
        let cfg = cfg(5);
        let mut cca = ModelCca::new(&known::const_cwnd(int(8)));
        // Standing queue cwnd − BDP = 7 > 4 with a big initial backlog and
        // an ideal link; flat queue, flat cwnd.
        let fit = evaluate(&mut cca, &mut IdealLink, 7.0, &cfg);
        assert_eq!(fit.violated, Some(Violation::DelayOvershoot), "{fit:?}");
        assert!(fit.score > VIOLATION_BONUS - 10.0);
    }

    #[test]
    fn stalled_link_starves_the_zero_cca() {
        let cfg = cfg(5);
        let mut cca = ModelCca::new(&known::const_cwnd(Rat::zero()));
        let mut stall = TableSchedule { lambdas: vec![0.0], omegas: vec![1.0] };
        let fit = evaluate(&mut cca, &mut stall, 0.0, &cfg);
        assert_eq!(fit.violated, Some(Violation::Starvation), "{fit:?}");
    }

    #[test]
    fn margins_rank_near_misses_above_far_misses() {
        let cfg = cfg(5);
        // Steady queue = cwnd − BDP: 3 (far from the delay bound 4) vs
        // 3¾ (near). Both satisfy the property; the nearer miss must score
        // higher so selection has a gradient to climb.
        let far =
            evaluate(&mut ModelCca::new(&known::const_cwnd(int(4))), &mut IdealLink, 0.0, &cfg);
        let near = evaluate(
            &mut ModelCca::new(&known::const_cwnd(ccmatic_num::rat(19, 4))),
            &mut IdealLink,
            0.0,
            &cfg,
        );
        assert!(far.violated.is_none() && near.violated.is_none());
        assert!(near.score > far.score, "near {near:?} vs far {far:?}");
    }
}
