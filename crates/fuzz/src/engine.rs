//! The fuzzing engine: a seeded genetic search over schedule genomes,
//! with an exact-arithmetic confirmation tier and a verifier cross-check.
//!
//! # Pipeline
//!
//! 1. **Screen** (`f64`): every genome runs through the simulator
//!    ([`crate::fitness`]); the score is the margin to an objective
//!    violation, giving selection a gradient before any genome fails.
//! 2. **Confirm** (exact, spec targets only): a screened violation is
//!    lifted to an exact rational trace ([`ccmatic::lift`]), gated through
//!    the native model checker (`ccac_model::check_trace` — partial waste
//!    can leave the feasibility band; such lifts are counted, not
//!    claimed), and judged by [`TraceReplay::refutes`] — the same verdict
//!    the synthesizer's own learn sites use.
//! 3. **Cross-check**: the SMT verifier rules on the target once,
//!    up front. A confirmed concrete failure on a candidate the verifier
//!    *certified* is a **model gap**: the UNSAT claim said this trace
//!    cannot exist, and here it is. Gaps are shrunk
//!    ([`crate::shrink`]) and dumped as replayable JSON artifacts.
//! 4. **Feedback**: the corpus exports `(candidate, trace)` seeds for
//!    [`ccmatic::synth::synthesize_seeded`], warm-starting CEGIS with
//!    fuzz-found refutations.
//!
//! Everything is driven by one [`SmallRng`] stream; a `(config, seed)`
//! pair maps to exactly one report, bit for bit ([`FuzzReport::digest`]).

use crate::corpus::{genome_json, trace_json, Corpus, CorpusEntry};
use crate::fitness::{evaluate, Fitness, FitnessConfig, ModelCca};
use crate::genome::{ScheduleGenome, BACKLOG_MAX, GENE_STEPS};
use crate::shrink::shrink;
use ccac_model::{NetConfig, Thresholds, Trace};
use ccmatic::generator::FeasibilityMode;
use ccmatic::json::Json;
use ccmatic::lift::lift_checked;
use ccmatic::replay::TraceReplay;
use ccmatic::template::CcaSpec;
use ccmatic::verifier::{CcaVerifier, VerifyConfig};
use ccmatic_num::{rat, Rat, SmallRng};
use ccmatic_simnet::{AimdCca, Cca, ConstCwnd};
use std::collections::HashSet;

/// What the fuzzer attacks.
#[derive(Clone, Debug)]
pub enum FuzzTarget {
    /// A linear-template candidate: full pipeline — exact confirmation,
    /// verifier cross-check, CEGIS seeds.
    Spec(CcaSpec),
    /// The simulator's stateful AIMD caricature: screen tier only (no
    /// exact model semantics exist for it, so no gap claims).
    Aimd,
    /// A fixed window, screen tier only.
    ConstSim(f64),
}

impl FuzzTarget {
    fn make_cca(&self) -> Box<dyn Cca> {
        match self {
            FuzzTarget::Spec(spec) => Box::new(ModelCca::new(spec)),
            FuzzTarget::Aimd => Box::new(AimdCca::standard()),
            FuzzTarget::ConstSim(c) => Box::new(ConstCwnd(*c)),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> String {
        match self {
            FuzzTarget::Spec(spec) => spec.to_string(),
            FuzzTarget::Aimd => "aimd".into(),
            FuzzTarget::ConstSim(c) => format!("const-sim({c})"),
        }
    }
}

/// All knobs of one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// RNG seed — the whole run is a pure function of `(config, seed)`.
    pub seed: u64,
    /// Generations to evolve.
    pub generations: usize,
    /// Population size (≥ 4).
    pub population: usize,
    /// Network shape shared by screen, lift, replay, and verifier.
    pub net: NetConfig,
    /// The objective being attacked.
    pub thresholds: Thresholds,
    /// Round-0 cwnd floor (model `cwnd(−h)`).
    pub initial_cwnd: Rat,
    /// The CCA under attack.
    pub target: FuzzTarget,
    /// Skip the up-front SMT verify (no model-gap detection; used by
    /// callers that already know the verdict or only want failures).
    pub skip_verify: bool,
}

impl FuzzConfig {
    /// Conservative defaults against a given target: 30 generations of 24
    /// genomes on the default lossless net.
    pub fn new(target: FuzzTarget, seed: u64) -> Self {
        FuzzConfig {
            seed,
            generations: 30,
            population: 24,
            net: NetConfig::default(),
            thresholds: Thresholds::default(),
            initial_cwnd: Rat::one(),
            target,
            skip_verify: false,
        }
    }
}

/// Run counters (the `--stats` fuzz line).
#[derive(Clone, Copy, Debug, Default)]
pub struct FuzzCounters {
    /// Genomes screened through the simulator.
    pub genomes_evaluated: u64,
    /// Distinct confirmed failures (exact for spec targets, screened for
    /// sim-only targets).
    pub failures_found: u64,
    /// Confirmed failures on a verifier-certified target — each one is a
    /// soundness bug in the encoding.
    pub model_gaps: u64,
    /// Corpus traces asserted into a seeded CEGIS run (filled by the
    /// caller that runs [`ccmatic::synth::synthesize_seeded`]).
    pub cex_seeded: u64,
    /// Screened violations whose lift left the model's feasibility band
    /// (expected under partial waste) and were discarded unclaimed.
    pub lift_infeasible: u64,
}

/// A minimized, replayable soundness violation: the verifier certified
/// `spec`, yet `genome`'s schedule concretely drives it to an objective
/// violation inside the model's feasibility band.
#[derive(Clone, Debug)]
pub struct ModelGapReport {
    /// The certified-yet-broken candidate.
    pub spec: CcaSpec,
    /// The shrunk schedule.
    pub genome: ScheduleGenome,
    /// The exact lifted trace (passes `check_trace`, refutes `spec`).
    pub trace: Trace,
    /// Network the claim was made under.
    pub net: NetConfig,
    /// Thresholds the claim was made under.
    pub thresholds: Thresholds,
    /// The lift's initial cwnd.
    pub initial_cwnd: Rat,
}

impl ModelGapReport {
    /// Replayable JSON artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spec", Json::Str(self.spec.to_string())),
            (
                "coefficients",
                Json::obj(vec![
                    (
                        "alpha",
                        Json::Arr(
                            self.spec.alpha.iter().map(|r| Json::Str(r.to_string())).collect(),
                        ),
                    ),
                    (
                        "beta",
                        Json::Arr(
                            self.spec.beta.iter().map(|r| Json::Str(r.to_string())).collect(),
                        ),
                    ),
                    ("gamma", Json::Str(self.spec.gamma.to_string())),
                ]),
            ),
            ("genome", genome_json(&self.genome)),
            (
                "net",
                Json::obj(vec![
                    ("horizon", Json::UInt(self.net.horizon as u64)),
                    ("history", Json::UInt(self.net.history as u64)),
                    ("link_rate", Json::Str(self.net.link_rate.to_string())),
                    ("jitter", Json::UInt(self.net.jitter as u64)),
                ]),
            ),
            (
                "thresholds",
                Json::obj(vec![
                    ("util", Json::Str(self.thresholds.util.to_string())),
                    ("delay", Json::Str(self.thresholds.delay.to_string())),
                ]),
            ),
            ("initial_cwnd", Json::Str(self.initial_cwnd.to_string())),
            ("trace", trace_json(&self.trace)),
        ])
    }
}

/// Outcome of a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Run counters.
    pub counters: FuzzCounters,
    /// Best screening score per generation (the fitness trajectory).
    pub best_fitness: Vec<f64>,
    /// The up-front verifier verdict on the target (`None` for sim-only
    /// targets or `skip_verify`).
    pub verifier_passed: Option<bool>,
    /// Minimized soundness violations (capped; `counters.model_gaps` keeps
    /// the true count).
    pub gaps: Vec<ModelGapReport>,
    /// Confirmed failures, ready for replay or CEGIS seeding.
    pub corpus: Corpus,
}

/// Cap on *stored* (shrunk + dumped) gap reports per run; shrinking is
/// expensive and one minimized witness per encoding bug is plenty.
const MAX_GAP_REPORTS: usize = 8;

impl FuzzReport {
    /// Deterministic content digest (FNV-1a over counters, the fitness
    /// trajectory's bit patterns, and corpus/gap genome fingerprints) —
    /// two runs of the same `(config, seed)` must produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let c = &self.counters;
        for v in [c.genomes_evaluated, c.failures_found, c.model_gaps, c.lift_infeasible] {
            eat(v);
        }
        for f in &self.best_fitness {
            eat(f.to_bits());
        }
        for e in self.corpus.entries() {
            eat(e.genome.fingerprint());
        }
        for g in &self.gaps {
            eat(g.genome.fingerprint());
        }
        h
    }

    /// The `--stats` line.
    pub fn stats_line(&self) -> String {
        let c = &self.counters;
        format!(
            "fuzz: genomes evaluated {} · failures {} · model gaps {} · cex seeded {}",
            c.genomes_evaluated, c.failures_found, c.model_gaps, c.cex_seeded
        )
    }

    /// Machine-readable report (per-run column of `BENCH_fuzz.json`).
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        Json::obj(vec![
            (
                "counters",
                Json::obj(vec![
                    ("genomes_evaluated", Json::UInt(c.genomes_evaluated)),
                    ("failures_found", Json::UInt(c.failures_found)),
                    ("model_gaps", Json::UInt(c.model_gaps)),
                    ("cex_seeded", Json::UInt(c.cex_seeded)),
                    ("lift_infeasible", Json::UInt(c.lift_infeasible)),
                ]),
            ),
            ("verifier_passed", self.verifier_passed.map(Json::Bool).unwrap_or(Json::Null)),
            ("best_fitness", Json::Arr(self.best_fitness.iter().map(|&f| Json::Num(f)).collect())),
            ("gaps", Json::Arr(self.gaps.iter().map(ModelGapReport::to_json).collect())),
            ("corpus_size", Json::UInt(self.corpus.len() as u64)),
            ("digest", Json::Str(format!("{:016x}", self.digest()))),
        ])
    }
}

fn verify_target(cfg: &FuzzConfig, spec: &CcaSpec) -> bool {
    let mut verifier = CcaVerifier::new(VerifyConfig {
        net: cfg.net.clone(),
        thresholds: cfg.thresholds.clone(),
        worst_case: false,
        wce_precision: rat(1, 2),
        incremental: true,
        certify: false,
        search: Default::default(),
        theory_sync: true,
    });
    verifier.verify(spec).is_ok()
}

/// Structured first generation: the benign baseline, classic adversaries,
/// and random fill — so the search starts from the known attack archetypes
/// instead of pure noise.
fn initial_population(rng: &mut SmallRng, rounds: usize, population: usize) -> Vec<ScheduleGenome> {
    let mut pop = Vec::with_capacity(population);
    pop.push(ScheduleGenome::ideal(rounds));
    // Permanent stall at the service floor.
    let mut stall = ScheduleGenome::ideal(rounds);
    stall.lambdas.fill(0);
    pop.push(stall);
    // Sawtooth jitter.
    let mut saw = ScheduleGenome::ideal(rounds);
    for (u, l) in saw.lambdas.iter_mut().enumerate() {
        *l = if u % 2 == 0 { 0 } else { GENE_STEPS };
    }
    pop.push(saw);
    // Ideal link, maximal initial queue.
    let mut flood = ScheduleGenome::ideal(rounds);
    flood.backlog_q = BACKLOG_MAX;
    pop.push(flood);
    while pop.len() < population {
        pop.push(ScheduleGenome::random(rng, rounds));
    }
    pop.truncate(population);
    pop
}

/// Evolve schedules against the target. Deterministic in `(cfg)`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    assert!(cfg.population >= 4, "population must hold elites + parents");
    assert!(cfg.net.buffer.is_none(), "fuzzing is defined for the lossless scope");
    let rounds = cfg.net.history + cfg.net.horizon;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let fitness_cfg = FitnessConfig {
        net: cfg.net.clone(),
        thresholds: cfg.thresholds.clone(),
        initial_cwnd: cfg.initial_cwnd.to_f64(),
    };
    let replay =
        TraceReplay::new(cfg.net.clone(), cfg.thresholds.clone(), FeasibilityMode::RangePruning);

    let (spec, verifier_passed) = match &cfg.target {
        FuzzTarget::Spec(spec) => {
            let passed = (!cfg.skip_verify).then(|| verify_target(cfg, spec));
            (Some(spec.clone()), passed)
        }
        _ => (None, None),
    };

    let mut counters = FuzzCounters::default();
    let mut corpus = Corpus::new();
    let mut gaps: Vec<ModelGapReport> = Vec::new();
    let mut best_fitness = Vec::with_capacity(cfg.generations);
    // Genomes already pushed through the exact tier (by fingerprint), so
    // elites re-screened every generation aren't re-lifted every time.
    let mut confirmed: HashSet<u64> = HashSet::new();

    let mut population = initial_population(&mut rng, rounds, cfg.population);
    for _gen in 0..cfg.generations {
        // Screen.
        let scored: Vec<(ScheduleGenome, Fitness)> = population
            .iter()
            .map(|g| {
                let mut cca = cfg.target.make_cca();
                let mut table = g.table();
                let fit = evaluate(cca.as_mut(), &mut table, g.backlog_f64(), &fitness_cfg);
                counters.genomes_evaluated += 1;
                (g.clone(), fit)
            })
            .collect();
        best_fitness.push(scored.iter().map(|(_, f)| f.score).fold(f64::NEG_INFINITY, f64::max));

        // Confirm flagged genomes.
        for (genome, fit) in &scored {
            if fit.violated.is_none() || !confirmed.insert(genome.fingerprint()) {
                continue;
            }
            match &spec {
                Some(spec) => confirm_exact(
                    cfg,
                    spec,
                    &replay,
                    genome,
                    fit.score,
                    verifier_passed,
                    &mut counters,
                    &mut corpus,
                    &mut gaps,
                ),
                None => {
                    // Sim-only target: the screen verdict is all there is.
                    let admitted = corpus.add(CorpusEntry {
                        genome: genome.clone(),
                        trace: None,
                        score: fit.score,
                    });
                    if admitted {
                        counters.failures_found += 1;
                    }
                }
            }
        }

        // Select & breed (elitism + tournament), deterministically.
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by(|&a, &b| scored[b].1.score.total_cmp(&scored[a].1.score).then(a.cmp(&b)));
        let elites = 2.min(scored.len());
        let mut next: Vec<ScheduleGenome> =
            order[..elites].iter().map(|&i| scored[i].0.clone()).collect();
        let tournament = |rng: &mut SmallRng| -> usize {
            let mut best = rng.gen_range_usize(0, scored.len());
            for _ in 0..2 {
                let other = rng.gen_range_usize(0, scored.len());
                if scored[other].1.score > scored[best].1.score {
                    best = other;
                }
            }
            best
        };
        while next.len() < cfg.population {
            let a = tournament(&mut rng);
            let mut child = if rng.gen_bool(0.7) {
                let b = tournament(&mut rng);
                scored[a].0.crossover(&scored[b].0, &mut rng)
            } else {
                scored[a].0.clone()
            };
            child.mutate(&mut rng);
            if rng.gen_bool(0.3) {
                child.mutate(&mut rng);
            }
            next.push(child);
        }
        population = next;
    }

    FuzzReport { counters, best_fitness, verifier_passed, gaps, corpus }
}

/// The exact tier for one flagged genome: lift → feasibility gate →
/// replay verdict → corpus/gap bookkeeping.
#[allow(clippy::too_many_arguments)]
fn confirm_exact(
    cfg: &FuzzConfig,
    spec: &CcaSpec,
    replay: &TraceReplay,
    genome: &ScheduleGenome,
    score: f64,
    verifier_passed: Option<bool>,
    counters: &mut FuzzCounters,
    corpus: &mut Corpus,
    gaps: &mut Vec<ModelGapReport>,
) {
    let lift_cfg = genome.lift_config(&cfg.net, &cfg.initial_cwnd);
    let trace = match lift_checked(spec, &lift_cfg) {
        Ok(trace) => trace,
        Err(_) => {
            counters.lift_infeasible += 1;
            return;
        }
    };
    if !replay.refutes(spec, &trace) {
        // Float drift: the screen flagged it, exact arithmetic disagrees.
        return;
    }
    let admitted =
        corpus.add(CorpusEntry { genome: genome.clone(), trace: Some(trace.clone()), score });
    if !admitted {
        return;
    }
    counters.failures_found += 1;
    if verifier_passed == Some(true) {
        // The verifier said no such trace exists. Minimize and report.
        counters.model_gaps += 1;
        if gaps.len() < MAX_GAP_REPORTS {
            let mut still_fails = |g: &ScheduleGenome| {
                lift_checked(spec, &g.lift_config(&cfg.net, &cfg.initial_cwnd))
                    .map(|t| replay.refutes(spec, &t))
                    .unwrap_or(false)
            };
            let small = shrink(genome, &mut still_fails);
            let small_trace = lift_checked(spec, &small.lift_config(&cfg.net, &cfg.initial_cwnd))
                .expect("shrink preserves feasibility");
            gaps.push(ModelGapReport {
                spec: spec.clone(),
                genome: small,
                trace: small_trace,
                net: cfg.net.clone(),
                thresholds: cfg.thresholds.clone(),
                initial_cwnd: cfg.initial_cwnd.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic::known;
    use ccmatic_num::int;

    fn net(history: usize) -> NetConfig {
        NetConfig { horizon: 6, history, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    fn quick(target: FuzzTarget, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            generations: 8,
            population: 16,
            net: net(5),
            thresholds: Thresholds::default(),
            initial_cwnd: Rat::one(),
            target,
            skip_verify: false,
        }
    }

    #[test]
    fn runs_are_bit_reproducible() {
        let cfg = quick(FuzzTarget::Spec(known::const_cwnd(int(6))), 42);
        let (a, b) = (run_fuzz(&cfg), run_fuzz(&cfg));
        assert_eq!(a.digest(), b.digest(), "same (config, seed) must be bit-identical");
        let other = run_fuzz(&quick(FuzzTarget::Spec(known::const_cwnd(int(6))), 43));
        assert_ne!(a.digest(), other.digest(), "different seeds should explore differently");
    }

    #[test]
    fn broken_const_window_yields_exact_failures_and_no_gap() {
        // cwnd = 6 BDP over a delay threshold of 4: a genuine objective
        // violation the verifier also refutes — failures yes, gaps no.
        let cfg = quick(FuzzTarget::Spec(known::const_cwnd(int(6))), 7);
        let report = run_fuzz(&cfg);
        assert_eq!(report.verifier_passed, Some(false));
        assert!(
            report.counters.failures_found > 0,
            "fuzzer missed the standing queue of a cwnd-6 flow: {:?}",
            report.counters
        );
        assert_eq!(report.counters.model_gaps, 0);
        assert!(!report.corpus.is_empty());
        assert!(report.corpus.entries().iter().all(|e| e.trace.is_some()));
    }

    #[test]
    fn verified_rocc_yields_no_failures_and_no_gaps() {
        // Soundness: every corpus admission replays exactly; a verified
        // CCA admits no exact failure on any schedule, so zero failures
        // and zero gaps — on every seed we try.
        for seed in [1, 2] {
            let report = run_fuzz(&quick(FuzzTarget::Spec(known::rocc()), seed));
            assert_eq!(report.verifier_passed, Some(true));
            assert_eq!(
                report.counters.model_gaps, 0,
                "model gap claimed against verified RoCC (seed {seed})"
            );
            assert_eq!(
                report.counters.failures_found, 0,
                "exact failure claimed against verified RoCC (seed {seed})"
            );
        }
    }

    #[test]
    fn sim_only_target_collects_screen_failures_without_claims() {
        let report = run_fuzz(&quick(FuzzTarget::Aimd, 11));
        assert_eq!(report.verifier_passed, None, "sim-only targets make no verifier claim");
        assert_eq!(report.counters.model_gaps, 0);
        assert!(report.corpus.entries().iter().all(|e| e.trace.is_none()));
    }

    #[test]
    fn corpus_seeds_feed_cegis() {
        let spec = known::const_cwnd(int(6));
        let cfg = quick(FuzzTarget::Spec(spec.clone()), 7);
        let report = run_fuzz(&cfg);
        let seeds = report.corpus.cegis_seeds(&spec);
        assert_eq!(seeds.len(), report.corpus.len());
        // Every seed must re-gate positively under the same configuration
        // (synthesize_seeded re-checks exactly this predicate).
        let replay = TraceReplay::new(
            cfg.net.clone(),
            cfg.thresholds.clone(),
            FeasibilityMode::RangePruning,
        );
        for (cand, trace) in &seeds {
            assert!(replay.refutes(cand, trace));
        }
    }
}
