//! Schedule genomes: quantized adversarial link schedules.
//!
//! A genome encodes one concrete adversary inside the CCAC feasibility
//! band: a per-round band position λ (where between the lagged service
//! floor and the token cap the link serves), a per-round waste fraction ω
//! (how much of each idle step's surplus tokens the link discards), and an
//! initial standing queue. All genes are quantized to small dyadic
//! rationals (`k/16` for λ/ω, `q/4` for the backlog) so the same genome
//! evaluates *identically* as `f64` in the simulator and as exact `Rat`
//! in the verifier-side lift — quantization is what makes the screening
//! tier and the confirming tier comparable at all.

use ccac_model::NetConfig;
use ccmatic::lift::LiftConfig;
use ccmatic_num::{rat, Rat, SmallRng};
use ccmatic_simnet::TableSchedule;

/// λ/ω quantization denominator.
pub const GENE_STEPS: u8 = 16;
/// Backlog quantization denominator (`backlog = backlog_q / 4` BDP).
pub const BACKLOG_STEPS: u8 = 4;
/// Largest encodable backlog numerator (8 BDP — far beyond any delay
/// threshold in the paper's sweep).
pub const BACKLOG_MAX: u8 = 32;

/// One adversarial link schedule, quantized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleGenome {
    /// Band position per simulator round: `lambdas[u] / 16 ∈ [0, 1]`.
    pub lambdas: Vec<u8>,
    /// Waste fraction per round: `omegas[u] / 16 ∈ [0, 1]`.
    pub omegas: Vec<u8>,
    /// Initial standing queue: `backlog_q / 4` BDP.
    pub backlog_q: u8,
}

impl ScheduleGenome {
    /// The benign genome: ideal link (λ = 1), eager waste (ω = 1), empty
    /// queue — the schedule every CCA is happiest under, and the shrinker's
    /// fixpoint direction.
    pub fn ideal(rounds: usize) -> Self {
        ScheduleGenome {
            lambdas: vec![GENE_STEPS; rounds],
            omegas: vec![GENE_STEPS; rounds],
            backlog_q: 0,
        }
    }

    /// A uniformly random genome.
    pub fn random(rng: &mut SmallRng, rounds: usize) -> Self {
        ScheduleGenome {
            lambdas: (0..rounds)
                .map(|_| rng.gen_range_usize(0, GENE_STEPS as usize + 1) as u8)
                .collect(),
            omegas: (0..rounds)
                .map(|_| rng.gen_range_usize(0, GENE_STEPS as usize + 1) as u8)
                .collect(),
            backlog_q: rng.gen_range_usize(0, BACKLOG_MAX as usize + 1) as u8,
        }
    }

    /// Apply one mutation, chosen from a composable repertoire of
    /// point tweaks and structured span edits (idle phases, catch-up
    /// bursts, sawtooth jitter, waste-withholding flushes).
    pub fn mutate(&mut self, rng: &mut SmallRng) {
        let n = self.lambdas.len();
        if n == 0 {
            return;
        }
        let span = |rng: &mut SmallRng| -> (usize, usize) {
            let start = rng.gen_range_usize(0, n);
            let len = rng.gen_range_usize(1, (n - start).max(1) + 1);
            (start, start + len)
        };
        match rng.gen_range_usize(0, 8) {
            // Point λ tweak.
            0 => {
                let i = rng.gen_range_usize(0, n);
                self.lambdas[i] = rng.gen_range_usize(0, GENE_STEPS as usize + 1) as u8;
            }
            // Point ω tweak.
            1 => {
                let i = rng.gen_range_usize(0, n);
                self.omegas[i] = rng.gen_range_usize(0, GENE_STEPS as usize + 1) as u8;
            }
            // Idle phase: the link stalls at its floor for a while.
            2 => {
                let (a, b) = span(rng);
                self.lambdas[a..b].fill(0);
            }
            // Burst: serve flat-out (floor-to-cap catch-up).
            3 => {
                let (a, b) = span(rng);
                self.lambdas[a..b].fill(GENE_STEPS);
            }
            // Sawtooth jitter over a span.
            4 => {
                let (a, b) = span(rng);
                for (k, l) in self.lambdas[a..b].iter_mut().enumerate() {
                    *l = if k % 2 == 0 { 0 } else { GENE_STEPS };
                }
            }
            // Withhold waste over a span (tokens pile up — raises later
            // floors, probing the model's waste-placement freedom).
            5 => {
                let (a, b) = span(rng);
                self.omegas[a..b].fill(0);
            }
            // Flush: back to eager waste over a span.
            6 => {
                let (a, b) = span(rng);
                self.omegas[a..b].fill(GENE_STEPS);
            }
            // Backlog tweak.
            _ => {
                self.backlog_q = rng.gen_range_usize(0, BACKLOG_MAX as usize + 1) as u8;
            }
        }
    }

    /// One-point crossover: a prefix of `self` spliced onto a suffix of
    /// `other` (both gene tracks cut at the same point), backlog inherited
    /// from either parent.
    pub fn crossover(&self, other: &Self, rng: &mut SmallRng) -> Self {
        let n = self.lambdas.len().min(other.lambdas.len());
        if n == 0 {
            return self.clone();
        }
        let cut = rng.gen_range_usize(0, n + 1);
        let splice = |a: &[u8], b: &[u8]| -> Vec<u8> {
            a[..cut].iter().chain(&b[cut..n]).copied().collect()
        };
        ScheduleGenome {
            lambdas: splice(&self.lambdas, &other.lambdas),
            omegas: splice(&self.omegas, &other.omegas),
            backlog_q: if rng.gen_bool(0.5) { self.backlog_q } else { other.backlog_q },
        }
    }

    /// The `f64` schedule for the simulator screen (exact: every gene is a
    /// dyadic rational).
    pub fn table(&self) -> TableSchedule {
        TableSchedule {
            lambdas: self.lambdas.iter().map(|&k| k as f64 / GENE_STEPS as f64).collect(),
            omegas: self.omegas.iter().map(|&k| k as f64 / GENE_STEPS as f64).collect(),
        }
    }

    /// The initial backlog in BDP units.
    pub fn backlog_f64(&self) -> f64 {
        self.backlog_q as f64 / BACKLOG_STEPS as f64
    }

    /// The exact-rational lift configuration for this genome.
    pub fn lift_config(&self, net: &NetConfig, initial_cwnd: &Rat) -> LiftConfig {
        LiftConfig {
            net: net.clone(),
            lambdas: self.lambdas.iter().map(|&k| rat(k as i64, GENE_STEPS as i64)).collect(),
            omegas: self.omegas.iter().map(|&k| rat(k as i64, GENE_STEPS as i64)).collect(),
            initial_backlog: rat(self.backlog_q as i64, BACKLOG_STEPS as i64),
            initial_cwnd: initial_cwnd.clone(),
        }
    }

    /// Stable content hash (FNV-1a) for dedup and run digests.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for &l in &self.lambdas {
            eat(l);
        }
        eat(0xff);
        for &o in &self.omegas {
            eat(o);
        }
        eat(0xfe);
        eat(self.backlog_q);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_and_crossover_are_seed_deterministic() {
        let build = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = ScheduleGenome::random(&mut rng, 12);
            let other = ScheduleGenome::random(&mut rng, 12);
            for _ in 0..20 {
                g.mutate(&mut rng);
                g = g.crossover(&other, &mut rng);
            }
            g
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn genes_stay_in_range_under_mutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut g = ScheduleGenome::ideal(10);
        for _ in 0..500 {
            g.mutate(&mut rng);
            assert!(g.lambdas.iter().all(|&l| l <= GENE_STEPS));
            assert!(g.omegas.iter().all(|&o| o <= GENE_STEPS));
            assert!(g.backlog_q <= BACKLOG_MAX);
        }
    }

    #[test]
    fn f64_and_rat_views_agree() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = ScheduleGenome::random(&mut rng, 8);
        let net = NetConfig::default();
        let lift = g.lift_config(&net, &Rat::one());
        let table = g.table();
        for (f, r) in table.lambdas.iter().zip(&lift.lambdas) {
            assert_eq!(*f, r.to_f64(), "λ quantization must be exact in both views");
        }
        for (f, r) in table.omegas.iter().zip(&lift.omegas) {
            assert_eq!(*f, r.to_f64());
        }
        assert_eq!(g.backlog_f64(), lift.initial_backlog.to_f64());
    }

    #[test]
    fn fingerprint_separates_genomes() {
        let a = ScheduleGenome::ideal(6);
        let mut b = a.clone();
        b.lambdas[3] = 0;
        let mut c = a.clone();
        c.backlog_q = 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), ScheduleGenome::ideal(6).fingerprint());
    }
}
