//! The failure corpus: deduplicated, bounded, and exportable — both as a
//! replayable JSON artifact and as CEGIS warm-start seeds.

use crate::genome::ScheduleGenome;
use ccac_model::Trace;
use ccmatic::json::Json;
use ccmatic::template::CcaSpec;
use ccmatic_num::Rat;

/// One confirmed failure.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The (shrunk) schedule that triggers the failure.
    pub genome: ScheduleGenome,
    /// The exact lifted trace, when the target has one (spec targets);
    /// sim-only targets store the genome alone.
    pub trace: Option<Trace>,
    /// Screening score at the time of admission.
    pub score: f64,
}

/// Bounded, deduplicated store of confirmed failures.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    /// Capacity; 0 means unbounded.
    cap: usize,
}

/// Default corpus bound: enough distinct failures to seed CEGIS without
/// drowning the generator in near-duplicate assertions.
pub const DEFAULT_CAP: usize = 64;

impl Corpus {
    /// An empty corpus with the default capacity.
    pub fn new() -> Self {
        Corpus { entries: Vec::new(), cap: DEFAULT_CAP }
    }

    /// Admit a failure unless an equivalent one is already stored —
    /// equivalence is exact-trace equality when a trace exists (two
    /// genomes realizing the same model behaviour are the same failure),
    /// genome equality otherwise. At capacity, the lowest-scoring entry
    /// is evicted if the newcomer beats it. Returns `true` on admission.
    pub fn add(&mut self, entry: CorpusEntry) -> bool {
        let dup = self.entries.iter().any(|e| match (&e.trace, &entry.trace) {
            (Some(a), Some(b)) => a == b,
            _ => e.genome == entry.genome,
        });
        if dup {
            return false;
        }
        if self.cap > 0 && self.entries.len() >= self.cap {
            let (worst, score) = self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.score))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty at capacity");
            if entry.score <= score {
                return false;
            }
            self.entries.remove(worst);
        }
        self.entries.push(entry);
        true
    }

    /// The stored failures, admission-ordered.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of stored failures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// CEGIS warm-start seeds: every exact-confirmed trace, paired with
    /// the candidate it refutes (all entries of a spec-target run refute
    /// the same fixed CCA, which is exactly what
    /// [`ccmatic::synth::synthesize_seeded`] re-gates per seed).
    pub fn cegis_seeds(&self, refuted: &CcaSpec) -> Vec<(CcaSpec, Trace)> {
        self.entries
            .iter()
            .filter_map(|e| e.trace.as_ref().map(|t| (refuted.clone(), t.clone())))
            .collect()
    }

    /// Replayable JSON form.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    let mut fields =
                        vec![("genome", genome_json(&e.genome)), ("score", Json::Num(e.score))];
                    if let Some(t) = &e.trace {
                        fields.push(("trace", trace_json(t)));
                    }
                    Json::obj(fields)
                })
                .collect(),
        )
    }
}

/// A genome as JSON (enough to reconstruct it exactly).
pub fn genome_json(g: &ScheduleGenome) -> Json {
    Json::obj(vec![
        ("lambdas", Json::Arr(g.lambdas.iter().map(|&k| Json::UInt(k as u64)).collect())),
        ("omegas", Json::Arr(g.omegas.iter().map(|&k| Json::UInt(k as u64)).collect())),
        ("backlog_q", Json::UInt(g.backlog_q as u64)),
    ])
}

fn rat_json(r: &Rat) -> Json {
    Json::Str(format!("{r}"))
}

/// A trace as JSON, rationals rendered exactly (`n/d` strings).
pub fn trace_json(t: &Trace) -> Json {
    let col = |v: &[Rat]| Json::Arr(v.iter().map(rat_json).collect());
    Json::obj(vec![
        ("t_min", Json::Num(t.t_min as f64)),
        ("t_max", Json::Num(t.t_max as f64)),
        ("a", col(&t.a)),
        ("s", col(&t.s)),
        ("w", col(&t.w)),
        ("l", col(&t.l)),
        ("cwnd", col(&t.cwnd)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u8, score: f64) -> CorpusEntry {
        let mut genome = ScheduleGenome::ideal(4);
        genome.lambdas[0] = tag;
        CorpusEntry { genome, trace: None, score }
    }

    #[test]
    fn dedup_and_capacity_eviction() {
        let mut c = Corpus { entries: Vec::new(), cap: 2 };
        assert!(c.add(entry(0, 1.0)));
        assert!(!c.add(entry(0, 5.0)), "duplicate genome rejected");
        assert!(c.add(entry(1, 2.0)));
        assert!(!c.add(entry(2, 0.5)), "at capacity, lower score bounces");
        assert!(c.add(entry(3, 3.0)), "at capacity, higher score evicts the worst");
        assert_eq!(c.len(), 2);
        assert!(c.entries().iter().all(|e| e.score >= 2.0));
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let mut c = Corpus::new();
        c.add(entry(7, 1.5));
        let text = c.to_json().render();
        let back = Json::parse(&text).expect("valid JSON");
        let first = &back.as_arr().unwrap()[0];
        let lambdas = first.get("genome").unwrap().get("lambdas").unwrap();
        assert_eq!(lambdas.as_arr().unwrap().len(), 4);
        assert_eq!(lambdas.as_arr().unwrap()[0].as_f64(), Some(7.0));
    }
}
