//! Schedule shrinking: reduce a failing genome to (nearly) the minimal
//! adversarial content that still triggers the failure.
//!
//! Model-gap reports are only actionable if a human can read the schedule,
//! so before a gap is dumped the genome is greedily normalized toward the
//! benign baseline (ideal band position λ = 1, eager waste ω = 1, empty
//! initial queue) — delta-debugging style, coarse spans first, single
//! genes last, re-checking the failure predicate after every candidate
//! edit. The predicate is the caller's full pipeline (exact lift →
//! feasibility gate → replay verdict), so a shrink can never "simplify"
//! its way to a different bug.

use crate::genome::{ScheduleGenome, GENE_STEPS};

/// Greedily minimize `genome` under `still_fails` (which must return
/// `true` for the input). Every accepted edit moves genes to the benign
/// baseline; the result still satisfies `still_fails`.
pub fn shrink(
    genome: &ScheduleGenome,
    still_fails: &mut dyn FnMut(&ScheduleGenome) -> bool,
) -> ScheduleGenome {
    debug_assert!(still_fails(genome), "shrinking a non-failure");
    let mut best = genome.clone();

    // Backlog first: a zero initial queue is the biggest readability win.
    if best.backlog_q != 0 {
        let mut cand = best.clone();
        cand.backlog_q = 0;
        if still_fails(&cand) {
            best = cand;
        }
    }

    // Coarse-to-fine span resets, per gene track.
    let n = best.lambdas.len();
    let mut width = n;
    while width >= 1 {
        for track in 0..2 {
            let mut start = 0;
            while start < n {
                let end = (start + width).min(n);
                let mut cand = best.clone();
                let genes = if track == 0 {
                    &mut cand.lambdas[start..end]
                } else {
                    &mut cand.omegas[start..end]
                };
                if genes.iter().all(|&g| g == GENE_STEPS) {
                    start = end;
                    continue;
                }
                genes.fill(GENE_STEPS);
                if still_fails(&cand) {
                    best = cand;
                }
                start = end;
            }
        }
        if width == 1 {
            break;
        }
        width /= 2;
    }

    // Last pass: nudge surviving non-baseline genes as close to baseline
    // as the failure allows (halving the deviation), which often turns a
    // noisy λ-value into a clean 0 or ½.
    for track in 0..2 {
        for i in 0..n {
            loop {
                let g = if track == 0 { best.lambdas[i] } else { best.omegas[i] };
                if g == GENE_STEPS {
                    break;
                }
                let nudged = g + (GENE_STEPS - g) / 2;
                if nudged == g {
                    break;
                }
                let mut cand = best.clone();
                if track == 0 {
                    cand.lambdas[i] = nudged;
                } else {
                    cand.omegas[i] = nudged;
                }
                if still_fails(&cand) {
                    best = cand;
                } else {
                    break;
                }
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic failure predicate: "fails iff λ[3] ≤ 4 and backlog ≥ 8"
    /// — the shrinker must strip everything else.
    #[test]
    fn shrinks_to_the_load_bearing_genes() {
        let mut rng = ccmatic_num::SmallRng::seed_from_u64(5);
        let mut noisy = ScheduleGenome::random(&mut rng, 12);
        noisy.lambdas[3] = 2;
        noisy.backlog_q = 20;
        let mut fails = |g: &ScheduleGenome| g.lambdas[3] <= 4 && g.backlog_q >= 8;
        assert!(fails(&noisy));
        let small = shrink(&noisy, &mut fails);
        assert!(fails(&small), "shrinking must preserve the failure");
        for (i, &l) in small.lambdas.iter().enumerate() {
            if i != 3 {
                assert_eq!(l, GENE_STEPS, "non-load-bearing λ[{i}] not reset");
            }
        }
        assert!(small.omegas.iter().all(|&o| o == GENE_STEPS), "ω track not reset");
        assert!(small.lambdas[3] <= 4, "λ[3] is load-bearing and kept in the failing range");
        assert_eq!(small.backlog_q, 20, "backlog is load-bearing and kept");
    }

    /// An always-failing predicate shrinks all the way to the baseline.
    #[test]
    fn unconditional_failure_shrinks_to_baseline() {
        let mut rng = ccmatic_num::SmallRng::seed_from_u64(9);
        let noisy = ScheduleGenome::random(&mut rng, 8);
        let small = shrink(&noisy, &mut |_| true);
        assert_eq!(small, {
            let mut g = ScheduleGenome::ideal(8);
            g.backlog_q = 0;
            g
        });
    }
}
