//! Tseitin conversion from term DAGs to CNF.
//!
//! Each term node gets (at most) one SAT literal, memoized across `assert`
//! calls so shared sub-structure is encoded once. Both implication
//! directions are emitted for every definition (the plain equisatisfiable
//! encoding); with hash-consed DAGs the clause count stays linear in the
//! DAG size.

use crate::atom::AtomId;
use crate::sat::{Lit, SatSolver, Var};
use crate::term::{BoolVar, Context, Term, TermData};
use std::collections::HashMap;

/// One memoization-table insertion, recorded so a scope pop can undo it.
enum UndoOp {
    TermLit(Term),
    BoolVar(BoolVar),
    Atom(AtomId),
    ConstTrue,
}

/// Incremental CNF builder bridging [`Context`] terms and the SAT core.
#[derive(Default)]
pub struct CnfBuilder {
    term_lits: HashMap<Term, Lit>,
    bool_vars: HashMap<BoolVar, Var>,
    atom_vars: HashMap<AtomId, Var>,
    /// Registration order of atoms: `(sat var, atom id)`.
    atom_bindings: Vec<(Var, AtomId)>,
    const_true: Option<Lit>,
    /// Insertions made inside open scopes, so `pop` can unmemoize encodings
    /// whose SAT variables the solver is about to discard.
    undo: Vec<UndoOp>,
    /// Undo-trail length at each open `push`.
    frames: Vec<usize>,
}

impl CnfBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        CnfBuilder::default()
    }

    /// Open a scope: memoization entries created from here on are removed
    /// by the matching [`CnfBuilder::pop`].
    pub fn push(&mut self) {
        self.frames.push(self.undo.len());
    }

    /// Close the innermost scope, forgetting every term/bool/atom encoding
    /// created inside it (their SAT variables are dropped by the paired
    /// [`SatSolver::pop`], so the memo entries would dangle).
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        while self.undo.len() > mark {
            match self.undo.pop().unwrap() {
                UndoOp::TermLit(t) => {
                    self.term_lits.remove(&t);
                }
                UndoOp::BoolVar(b) => {
                    self.bool_vars.remove(&b);
                }
                UndoOp::Atom(a) => {
                    self.atom_vars.remove(&a);
                    self.atom_bindings.pop();
                }
                UndoOp::ConstTrue => {
                    self.const_true = None;
                }
            }
        }
    }

    fn record(&mut self, op: UndoOp) {
        // Base-scope insertions are permanent; no need to log them.
        if !self.frames.is_empty() {
            self.undo.push(op);
        }
    }

    /// Atoms registered so far, in first-seen order.
    pub fn atom_bindings(&self) -> &[(Var, AtomId)] {
        &self.atom_bindings
    }

    /// The SAT variable standing for a Boolean term variable, if it was
    /// ever encoded.
    pub fn bool_var_binding(&self, b: BoolVar) -> Option<Var> {
        self.bool_vars.get(&b).copied()
    }

    /// All `(term bool var, sat var)` bindings created so far.
    pub fn bool_bindings(&self) -> impl Iterator<Item = (BoolVar, Var)> + '_ {
        self.bool_vars.iter().map(|(&b, &v)| (b, v))
    }

    /// Assert `t` as a top-level fact.
    pub fn assert_term(&mut self, ctx: &Context, sat: &mut SatSolver, t: Term) {
        let l = self.lit_for(ctx, sat, t);
        sat.add_clause(vec![l]);
    }

    fn true_lit(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::pos(v);
        sat.add_clause(vec![l]);
        self.const_true = Some(l);
        self.record(UndoOp::ConstTrue);
        l
    }

    /// The literal representing term `t`, emitting definition clauses on
    /// first encounter.
    pub fn lit_for(&mut self, ctx: &Context, sat: &mut SatSolver, t: Term) -> Lit {
        if let Some(&l) = self.term_lits.get(&t) {
            return l;
        }
        let lit = match ctx.data(t).clone() {
            TermData::True => self.true_lit(sat),
            TermData::False => self.true_lit(sat).negated(),
            TermData::BoolVar(b) => {
                let v = match self.bool_vars.get(&b) {
                    Some(&v) => v,
                    None => {
                        let v = sat.new_var();
                        self.bool_vars.insert(b, v);
                        self.record(UndoOp::BoolVar(b));
                        v
                    }
                };
                Lit::pos(v)
            }
            TermData::Atom(a) => {
                let v = match self.atom_vars.get(&a) {
                    Some(&v) => v,
                    None => {
                        let v = sat.new_var();
                        self.atom_vars.insert(a, v);
                        self.atom_bindings.push((v, a));
                        self.record(UndoOp::Atom(a));
                        v
                    }
                };
                Lit::pos(v)
            }
            TermData::Not(x) => self.lit_for(ctx, sat, x).negated(),
            TermData::And(xs) => {
                let arg_lits: Vec<Lit> = xs.iter().map(|&x| self.lit_for(ctx, sat, x)).collect();
                let v = sat.new_var();
                let vl = Lit::pos(v);
                // v → xi for each i.
                for &al in &arg_lits {
                    sat.add_clause(vec![vl.negated(), al]);
                }
                // (x1 ∧ … ∧ xn) → v.
                let mut big: Vec<Lit> = arg_lits.iter().map(|l| l.negated()).collect();
                big.push(vl);
                sat.add_clause(big);
                vl
            }
            TermData::Or(xs) => {
                let arg_lits: Vec<Lit> = xs.iter().map(|&x| self.lit_for(ctx, sat, x)).collect();
                let v = sat.new_var();
                let vl = Lit::pos(v);
                // xi → v for each i.
                for &al in &arg_lits {
                    sat.add_clause(vec![al.negated(), vl]);
                }
                // v → (x1 ∨ … ∨ xn).
                let mut big: Vec<Lit> = arg_lits.clone();
                big.insert(0, vl.negated());
                sat.add_clause(big);
                vl
            }
        };
        self.term_lits.insert(t, lit);
        self.record(UndoOp::TermLit(t));
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{NoTheory, SolveResult};
    use ccmatic_num::int;

    #[test]
    fn assert_bool_structure() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let na = ctx.not(a);
        let or_ab = ctx.or(vec![a, b]);
        let f = ctx.and(vec![or_ab, na]);
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, f);
        assert_eq!(sat.solve(&mut NoTheory), Some(SolveResult::Sat));
        // a false, b true forced.
        let (TermData::BoolVar(av), TermData::BoolVar(bv)) =
            (ctx.data(a).clone(), ctx.data(b).clone())
        else {
            panic!()
        };
        assert!(!sat.value(cnf.bool_var_binding(av).unwrap()));
        assert!(sat.value(cnf.bool_var_binding(bv).unwrap()));
    }

    #[test]
    fn contradiction_is_unsat() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let na = ctx.not(a);
        let f = ctx.and(vec![a, na]);
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, f);
        assert_eq!(sat.solve(&mut NoTheory), Some(SolveResult::Unsat));
    }

    #[test]
    fn atoms_registered_once() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let t1 = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let t2 = ctx.ge(ctx.var(x), ctx.constant(int(3))); // shares atom via negation? no: ge → ¬(x<3), distinct atom
        let t3 = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let f = ctx.and(vec![t1, t2, t3]);
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, f);
        // t1 == t3 dedup at term level; t2 introduces the strict atom.
        assert_eq!(cnf.atom_bindings().len(), 2);
    }

    #[test]
    fn shared_subterms_encoded_once() {
        let mut ctx = Context::new();
        let a = ctx.bool_var("a");
        let b = ctx.bool_var("b");
        let sub = ctx.or(vec![a, b]);
        let f1 = ctx.and(vec![sub, a]);
        let f2 = ctx.and(vec![sub, b]);
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, f1);
        let vars_after_first = sat.num_vars();
        cnf.assert_term(&ctx, &mut sat, f2);
        // Second assert reuses `sub`'s encoding: only the new And node.
        assert_eq!(sat.num_vars(), vars_after_first + 1);
        assert_eq!(sat.solve(&mut NoTheory), Some(SolveResult::Sat));
    }

    #[test]
    fn pop_unmemoizes_scope_encodings() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let scoped = ctx.ge(ctx.var(x), ctx.constant(int(5)));
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, base);
        assert_eq!(cnf.atom_bindings().len(), 1);
        sat.push();
        cnf.push();
        cnf.assert_term(&ctx, &mut sat, scoped);
        assert_eq!(cnf.atom_bindings().len(), 2);
        cnf.pop();
        sat.pop();
        assert_eq!(cnf.atom_bindings().len(), 1);
        // Re-asserting after the pop re-encodes with fresh SAT variables.
        sat.push();
        cnf.push();
        cnf.assert_term(&ctx, &mut sat, scoped);
        assert_eq!(cnf.atom_bindings().len(), 2);
        assert!(cnf.atom_bindings()[1].0 .0 < sat.num_vars());
        cnf.pop();
        sat.pop();
    }

    #[test]
    fn true_false_constants() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let mut sat = SatSolver::new();
        let mut cnf = CnfBuilder::new();
        cnf.assert_term(&ctx, &mut sat, t);
        assert_eq!(sat.solve(&mut NoTheory), Some(SolveResult::Sat));
        let f = ctx.fls();
        cnf.assert_term(&ctx, &mut sat, f);
        assert_eq!(sat.solve(&mut NoTheory), Some(SolveResult::Unsat));
    }
}
