//! Cooperative interruption of long-running solver calls.
//!
//! A single WCE binary-search probe can run for minutes on the Large
//! domains, so a wall-clock budget enforced only *between* solver calls is
//! no budget at all. [`Interrupt`] carries a deadline and/or a shared
//! cancellation flag down into the CDCL search loop, which polls it once
//! per propagation fixpoint and gives up with an *Unknown* verdict (never a
//! fake Sat/Unsat) when it fires. The cancellation flag is how the parallel
//! CEGIS engine kills speculative verifier work the moment a sibling's
//! result makes it moot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A deadline and/or cancellation flag polled inside search loops.
#[derive(Clone, Debug, Default)]
pub struct Interrupt {
    /// Give up once this instant passes.
    pub deadline: Option<Instant>,
    /// Give up once this flag is raised (shared across threads).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Interrupt {
    /// An interrupt that never fires (the default).
    pub fn none() -> Self {
        Interrupt::default()
    }

    /// An interrupt firing at `deadline` (no cancellation flag).
    pub fn at(deadline: Instant) -> Self {
        Interrupt { deadline: Some(deadline), cancel: None }
    }

    /// Whether polling can ever observe a trigger. Checked once up front so
    /// the common uninterruptible case pays nothing per loop iteration.
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Whether the interrupt has fired. The flag is checked before the
    /// clock: a cancelled worker should stop even if its deadline is far
    /// away.
    pub fn triggered(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unarmed_never_triggers() {
        let i = Interrupt::none();
        assert!(!i.is_armed());
        assert!(!i.triggered());
    }

    #[test]
    fn past_deadline_triggers() {
        let i = Interrupt::at(Instant::now() - Duration::from_millis(1));
        assert!(i.is_armed());
        assert!(i.triggered());
    }

    #[test]
    fn future_deadline_does_not_trigger() {
        let i = Interrupt::at(Instant::now() + Duration::from_secs(3600));
        assert!(!i.triggered());
    }

    #[test]
    fn cancel_flag_triggers_immediately() {
        let flag = Arc::new(AtomicBool::new(false));
        let i = Interrupt {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            cancel: Some(flag.clone()),
        };
        assert!(!i.triggered());
        flag.store(true, Ordering::Relaxed);
        assert!(i.triggered());
    }
}
