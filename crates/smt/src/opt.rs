//! Optimization over solver calls: maximize a linear objective.
//!
//! The paper's worst-case-counterexample generation asks the verifier for a
//! trace *maximizing* `minₜ(uₜ − lₜ)` and does so "using binary search ...
//! calling the verifier multiple times in a single CEGIS iteration" (§3.1.2).
//! This module implements exactly that loop: probe `φ ∧ obj ≥ mid`,
//! tighten the bracket, keep the best model.

use crate::interrupt::Interrupt;
use crate::linexpr::LinExpr;
use crate::solver::{Model, SatResult, Solver};
use crate::term::{Context, Term};
use ccmatic_num::Rat;
use ccmatic_proof::UnsatCertificate;

/// Parameters for [`maximize`].
#[derive(Clone, Debug)]
pub struct MaximizeParams {
    /// Lower end of the search bracket; the objective is first tested for
    /// feasibility at this value.
    pub lo: Rat,
    /// Upper end of the bracket (an a-priori bound on the objective; the
    /// CCAC encodings always have one, e.g. a trace range can never exceed
    /// the total data the link can carry).
    pub hi: Rat,
    /// Stop when the bracket is narrower than this.
    pub precision: Rat,
    /// Optional per-probe conflict budget.
    pub conflict_budget: Option<u64>,
    /// Optional deadline/cancellation polled inside every probe. When it
    /// fires before the first probe decides, the search reports
    /// [`MaximizeOutcome::Aborted`]; when it fires later, the best model
    /// found so far is returned (sound, possibly sub-maximal).
    pub interrupt: Interrupt,
    /// Collect an UNSAT certificate from every infeasible probe. In
    /// [`maximize`] this also enables proof logging on the per-probe
    /// solvers; in [`maximize_scoped`] the caller must have called
    /// [`Solver::enable_proofs`] before asserting the base (snapshots are
    /// taken here, logging happens there).
    pub certify: bool,
    /// Trail-synchronized incremental theory solving on the per-probe
    /// solvers built by [`maximize`] (the escape-hatch A/B switch;
    /// [`maximize_scoped`] inherits whatever the caller's solver uses).
    pub theory_sync: bool,
}

impl Default for MaximizeParams {
    fn default() -> Self {
        MaximizeParams {
            lo: Rat::zero(),
            hi: Rat::from(1_000_000i64),
            precision: Rat::new(1i64.into(), 64i64.into()),
            conflict_budget: None,
            interrupt: Interrupt::none(),
            certify: false,
            theory_sync: true,
        }
    }
}

/// Result of [`maximize`].
///
/// Discarding the outcome silently conflates `Infeasible` with `Aborted`
/// (and loses the witness), so it is `#[must_use]`:
///
/// ```compile_fail
/// #![deny(unused_must_use)]
/// use ccmatic_smt::{maximize, Context, LinExpr, MaximizeParams};
/// use ccmatic_num::int;
/// let mut ctx = Context::new();
/// let x = ctx.real_var("x");
/// let base = ctx.le(ctx.var(x), ctx.constant(int(1)));
/// // error: unused `MaximizeOutcome` that must be used
/// maximize(&mut ctx, base, &LinExpr::var(x), &MaximizeParams::default());
/// ```
#[derive(Debug)]
#[must_use = "an Infeasible/Aborted outcome must not be conflated with Feasible"]
pub enum MaximizeOutcome {
    /// `φ ∧ obj ≥ lo` is unsatisfiable.
    Infeasible {
        /// Replayable refutation of `φ ∧ obj ≥ lo`, when
        /// [`MaximizeParams::certify`] is on and proof logging is active.
        certificate: Option<Box<UnsatCertificate>>,
    },
    /// Best feasible objective value found (within `precision` of the
    /// supremum, unless the interrupt fired mid-search) and a witnessing
    /// model.
    Feasible {
        /// The objective value achieved by `model`.
        value: Rat,
        /// A model achieving `value`.
        model: Model,
        /// Number of solver probes used.
        probes: u32,
        /// Refutations of `φ ∧ obj ≥ mid` for every probe that tightened
        /// the upper bracket, when [`MaximizeParams::certify`] is on: they
        /// justify that the search stopped near the true supremum.
        certificates: Vec<UnsatCertificate>,
    },
    /// The interrupt (or conflict budget) fired before the first probe
    /// decided feasibility: no claim is made either way. Reporting this
    /// separately from `Infeasible` is what keeps deadline-limited runs
    /// sound — an aborted probe must never masquerade as a certificate.
    Aborted,
}

/// Maximize `objective` subject to `base`, by binary search on solver calls.
///
/// Soundness: the returned model always satisfies `base`; the returned value
/// is exactly `objective` evaluated in that model. Completeness: the true
/// supremum is less than `value + precision` (or above `hi`, which the
/// caller promises not to be possible).
pub fn maximize(
    ctx: &mut Context,
    base: Term,
    objective: &LinExpr,
    params: &MaximizeParams,
) -> MaximizeOutcome {
    let mut probes = 0u32;
    let mut probe = |ctx: &mut Context, threshold: &Rat| -> Probe {
        probes += 1;
        let mut solver = Solver::new();
        solver.set_theory_sync(params.theory_sync);
        if params.certify {
            solver.enable_proofs();
        }
        solver.conflict_budget = params.conflict_budget;
        solver.interrupt = params.interrupt.clone();
        solver.assert(ctx, base);
        let obj_ge = ctx.ge(objective.clone(), LinExpr::constant(threshold.clone()));
        solver.assert(ctx, obj_ge);
        if params.certify {
            let out = solver.check_certified(ctx);
            match out.result {
                SatResult::Sat => {
                    assert_eq!(out.model_ok, Some(true), "probe model failed the exact audit");
                    Probe::Sat(solver.model().cloned().expect("sat has a model"))
                }
                SatResult::Unsat => Probe::Unsat(out.certificate.map(Box::new)),
                SatResult::Unknown => Probe::Unknown,
            }
        } else {
            match solver.check(ctx) {
                SatResult::Sat => Probe::Sat(solver.model().cloned().expect("sat has a model")),
                SatResult::Unsat => Probe::Unsat(None),
                SatResult::Unknown => Probe::Unknown,
            }
        }
    };

    let first = match probe(ctx, &params.lo) {
        Probe::Sat(m) => m,
        Probe::Unsat(certificate) => return MaximizeOutcome::Infeasible { certificate },
        Probe::Unknown => return MaximizeOutcome::Aborted,
    };
    let mut best_value = first.eval(objective);
    let mut best_model = first;
    let mut certificates = Vec::new();
    let mut hi = params.hi.clone();
    while &hi - &best_value > params.precision {
        let mid = Rat::midpoint(&best_value, &hi);
        match probe(ctx, &mid) {
            Probe::Sat(m) => {
                best_value = m.eval(objective);
                best_model = m;
            }
            Probe::Unsat(cert) => {
                hi = mid;
                certificates.extend(cert.map(|c| *c));
            }
            // Past the first probe a feasible witness is in hand; returning
            // it early is sound (the trace is a real counterexample), it is
            // merely not guaranteed worst-case.
            Probe::Unknown => break,
        }
    }
    MaximizeOutcome::Feasible { value: best_value, model: best_model, probes, certificates }
}

/// Per-probe verdict shared by the two search loops.
enum Probe {
    Sat(Model),
    Unsat(Option<Box<UnsatCertificate>>),
    Unknown,
}

/// Like [`maximize`], but over a solver whose base constraints are already
/// asserted: each binary-search probe opens a scope and asserts `obj ≥ mid`,
/// so the network model is encoded once and lemmas learned in one probe
/// speed up the next. Satisfiable probes *keep* their scope — the bound they
/// assert is implied by every later threshold (the search only moves up),
/// so leaving it in place is sound and preserves everything learned while
/// finding the model; only unsatisfiable probes retract. The solver is
/// returned at its original scope depth.
pub fn maximize_scoped(
    ctx: &mut Context,
    solver: &mut Solver,
    objective: &LinExpr,
    params: &MaximizeParams,
) -> MaximizeOutcome {
    let mut probes = 0u32;
    let mut kept = 0u32;
    let saved_budget = solver.conflict_budget;
    let saved_interrupt = solver.interrupt.clone();
    let mut probe = |ctx: &mut Context, solver: &mut Solver, threshold: &Rat| -> Probe {
        probes += 1;
        solver.push();
        solver.conflict_budget = params.conflict_budget;
        solver.interrupt = params.interrupt.clone();
        let obj_ge = ctx.ge(objective.clone(), LinExpr::constant(threshold.clone()));
        solver.assert(ctx, obj_ge);
        if params.certify {
            // The snapshot must be taken before the pop: popping the probe
            // scope deletes its clauses (including the empty clause) from
            // the proof log.
            let out = solver.check_certified(ctx);
            match out.result {
                SatResult::Sat => {
                    assert_eq!(out.model_ok, Some(true), "probe model failed the exact audit");
                    kept += 1;
                    Probe::Sat(solver.model().cloned().expect("sat has a model"))
                }
                SatResult::Unsat => {
                    solver.pop();
                    Probe::Unsat(out.certificate.map(Box::new))
                }
                SatResult::Unknown => {
                    solver.pop();
                    Probe::Unknown
                }
            }
        } else {
            match solver.check(ctx) {
                SatResult::Sat => {
                    kept += 1;
                    Probe::Sat(solver.model().cloned().expect("sat has a model"))
                }
                SatResult::Unsat => {
                    solver.pop();
                    Probe::Unsat(None)
                }
                SatResult::Unknown => {
                    solver.pop();
                    Probe::Unknown
                }
            }
        }
    };

    let outcome = match probe(ctx, solver, &params.lo) {
        Probe::Unsat(certificate) => MaximizeOutcome::Infeasible { certificate },
        Probe::Unknown => MaximizeOutcome::Aborted,
        Probe::Sat(first) => {
            let mut best_value = first.eval(objective);
            let mut best_model = first;
            let mut certificates = Vec::new();
            let mut hi = params.hi.clone();
            while &hi - &best_value > params.precision {
                let mid = Rat::midpoint(&best_value, &hi);
                match probe(ctx, solver, &mid) {
                    Probe::Sat(m) => {
                        best_value = m.eval(objective);
                        best_model = m;
                    }
                    Probe::Unsat(cert) => {
                        hi = mid;
                        certificates.extend(cert.map(|c| *c));
                    }
                    // A witness is already in hand; stop refining (see
                    // `maximize`).
                    Probe::Unknown => break,
                }
            }
            MaximizeOutcome::Feasible { value: best_value, model: best_model, probes, certificates }
        }
    };
    for _ in 0..kept {
        solver.pop();
    }
    solver.conflict_budget = saved_budget;
    solver.interrupt = saved_interrupt;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    #[test]
    fn maximize_simple_lp() {
        // max x subject to x + y <= 10, y >= 4  →  x = 6.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let c1 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(10)));
        let c2 = ctx.ge(ctx.var(y), ctx.constant(int(4)));
        let base = ctx.and(vec![c1, c2]);
        let params = MaximizeParams {
            lo: int(-100),
            hi: int(100),
            precision: rat(1, 100),
            conflict_budget: None,
            interrupt: Interrupt::none(),
            certify: false,
            theory_sync: true,
        };
        match maximize(&mut ctx, base, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, model, .. } => {
                assert!(value > rat(599, 100), "value {value} too small");
                assert!(value <= int(6));
                assert!(&model.real(x) + &model.real(y) <= int(10));
            }
            MaximizeOutcome::Infeasible { .. } => panic!("feasible LP reported infeasible"),
            MaximizeOutcome::Aborted => unreachable!("no interrupt armed"),
        }
    }

    #[test]
    fn infeasible_base() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c1 = ctx.lt(ctx.var(x), ctx.constant(int(0)));
        let c2 = ctx.gt(ctx.var(x), ctx.constant(int(0)));
        let base = ctx.and(vec![c1, c2]);
        let params = MaximizeParams::default();
        assert!(matches!(
            maximize(&mut ctx, base, &LinExpr::var(x), &params),
            MaximizeOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn maximize_respects_disjunction() {
        // max x subject to (x <= 3 ∨ x <= 7) — sup is 7.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let a = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let b = ctx.le(ctx.var(x), ctx.constant(int(7)));
        let base = ctx.or(vec![a, b]);
        let params = MaximizeParams {
            lo: int(0),
            hi: int(100),
            precision: rat(1, 10),
            conflict_budget: None,
            interrupt: Interrupt::none(),
            certify: false,
            theory_sync: true,
        };
        match maximize(&mut ctx, base, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, .. } => {
                assert!(value > rat(69, 10) && value <= int(7), "got {value}");
            }
            MaximizeOutcome::Infeasible { .. } => panic!(),
            MaximizeOutcome::Aborted => unreachable!("no interrupt armed"),
        }
    }

    #[test]
    fn scoped_maximize_matches_fresh() {
        // Same LP as `maximize_simple_lp`, probed through push/pop scopes on
        // one long-lived solver; also checks the solver comes back usable.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let c1 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(10)));
        let c2 = ctx.ge(ctx.var(y), ctx.constant(int(4)));
        let base = ctx.and(vec![c1, c2]);
        let params = MaximizeParams {
            lo: int(-100),
            hi: int(100),
            precision: rat(1, 100),
            conflict_budget: None,
            interrupt: Interrupt::none(),
            certify: false,
            theory_sync: true,
        };
        let mut solver = Solver::new();
        solver.assert(&ctx, base);
        match maximize_scoped(&mut ctx, &mut solver, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, model, probes, .. } => {
                assert!(value > rat(599, 100) && value <= int(6), "value {value}");
                assert!(&model.real(x) + &model.real(y) <= int(10));
                assert!(probes > 1, "binary search should take multiple probes");
            }
            MaximizeOutcome::Infeasible { .. } => panic!("feasible LP reported infeasible"),
            MaximizeOutcome::Aborted => unreachable!("no interrupt armed"),
        }
        assert_eq!(solver.depth(), 0);
        assert_eq!(solver.check(&ctx), SatResult::Sat);

        // Infeasible base through the scoped path too.
        let kill = ctx.gt(ctx.var(x) + ctx.var(y), ctx.constant(int(50)));
        solver.assert(&ctx, kill);
        assert!(matches!(
            maximize_scoped(&mut ctx, &mut solver, &LinExpr::var(x), &params),
            MaximizeOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn expired_deadline_aborts_instead_of_claiming_infeasible() {
        // A deadline in the past must abort the first probe — reporting
        // Infeasible here would fake a certificate.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.le(ctx.var(x), ctx.constant(int(10)));
        let params = MaximizeParams {
            interrupt: Interrupt::at(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..MaximizeParams::default()
        };
        assert!(matches!(
            maximize(&mut ctx, base, &LinExpr::var(x), &params),
            MaximizeOutcome::Aborted
        ));
        let mut solver = Solver::new();
        solver.assert(&ctx, base);
        assert!(matches!(
            maximize_scoped(&mut ctx, &mut solver, &LinExpr::var(x), &params),
            MaximizeOutcome::Aborted
        ));
        // The solver must come back at its original depth and usable.
        assert_eq!(solver.depth(), 0);
        assert_eq!(solver.check(&ctx), SatResult::Sat);
    }

    #[test]
    fn exact_hit_when_supremum_below_lo_bracket() {
        // max x subject to x = 5 with lo = 5: feasible immediately.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.eq(ctx.var(x), ctx.constant(int(5)));
        let params = MaximizeParams {
            lo: int(5),
            hi: int(10),
            precision: rat(1, 10),
            conflict_budget: None,
            interrupt: Interrupt::none(),
            certify: false,
            theory_sync: true,
        };
        match maximize(&mut ctx, base, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, .. } => assert_eq!(value, int(5)),
            MaximizeOutcome::Infeasible { .. } => panic!(),
            MaximizeOutcome::Aborted => unreachable!("no interrupt armed"),
        }
    }

    #[cfg(feature = "proofs")]
    #[test]
    fn certified_search_carries_checkable_certificates() {
        // max x subject to x + y <= 10, y >= 4, with certification: every
        // bracket-tightening infeasible probe must carry a certificate the
        // independent checker accepts — through fresh solvers and scopes.
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let c1 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(10)));
        let c2 = ctx.ge(ctx.var(y), ctx.constant(int(4)));
        let base = ctx.and(vec![c1, c2]);
        let params = MaximizeParams {
            lo: int(-100),
            hi: int(100),
            precision: rat(1, 100),
            certify: true,
            ..MaximizeParams::default()
        };
        match maximize(&mut ctx, base, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, certificates, .. } => {
                assert!(value > rat(599, 100) && value <= int(6));
                assert!(!certificates.is_empty(), "search must tighten the bracket");
                for cert in &certificates {
                    ccmatic_proof::check(cert).expect("fresh-probe certificate replays");
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }

        let mut solver = Solver::new();
        solver.enable_proofs();
        solver.assert(&ctx, base);
        match maximize_scoped(&mut ctx, &mut solver, &LinExpr::var(x), &params) {
            MaximizeOutcome::Feasible { value, certificates, .. } => {
                assert!(value > rat(599, 100) && value <= int(6));
                assert!(!certificates.is_empty());
                for cert in &certificates {
                    ccmatic_proof::check(cert).expect("scoped-probe certificate replays");
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(solver.depth(), 0);

        // A bracket starting above the supremum is infeasible at the first
        // probe and must report a certificate on the spot.
        let params = MaximizeParams { lo: int(50), ..params };
        match maximize(&mut ctx, base, &LinExpr::var(x), &params) {
            MaximizeOutcome::Infeasible { certificate } => {
                let cert = certificate.expect("certified infeasibility carries a proof");
                ccmatic_proof::check(&cert).expect("infeasible-base certificate replays");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
