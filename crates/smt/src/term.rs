//! Hash-consed Boolean terms over linear-arithmetic atoms.
//!
//! A [`Context`] owns an arena of structurally-deduplicated terms, the
//! canonical-atom table, and the real/Boolean variable namespaces. Terms
//! are plain `u32` handles into their context; building the same term twice
//! yields the same handle, so formula DAGs stay compact even when encodings
//! share large sub-structures (which the CCAC encoding does heavily).

use crate::atom::{canonicalize, AtomData, AtomId, Canonical, Rel};
use crate::linexpr::LinExpr;
use ccmatic_num::Rat;
use std::collections::HashMap;
use std::fmt;

/// A real-valued variable handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RealVar(pub u32);

/// A Boolean variable handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BoolVar(pub u32);

/// A term handle; only meaningful together with the [`Context`] that
/// created it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Term(pub u32);

/// The structure of a term.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TermData {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Free Boolean variable.
    BoolVar(BoolVar),
    /// A canonical linear atom (see [`crate::atom`]).
    Atom(AtomId),
    /// Negation.
    Not(Term),
    /// N-ary conjunction (argument order preserved, duplicates removed).
    And(Box<[Term]>),
    /// N-ary disjunction.
    Or(Box<[Term]>),
}

/// Arena of hash-consed terms plus variable and atom tables.
#[derive(Default)]
pub struct Context {
    terms: Vec<TermData>,
    term_map: HashMap<TermData, Term>,
    atoms: Vec<AtomData>,
    atom_map: HashMap<AtomData, AtomId>,
    real_names: Vec<String>,
    bool_names: Vec<String>,
}

impl Context {
    /// Create an empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Allocate a fresh real variable. Names are for diagnostics only and
    /// need not be unique.
    pub fn real_var(&mut self, name: impl Into<String>) -> RealVar {
        let id = RealVar(self.real_names.len() as u32);
        self.real_names.push(name.into());
        id
    }

    /// Allocate a fresh Boolean variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> Term {
        let id = BoolVar(self.bool_names.len() as u32);
        self.bool_names.push(name.into());
        self.intern(TermData::BoolVar(id))
    }

    /// Number of real variables allocated so far.
    pub fn num_real_vars(&self) -> usize {
        self.real_names.len()
    }

    /// Diagnostic name of a real variable.
    pub fn real_var_name(&self, v: RealVar) -> &str {
        &self.real_names[v.0 as usize]
    }

    /// The term data behind a handle.
    pub fn data(&self, t: Term) -> &TermData {
        &self.terms[t.0 as usize]
    }

    /// The atom data behind an atom id.
    pub fn atom(&self, a: AtomId) -> &AtomData {
        &self.atoms[a.0 as usize]
    }

    /// Number of interned atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    fn intern(&mut self, data: TermData) -> Term {
        if let Some(&t) = self.term_map.get(&data) {
            return t;
        }
        let t = Term(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.term_map.insert(data, t);
        t
    }

    fn intern_atom(&mut self, data: AtomData) -> AtomId {
        if let Some(&a) = self.atom_map.get(&data) {
            return a;
        }
        let a = AtomId(self.atoms.len() as u32);
        self.atoms.push(data.clone());
        self.atom_map.insert(data, a);
        a
    }

    /// Constant true.
    pub fn tru(&mut self) -> Term {
        self.intern(TermData::True)
    }

    /// Constant false.
    pub fn fls(&mut self) -> Term {
        self.intern(TermData::False)
    }

    /// Logical negation, with double-negation and constant folding.
    pub fn not(&mut self, t: Term) -> Term {
        match self.data(t) {
            TermData::True => self.fls(),
            TermData::False => self.tru(),
            TermData::Not(inner) => *inner,
            _ => self.intern(TermData::Not(t)),
        }
    }

    /// N-ary conjunction with unit/absorbing folding.
    pub fn and(&mut self, ts: Vec<Term>) -> Term {
        let tru = self.tru();
        let fls = self.fls();
        let mut args = Vec::with_capacity(ts.len());
        for t in ts {
            if t == fls {
                return fls;
            }
            if t != tru && !args.contains(&t) {
                args.push(t);
            }
        }
        match args.len() {
            0 => tru,
            1 => args[0],
            _ => self.intern(TermData::And(args.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with unit/absorbing folding.
    pub fn or(&mut self, ts: Vec<Term>) -> Term {
        let tru = self.tru();
        let fls = self.fls();
        let mut args = Vec::with_capacity(ts.len());
        for t in ts {
            if t == tru {
                return tru;
            }
            if t != fls && !args.contains(&t) {
                args.push(t);
            }
        }
        match args.len() {
            0 => fls,
            1 => args[0],
            _ => self.intern(TermData::Or(args.into_boxed_slice())),
        }
    }

    /// Implication `a → b`, encoded as `¬a ∨ b`.
    pub fn implies(&mut self, a: Term, b: Term) -> Term {
        let na = self.not(a);
        self.or(vec![na, b])
    }

    /// Biconditional `a ↔ b`, encoded as `(a → b) ∧ (b → a)`.
    pub fn iff(&mut self, a: Term, b: Term) -> Term {
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(vec![ab, ba])
    }

    /// Boolean if-then-else `c ? t : e`.
    pub fn ite(&mut self, c: Term, t: Term, e: Term) -> Term {
        let ct = self.implies(c, t);
        let nce = {
            let nc = self.not(c);
            self.implies(nc, e)
        };
        self.and(vec![ct, nce])
    }

    fn ineq(&mut self, lhs: LinExpr, rhs: LinExpr, rel: Rel) -> Term {
        match canonicalize(&lhs, &rhs, rel) {
            Canonical::Const(true) => self.tru(),
            Canonical::Const(false) => self.fls(),
            Canonical::Atom { data, negated } => {
                let a = self.intern_atom(data);
                let t = self.intern(TermData::Atom(a));
                if negated {
                    self.not(t)
                } else {
                    t
                }
            }
        }
    }

    /// `lhs ≤ rhs`.
    pub fn le(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        self.ineq(lhs, rhs, Rel::Le)
    }

    /// `lhs < rhs`.
    pub fn lt(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        self.ineq(lhs, rhs, Rel::Lt)
    }

    /// `lhs ≥ rhs`.
    pub fn ge(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        self.ineq(lhs, rhs, Rel::Ge)
    }

    /// `lhs > rhs`.
    pub fn gt(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        self.ineq(lhs, rhs, Rel::Gt)
    }

    /// `lhs = rhs`, split into `lhs ≤ rhs ∧ lhs ≥ rhs` so every theory atom
    /// stays a single bound.
    pub fn eq(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        let le = self.le(lhs.clone(), rhs.clone());
        let ge = self.ge(lhs, rhs);
        self.and(vec![le, ge])
    }

    /// `lhs ≠ rhs`.
    pub fn ne(&mut self, lhs: LinExpr, rhs: LinExpr) -> Term {
        let e = self.eq(lhs, rhs);
        self.not(e)
    }

    /// Convenience: the expression for a single variable.
    pub fn var(&self, x: RealVar) -> LinExpr {
        LinExpr::var(x)
    }

    /// Convenience: a constant expression.
    pub fn constant(&self, k: Rat) -> LinExpr {
        LinExpr::constant(k)
    }

    /// Convenience: expression addition (also available as `LinExpr + LinExpr`).
    pub fn add(&self, a: LinExpr, b: LinExpr) -> LinExpr {
        a + b
    }

    /// Pretty-print a term for diagnostics.
    pub fn display(&self, t: Term) -> String {
        match self.data(t) {
            TermData::True => "true".into(),
            TermData::False => "false".into(),
            TermData::BoolVar(b) => self.bool_names[b.0 as usize].clone(),
            TermData::Atom(a) => format!("({})", self.atom(*a)),
            TermData::Not(x) => format!("¬{}", self.display(*x)),
            TermData::And(xs) => {
                let parts: Vec<_> = xs.iter().map(|x| self.display(*x)).collect();
                format!("({})", parts.join(" ∧ "))
            }
            TermData::Or(xs) => {
                let parts: Vec<_> = xs.iter().map(|x| self.display(*x)).collect();
                format!("({})", parts.join(" ∨ "))
            }
        }
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Context {{ terms: {}, atoms: {}, reals: {}, bools: {} }}",
            self.terms.len(),
            self.atoms.len(),
            self.real_names.len(),
            self.bool_names.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::int;

    #[test]
    fn hash_consing_dedups() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let a1 = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let a2 = ctx.le(ctx.var(x), ctx.constant(int(3)));
        assert_eq!(a1, a2);
        let n1 = ctx.not(a1);
        let n2 = ctx.not(a2);
        assert_eq!(n1, n2);
        assert_eq!(ctx.not(n1), a1, "double negation collapses");
    }

    #[test]
    fn and_or_folding() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let f = ctx.fls();
        let b = ctx.bool_var("b");
        assert_eq!(ctx.and(vec![t, b]), b);
        assert_eq!(ctx.and(vec![f, b]), f);
        assert_eq!(ctx.or(vec![f, b]), b);
        assert_eq!(ctx.or(vec![t, b]), t);
        assert_eq!(ctx.and(vec![]), t);
        assert_eq!(ctx.or(vec![]), f);
        assert_eq!(ctx.and(vec![b, b]), b);
    }

    #[test]
    fn equality_splits() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let e = ctx.eq(ctx.var(x), ctx.constant(int(2)));
        match ctx.data(e) {
            TermData::And(args) => assert_eq!(args.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn trivial_atoms_fold() {
        let mut ctx = Context::new();
        let t = ctx.le(ctx.constant(int(1)), ctx.constant(int(2)));
        assert_eq!(t, ctx.tru());
        let f = ctx.gt(ctx.constant(int(1)), ctx.constant(int(2)));
        assert_eq!(f, ctx.fls());
        assert_eq!(ctx.num_atoms(), 0);
    }

    #[test]
    fn ge_shares_atom_with_lt() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let lt = ctx.lt(ctx.var(x), ctx.constant(int(5)));
        let ge = ctx.ge(ctx.var(x), ctx.constant(int(5)));
        assert_eq!(ctx.not(lt), ge);
        assert_eq!(ctx.num_atoms(), 1);
    }

    #[test]
    fn display_smoke() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let a = ctx.le(ctx.var(x), ctx.constant(int(3)));
        let b = ctx.bool_var("flag");
        let f = ctx.and(vec![a, b]);
        let s = ctx.display(f);
        assert!(s.contains("≤"));
        assert!(s.contains("flag"));
    }
}
