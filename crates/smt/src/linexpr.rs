//! Linear expressions over real variables with exact rational coefficients.

use crate::term::RealVar;
use ccmatic_num::Rat;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A linear expression `Σᵢ cᵢ·xᵢ + k` with rational coefficients.
///
/// Zero-coefficient entries are never stored, so structural equality is
/// semantic equality.
///
/// ```
/// use ccmatic_smt::{LinExpr, term::RealVar};
/// use ccmatic_num::{int, rat};
/// let x = RealVar(0);
/// let y = RealVar(1);
/// let e = LinExpr::var(x) * rat(1, 2) + LinExpr::var(y) - LinExpr::constant(int(3));
/// assert_eq!(e.coeff(x), rat(1, 2));
/// assert_eq!(e.constant_part().clone(), int(-3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<RealVar, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// The constant expression `k`.
    pub fn constant(k: Rat) -> Self {
        LinExpr { coeffs: BTreeMap::new(), constant: k }
    }

    /// The expression `x` (coefficient 1).
    pub fn var(x: RealVar) -> Self {
        LinExpr::term(x, Rat::one())
    }

    /// The expression `c·x`.
    pub fn term(x: RealVar, c: Rat) -> Self {
        let mut coeffs = BTreeMap::new();
        if !c.is_zero() {
            coeffs.insert(x, c);
        }
        LinExpr { coeffs, constant: Rat::zero() }
    }

    /// Coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: RealVar) -> Rat {
        self.coeffs.get(&x).cloned().unwrap_or_else(Rat::zero)
    }

    /// The constant term.
    pub fn constant_part(&self) -> &Rat {
        &self.constant
    }

    /// True iff the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Iterate over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (RealVar, &Rat)> + '_ {
        self.coeffs.iter().map(|(v, c)| (*v, c))
    }

    /// Number of variables with nonzero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// Add `c·x` in place.
    pub fn add_term(&mut self, x: RealVar, c: &Rat) {
        if c.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(x).or_insert_with(Rat::zero);
        *entry += c;
        if entry.is_zero() {
            self.coeffs.remove(&x);
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, k: &Rat) {
        self.constant += k;
    }

    /// The variable part of the expression (constant dropped).
    pub fn var_part(&self) -> LinExpr {
        LinExpr { coeffs: self.coeffs.clone(), constant: Rat::zero() }
    }

    /// Scale every coefficient and the constant by `k`.
    pub fn scaled(&self, k: &Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: &self.constant * k,
        }
    }

    /// The lowest-numbered variable in the expression, if any.
    pub fn leading_var(&self) -> Option<RealVar> {
        self.coeffs.keys().next().copied()
    }

    /// Evaluate under an assignment. Variables missing from the assignment
    /// evaluate to zero.
    pub fn eval<F: Fn(RealVar) -> Rat>(&self, lookup: F) -> Rat {
        let mut acc = self.constant.clone();
        for (v, c) in self.iter() {
            acc += &(c * &lookup(v));
        }
        acc
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, other: LinExpr) -> LinExpr {
        for (v, c) in other.coeffs {
            self.add_term(v, &c);
        }
        self.constant += &other.constant;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, other: LinExpr) -> LinExpr {
        self + (-other)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.into_iter().map(|(v, c)| (v, -c)).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<Rat> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: Rat) -> LinExpr {
        self.scaled(&k)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                if c == &Rat::one() {
                    write!(f, "x{}", v.0)?;
                } else {
                    write!(f, "{}·x{}", c, v.0)?;
                }
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·x{}", c.abs(), v.0)?;
            } else {
                write!(f, " + {}·x{}", c, v.0)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    fn x() -> RealVar {
        RealVar(0)
    }
    fn y() -> RealVar {
        RealVar(1)
    }

    #[test]
    fn construction_and_coeffs() {
        let e = LinExpr::var(x()) + LinExpr::term(y(), rat(2, 3)) + LinExpr::constant(int(5));
        assert_eq!(e.coeff(x()), int(1));
        assert_eq!(e.coeff(y()), rat(2, 3));
        assert_eq!(e.constant_part().clone(), int(5));
        assert_eq!(e.num_vars(), 2);
    }

    #[test]
    fn cancellation_removes_entries() {
        let e = LinExpr::var(x()) - LinExpr::var(x());
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn scaling() {
        let e = (LinExpr::var(x()) + LinExpr::constant(int(2))) * int(3);
        assert_eq!(e.coeff(x()), int(3));
        assert_eq!(e.constant_part().clone(), int(6));
        assert_eq!(e.scaled(&Rat::zero()), LinExpr::zero());
    }

    #[test]
    fn eval() {
        let e = LinExpr::var(x()) * int(2) + LinExpr::var(y()) + LinExpr::constant(int(1));
        let val = e.eval(|v| if v == x() { int(3) } else { int(10) });
        assert_eq!(val, int(17));
    }

    #[test]
    fn display() {
        let e = LinExpr::var(x()) - LinExpr::term(y(), int(2)) + LinExpr::constant(int(-1));
        assert_eq!(e.to_string(), "x0 - 2·x1 - 1");
        assert_eq!(LinExpr::zero().to_string(), "0");
        assert_eq!(LinExpr::constant(rat(1, 2)).to_string(), "1/2");
    }

    #[test]
    fn leading_var_is_lowest() {
        let e = LinExpr::var(y()) + LinExpr::var(x());
        assert_eq!(e.leading_var(), Some(x()));
        assert_eq!(LinExpr::zero().leading_var(), None);
    }
}
