//! A CDCL SAT solver.
//!
//! Classic MiniSat-style architecture: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS branching through
//! an indexed max-heap, phase saving, and Luby-sequence restarts. Clauses
//! may be added between `solve` calls (the solver is incremental in the
//! add-only sense, which is exactly what CEGIS needs: the generator only
//! ever accumulates constraints).
//!
//! The solver also accepts a *theory hook*: when a full assignment is
//! reached, the hook may veto it with a conflict clause (lazy SMT). See
//! [`TheoryHook`].
//!
//! # Assertion scopes
//!
//! [`SatSolver::push`] opens a scope; [`SatSolver::pop`] discards every
//! variable and input clause added since the matching push. Learned clauses
//! are *retained* across a pop when they are derivable from the surviving
//! prefix alone. Retention is decided by **epochs**: every clause carries
//! the scope depth its derivation depends on (input clauses: the depth they
//! were added at; learned clauses: the max epoch over all resolved premises
//! and consumed level-0 facts; theory lemmas: the max creation depth of
//! their variables, since the theory's bound assertions are re-derived from
//! scratch on every check). A clause with epoch ≤ d is a logical consequence
//! of the assertions present at depth d, so keeping it after popping to
//! depth d cannot flip a Sat answer to Unsat — and dropping the rest keeps
//! the solver sound. Level-0 facts (the unit store) carry the same epochs
//! and are filtered identically; after a pop the watch lists are rebuilt
//! and propagation restarts from the trail head, so every surviving unit is
//! re-examined.

mod heap;

pub use heap::ActivityHeap;

use crate::share::SharedClause;
use ccmatic_num::SmallRng;
use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: a variable with a polarity.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Literal of `v` with the given truth value (`true` → positive).
    pub fn with_sign(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True iff this is a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite-polarity literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "¬" } else { "" }, self.var().0)
    }
}

/// Truth value of a variable in the partial assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

/// A theory conflict clause, optionally carrying a Farkas witness for proof
/// logging: each `(lit, λ)` pairs a clause literal with a positive
/// coefficient such that the λ-weighted sum of the constraints asserted by
/// the literals' *negations* cancels every variable and leaves a negative
/// constant. An empty witness is legal (the lemma is then logged without one
/// and any certificate containing it will be rejected by the checker).
#[derive(Clone, Debug)]
pub struct TheoryLemma {
    /// The conflict clause: false under the assignment that was rejected.
    pub lits: Vec<Lit>,
    /// Farkas coefficients over a subset of `lits`.
    pub farkas: Vec<(Lit, ccmatic_num::Rat)>,
}

impl TheoryLemma {
    /// A lemma without a Farkas witness.
    pub fn new(lits: Vec<Lit>) -> Self {
        TheoryLemma { lits, farkas: Vec::new() }
    }
}

/// Theory hook consulted during the search (CDCL(T)).
pub trait TheoryHook {
    /// Called with the solver's complete assignment. Return `Ok(())` to
    /// accept, or a conflict lemma — a clause that is *false* under the
    /// current assignment — to reject it. The clause is learned and search
    /// continues.
    fn final_check(&mut self, assignment: &dyn Fn(Var) -> bool) -> Result<(), TheoryLemma>;

    /// Called on *partial* assignments (after each propagation fixpoint).
    /// `assignment(v)` is `None` for unassigned variables. Returning a
    /// conflict lemma here prunes the subtree early; the clause must be
    /// false under the current partial assignment. The default accepts
    /// everything (pure lazy solving).
    fn partial_check(
        &mut self,
        _assignment: &dyn Fn(Var) -> Option<bool>,
    ) -> Result<(), TheoryLemma> {
        Ok(())
    }

    /// Trail-synchronized replacement for [`TheoryHook::partial_check`],
    /// used instead of it when [`TheoryHook::supports_trail_sync`] is true.
    ///
    /// `trail` is the solver's full assignment trail; `low` is the length of
    /// its longest prefix guaranteed unchanged since the previous call this
    /// `solve` (0 on the first call). The hook retracts theory state for
    /// entries it processed beyond `low` and asserts `trail[low..]` — so a
    /// fixpoint check pays for the assignments made since the last one, not
    /// for the whole trail.
    ///
    /// On a consistent check, the hook may append *implied literals* to
    /// `implied`: each lemma's first literal must be unassigned and entailed
    /// by the theory under the current trail, the remaining literals are
    /// currently-false premises, and the full clause is theory-valid (with
    /// an optional Farkas witness, exactly like a conflict lemma — it enters
    /// the proof log the same way). The solver stores each clause and
    /// enqueues the implied literal with it as reason.
    fn trail_check(
        &mut self,
        _trail: &[Lit],
        _low: usize,
        _assignment: &dyn Fn(Var) -> Option<bool>,
        _implied: &mut Vec<TheoryLemma>,
    ) -> Result<(), TheoryLemma> {
        Ok(())
    }

    /// Whether this hook implements [`TheoryHook::trail_check`].
    fn supports_trail_sync(&self) -> bool {
        false
    }
}

/// A no-op hook for pure SAT solving.
pub struct NoTheory;

impl TheoryHook for NoTheory {
    fn final_check(&mut self, _assignment: &dyn Fn(Var) -> bool) -> Result<(), TheoryLemma> {
        Ok(())
    }
}

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying (and theory-accepted) assignment was found.
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Deepest assertion scope this clause's derivation depends on; the
    /// clause survives a pop to depth `d` iff `epoch ≤ d`.
    epoch: u32,
    /// Id of this clause in the proof log (0 when logging is off). Kept
    /// unconditionally — it is dead weight without the `proofs` feature but
    /// saves a cfg forest at every construction site.
    #[cfg_attr(not(feature = "proofs"), allow(dead_code))]
    proof_id: u64,
}

/// Per-push bookkeeping needed to roll the solver back.
#[derive(Clone, Copy)]
struct ScopeFrame {
    /// Variable count at push time; vars ≥ this are dropped on pop.
    num_vars: u32,
}

/// Cumulative counters, useful for reproducing the paper's scalability
/// discussion.
#[derive(Clone, Copy, Default, Debug)]
pub struct SatStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of conflicts (propositional and theory).
    pub conflicts: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of restarts.
    pub restarts: u64,
    /// Number of theory `final_check` invocations.
    pub theory_checks: u64,
    /// Number of theory-originated conflict clauses.
    pub theory_conflicts: u64,
    /// Literals implied into the trail by theory propagation.
    pub theory_props: u64,
    /// Clauses handed out through `take_shared_exports`.
    pub shared_exported: u64,
    /// Shared clauses admitted into this solver's clause database.
    pub shared_imported: u64,
    /// Shared clauses rejected on import (base mismatch or failed RUP test).
    pub shared_rejected: u64,
}

/// Restart policy for the CDCL search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartSchedule {
    /// `base * luby(i)` conflicts before restart `i` (the classic default).
    Luby {
        /// Multiplier applied to the Luby sequence.
        base: u64,
    },
    /// Limit grows by `factor_percent`/100 after every restart.
    Geometric {
        /// Conflicts before the first restart.
        base: u64,
        /// Growth factor in percent (e.g. 150 = ×1.5); clamped to ≥ 101.
        factor_percent: u64,
    },
    /// The same conflict count between every restart.
    Fixed {
        /// Conflicts between restarts; clamped to ≥ 1.
        interval: u64,
    },
}

/// Initial polarity assigned to fresh variables (phase saving overwrites it
/// as soon as the variable is first assigned).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseInit {
    /// Branch negative first (MiniSat default; today's baseline).
    False,
    /// Branch positive first.
    True,
    /// Seeded coin flip per variable.
    Random,
}

/// Search-strategy knobs that diversify portfolio workers without touching
/// soundness: every configuration explores the same clause set and proves
/// the same theorems, just in a different order.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchConfig {
    /// Seed for all randomized tie-breaking in this solver.
    pub seed: u64,
    /// Per-decision probability (in ‰) of branching on a random heap entry
    /// instead of the activity maximum. 0 disables the RNG entirely.
    pub random_decision_permille: u32,
    /// Add a tiny seeded perturbation to fresh variables' activities so
    /// equal-activity ties break differently per worker.
    pub activity_noise: bool,
    /// Restart schedule.
    pub restart: RestartSchedule,
    /// Initial phase policy for fresh variables.
    pub phase_init: PhaseInit,
}

impl Default for SearchConfig {
    /// The exact pre-portfolio behavior: deterministic VSIDS, Luby(100)
    /// restarts, negative initial phases, no randomness consumed.
    fn default() -> Self {
        SearchConfig {
            seed: 0,
            random_decision_permille: 0,
            activity_noise: false,
            restart: RestartSchedule::Luby { base: 100 },
            phase_init: PhaseInit::False,
        }
    }
}

impl SearchConfig {
    /// The standard diversification ladder for portfolio worker `worker`.
    /// Worker 0 keeps the default strategy so a 1-worker portfolio matches
    /// the serial solver; higher workers cycle through progressively more
    /// randomized profiles.
    pub fn diversified(seed: u64, worker: usize) -> SearchConfig {
        let seed = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match worker % 4 {
            0 => SearchConfig { seed, ..SearchConfig::default() },
            1 => SearchConfig {
                seed,
                random_decision_permille: 20,
                activity_noise: true,
                restart: RestartSchedule::Geometric { base: 100, factor_percent: 150 },
                phase_init: PhaseInit::Random,
            },
            2 => SearchConfig {
                seed,
                random_decision_permille: 50,
                activity_noise: true,
                restart: RestartSchedule::Luby { base: 50 },
                phase_init: PhaseInit::True,
            },
            _ => SearchConfig {
                seed,
                random_decision_permille: 10,
                activity_noise: true,
                restart: RestartSchedule::Fixed { interval: 700 },
                phase_init: PhaseInit::Random,
            },
        }
    }
}

/// Only clauses this short are worth broadcasting.
const SHARE_MAX_LEN: usize = 8;
/// LBD ceiling for exported resolution clauses.
const SHARE_MAX_LBD: u32 = 4;
/// Cap on clauses buffered for export between `take_shared_exports` calls.
const SHARE_BUF_CAP: usize = 4096;

/// The CDCL solver.
pub struct SatSolver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// Watch lists: for each literal index, the clauses watching it.
    watches: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    /// Saved phase for phase-saving.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    /// Length of the longest trail prefix guaranteed unchanged since the
    /// last `trail_check` handed to a trail-synchronized theory hook.
    /// Clamped on every backtrack, zeroed on `pop` (which filters the
    /// level-0 trail non-prefix-wise) and at the start of each `solve`.
    theory_low: usize,
    activity: Vec<f64>,
    act_inc: f64,
    order: ActivityHeap,
    /// Scope depth at which unsatisfiability was derived; popping below it
    /// clears the verdict. `Some(_)` means the current clause set is unsat.
    unsat_at: Option<u32>,
    /// Units queued at level 0 by `add_clause` before `solve` runs, with
    /// their derivation epochs.
    pending_units: Vec<(Lit, u32)>,
    /// Scope depth each variable was created at.
    var_epoch: Vec<u32>,
    /// Derivation epoch of a variable's level-0 assignment (meaningful only
    /// while the variable is assigned at level 0).
    level0_epoch: Vec<u32>,
    /// Open assertion scopes.
    frames: Vec<ScopeFrame>,
    /// Search-strategy knobs (restart schedule, randomization, phases).
    config: SearchConfig,
    /// Seeded RNG backing the randomized knobs; untouched when every knob
    /// is at its deterministic default.
    rng: SmallRng,
    /// When true, exportable learned clauses are buffered in `export_buf`.
    sharing: bool,
    /// Epoch-0 clauses waiting for `take_shared_exports`.
    export_buf: Vec<SharedClause>,
    /// Clauses from sibling workers waiting to be admitted at the next
    /// level-0 propagation fixpoint inside `solve`.
    import_queue: Vec<SharedClause>,
    /// Statistics.
    pub stats: SatStats,
    /// Optional conflict budget; `solve` gives up (`None` result) past it.
    pub conflict_budget: Option<u64>,
    /// Optional deadline/cancellation; `solve` polls it once per
    /// propagation fixpoint and gives up (`None` result) when it fires.
    pub interrupt: crate::interrupt::Interrupt,
    /// Proof log receiver; `None` (the default) makes every logging hook a
    /// no-op.
    #[cfg(feature = "proofs")]
    sink: Option<Box<dyn ccmatic_proof::ProofSink + Send>>,
    /// Live proof-log clause ids *not* tracked by `clauses`, indexed by
    /// derivation epoch: unit and level-0-satisfied input clauses, learned
    /// unit clauses, and unit theory lemmas. A pop to depth `d` deletes
    /// every id recorded at epochs > `d` (mirroring the trail filter and
    /// `pending_units` retention).
    #[cfg(feature = "proofs")]
    extra_ids: Vec<Vec<u64>>,
    /// Id of the logged empty clause while the solver is unsat; deleted
    /// when a pop clears the verdict.
    #[cfg(feature = "proofs")]
    unsat_proof: Option<u64>,
}

const ACT_DECAY: f64 = 1.0 / 0.95;
const ACT_RESCALE: f64 = 1e100;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Create an empty solver.
    pub fn new() -> Self {
        SatSolver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            theory_low: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            order: ActivityHeap::new(),
            unsat_at: None,
            pending_units: Vec::new(),
            var_epoch: Vec::new(),
            level0_epoch: Vec::new(),
            frames: Vec::new(),
            config: SearchConfig::default(),
            rng: SmallRng::seed_from_u64(0),
            sharing: false,
            export_buf: Vec::new(),
            import_queue: Vec::new(),
            stats: SatStats::default(),
            conflict_budget: None,
            interrupt: crate::interrupt::Interrupt::none(),
            #[cfg(feature = "proofs")]
            sink: None,
            #[cfg(feature = "proofs")]
            extra_ids: Vec::new(),
            #[cfg(feature = "proofs")]
            unsat_proof: None,
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.assign.push(LBool::Undef);
        let phase = match self.config.phase_init {
            PhaseInit::False => false,
            PhaseInit::True => true,
            PhaseInit::Random => self.rng.gen_bool(0.5),
        };
        self.phase.push(phase);
        self.level.push(0);
        self.reason.push(None);
        // Optional sub-VSIDS noise: breaks equal-activity ties differently
        // per seed without ever outweighing a real activity bump.
        let noise = if self.config.activity_noise { self.rng.next_f64() * 1e-6 } else { 0.0 };
        self.activity.push(noise);
        self.var_epoch.push(self.depth());
        self.level0_epoch.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.0 as usize, noise);
        v
    }

    /// Install search-strategy knobs and reseed the RNG. Phase-init and
    /// activity-noise policies apply to variables created from here on, so
    /// portfolio workers call this before encoding their formula.
    pub fn set_search_config(&mut self, config: SearchConfig) {
        self.rng = SmallRng::seed_from_u64(config.seed);
        self.config = config;
    }

    /// The active search configuration.
    pub fn search_config(&self) -> &SearchConfig {
        &self.config
    }

    /// Enable (or disable) buffering of shareable learned clauses for
    /// [`SatSolver::take_shared_exports`]. Off by default: serial solving
    /// pays nothing for the portfolio machinery.
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sharing = enabled;
        if !enabled {
            self.export_buf.clear();
        }
    }

    /// Drain the buffered epoch-0 learned clauses for broadcast to sibling
    /// workers.
    pub fn take_shared_exports(&mut self) -> Vec<SharedClause> {
        let out = std::mem::take(&mut self.export_buf);
        self.stats.shared_exported += out.len() as u64;
        out
    }

    /// Queue clauses from sibling workers. They are admitted at the next
    /// level-0 propagation fixpoint inside [`SatSolver::solve`], where each
    /// clause must (a) match this solver's base variable numbering and
    /// (b) with proof logging on, either carry a Farkas witness or pass an
    /// importer-side RUP test — otherwise it is dropped, never trusted.
    ///
    /// **Contract:** callers must only feed clauses exported by a solver
    /// whose base-scope encoding is identical to this one's (the portfolio
    /// engine builds every worker's verifier from the same spec, which
    /// guarantees it). Without proof logging there is no checked gate.
    pub fn queue_shared_imports(&mut self, clauses: Vec<SharedClause>) {
        self.import_queue.extend(clauses);
        if self.import_queue.len() > SHARE_BUF_CAP {
            let excess = self.import_queue.len() - SHARE_BUF_CAP;
            self.import_queue.drain(..excess);
        }
    }

    /// Variable count of the base (depth-0) scope — the shared vocabulary
    /// for clause exchange.
    pub fn base_var_count(&self) -> u32 {
        self.frames.first().map_or(self.num_vars, |f| f.num_vars)
    }

    /// Current scope depth (number of open pushes).
    pub fn depth(&self) -> u32 {
        self.frames.len() as u32
    }

    /// True iff the current clause set has been proven unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        self.unsat_at.is_some()
    }

    fn set_unsat(&mut self, epoch: u32) {
        self.unsat_at = Some(self.unsat_at.map_or(epoch, |e| e.min(epoch)));
        // Conclude the proof with one empty clause (derivable by unit
        // propagation alone at every call site). Guarded so repeated
        // conclusions while already unsat log nothing new.
        #[cfg(feature = "proofs")]
        if self.unsat_proof.is_none() {
            if let Some(sink) = self.sink.as_mut() {
                self.unsat_proof = Some(sink.log_rup(Vec::new()));
            }
        }
    }

    /// Install a proof-log receiver. Must be called on an empty solver so
    /// the log covers every clause.
    ///
    /// # Panics
    /// Panics if variables or clauses already exist.
    #[cfg(feature = "proofs")]
    pub fn set_proof_sink(&mut self, sink: Box<dyn ccmatic_proof::ProofSink + Send>) {
        assert!(
            self.num_vars == 0 && self.clauses.is_empty() && self.pending_units.is_empty(),
            "proof logging must be enabled on an empty solver"
        );
        self.sink = Some(sink);
    }

    /// See the `proofs`-enabled variant; without the feature the sink is
    /// dropped and nothing is ever logged.
    #[cfg(not(feature = "proofs"))]
    pub fn set_proof_sink(&mut self, _sink: Box<dyn ccmatic_proof::ProofSink + Send>) {}

    /// A copy of the proof log so far, if a snapshot-capable sink is
    /// installed. Meaningful as an UNSAT certificate when taken while
    /// [`SatSolver::is_unsat`] holds.
    #[cfg(feature = "proofs")]
    pub fn proof_snapshot(&self) -> Option<ccmatic_proof::UnsatCertificate> {
        self.sink.as_ref().and_then(|s| s.snapshot())
    }

    /// See the `proofs`-enabled variant.
    #[cfg(not(feature = "proofs"))]
    pub fn proof_snapshot(&self) -> Option<ccmatic_proof::UnsatCertificate> {
        None
    }

    /// Proof-log counters, if logging is on.
    #[cfg(feature = "proofs")]
    pub fn proof_stats(&self) -> Option<ccmatic_proof::ProofLogStats> {
        self.sink.as_ref().map(|s| s.stats())
    }

    /// See the `proofs`-enabled variant.
    #[cfg(not(feature = "proofs"))]
    pub fn proof_stats(&self) -> Option<ccmatic_proof::ProofLogStats> {
        None
    }

    /// Whether a proof sink is attached (always `false` without the
    /// `proofs` feature).
    #[cfg(feature = "proofs")]
    pub fn proofs_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// See the `proofs`-enabled variant.
    #[cfg(not(feature = "proofs"))]
    pub fn proofs_enabled(&self) -> bool {
        false
    }

    /// Record the arithmetic meaning of SAT variable `v` in the proof log:
    /// `expr ≤ bound` (`<` when `strict`), with `expr` a sparse sum over
    /// real-variable indices. No-op without a sink. Re-logging a recycled
    /// variable replaces its definition.
    #[cfg(feature = "proofs")]
    pub fn log_atom_def(
        &mut self,
        v: Var,
        expr: &[(u32, ccmatic_num::Rat)],
        bound: &ccmatic_num::Rat,
        strict: bool,
    ) {
        if let Some(sink) = self.sink.as_mut() {
            sink.log_atom(v.0, expr.to_vec(), bound.clone(), strict);
        }
    }

    /// See the `proofs`-enabled variant; without the feature this is a
    /// no-op kept so call sites need no cfg.
    #[cfg(not(feature = "proofs"))]
    pub fn log_atom_def(
        &mut self,
        _v: Var,
        _expr: &[(u32, ccmatic_num::Rat)],
        _bound: &ccmatic_num::Rat,
        _strict: bool,
    ) {
    }

    #[cfg(feature = "proofs")]
    fn plog_input(&mut self, lits: &[Lit]) -> u64 {
        match self.sink.as_mut() {
            Some(s) => s.log_input(lits.iter().map(|l| l.0).collect()),
            None => 0,
        }
    }

    #[cfg(not(feature = "proofs"))]
    fn plog_input(&mut self, _lits: &[Lit]) -> u64 {
        0
    }

    #[cfg(feature = "proofs")]
    fn plog_rup(&mut self, lits: &[Lit]) -> u64 {
        match self.sink.as_mut() {
            Some(s) => s.log_rup(lits.iter().map(|l| l.0).collect()),
            None => 0,
        }
    }

    #[cfg(not(feature = "proofs"))]
    fn plog_rup(&mut self, _lits: &[Lit]) -> u64 {
        0
    }

    #[cfg(feature = "proofs")]
    fn plog_theory(&mut self, lits: &[Lit], farkas: &[(Lit, ccmatic_num::Rat)]) -> u64 {
        match self.sink.as_mut() {
            Some(s) => s.log_theory(
                lits.iter().map(|l| l.0).collect(),
                farkas.iter().map(|(l, c)| (l.0, c.clone())).collect(),
            ),
            None => 0,
        }
    }

    #[cfg(not(feature = "proofs"))]
    fn plog_theory(&mut self, _lits: &[Lit], _farkas: &[(Lit, ccmatic_num::Rat)]) -> u64 {
        0
    }

    #[cfg(feature = "proofs")]
    fn plog_delete(&mut self, id: u64) {
        if id != 0 {
            if let Some(s) = self.sink.as_mut() {
                s.log_delete(id);
            }
        }
    }

    #[cfg(not(feature = "proofs"))]
    fn plog_delete(&mut self, _id: u64) {}

    /// Track a live proof clause that `clauses` does not own (unit inputs,
    /// learned units, level-0-satisfied inputs) so the matching pop can
    /// delete it.
    #[cfg(feature = "proofs")]
    fn plog_record_extra(&mut self, epoch: u32, id: u64) {
        if id == 0 {
            return;
        }
        let e = epoch as usize;
        if e >= self.extra_ids.len() {
            self.extra_ids.resize_with(e + 1, Vec::new);
        }
        self.extra_ids[e].push(id);
    }

    #[cfg(not(feature = "proofs"))]
    fn plog_record_extra(&mut self, _epoch: u32, _id: u64) {}

    /// Open an assertion scope: clauses and variables added from here on are
    /// discarded by the matching [`SatSolver::pop`].
    pub fn push(&mut self) {
        self.frames.push(ScopeFrame { num_vars: self.num_vars });
    }

    /// Close the innermost scope, dropping its variables and input clauses.
    /// Learned clauses and level-0 facts whose derivations only involve the
    /// surviving prefix (epoch ≤ new depth) are kept.
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        let new_depth = self.frames.len() as u32;
        self.backtrack_to(0);
        // The level-0 trail is filtered (not truncated) below, so no prefix
        // is guaranteed stable for a synchronized theory hook.
        self.theory_low = 0;
        // Filter the level-0 trail: keep facts about surviving variables
        // whose derivations survive.
        let trail = std::mem::take(&mut self.trail);
        for l in trail {
            let v = l.var().0 as usize;
            // Clause indices shift below; level-0 reasons are never
            // dereferenced (analysis skips level-0 literals), so drop them.
            self.reason[v] = None;
            if l.var().0 < frame.num_vars && self.level0_epoch[v] <= new_depth {
                self.trail.push(l);
            } else {
                self.assign[v] = LBool::Undef;
                if l.var().0 < frame.num_vars {
                    self.order.insert(v, self.activity[v]);
                }
            }
        }
        // Drop per-variable state of the popped variables.
        let n = frame.num_vars as usize;
        self.num_vars = frame.num_vars;
        self.assign.truncate(n);
        self.phase.truncate(n);
        self.level.truncate(n);
        self.reason.truncate(n);
        self.activity.truncate(n);
        self.var_epoch.truncate(n);
        self.level0_epoch.truncate(n);
        self.order.truncate_ids(n);
        // Log deletions for everything about to be dropped — BEFORE any
        // later addition, so a popped clause can never justify a later RUP
        // step in the proof.
        #[cfg(feature = "proofs")]
        if self.sink.is_some() {
            let mut dead: Vec<u64> = self
                .clauses
                .iter()
                .filter(|c| c.epoch > new_depth && c.proof_id != 0)
                .map(|c| c.proof_id)
                .collect();
            for e in (new_depth as usize + 1)..self.extra_ids.len() {
                dead.append(&mut self.extra_ids[e]);
            }
            for id in dead {
                self.plog_delete(id);
            }
        }
        #[cfg(feature = "proofs")]
        self.extra_ids.truncate(new_depth as usize + 1);
        // Keep only clauses derivable from the surviving prefix. The epoch
        // invariant (clause epoch ≥ every literal's variable epoch)
        // guarantees no survivor mentions a dropped variable.
        self.clauses.retain(|c| c.epoch <= new_depth);
        // Rebuild the watch lists wholesale and re-run propagation from the
        // trail head: every falsified watch is rediscovered because its
        // negation sits on the retained level-0 trail.
        self.watches = vec![Vec::new(); 2 * n];
        for (idx, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].index()].push(idx);
            self.watches[c.lits[1].index()].push(idx);
        }
        self.prop_head = 0;
        self.pending_units.retain(|&(_, e)| e <= new_depth);
        if self.unsat_at.is_some_and(|e| e > new_depth) {
            self.unsat_at = None;
            // The empty clause's derivation died with the popped scope.
            #[cfg(feature = "proofs")]
            if let Some(id) = self.unsat_proof.take() {
                self.plog_delete(id);
            }
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Current value of a variable (meaningful after `SolveResult::Sat`).
    pub fn value(&self, v: Var) -> bool {
        matches!(self.assign[v.0 as usize], LBool::True)
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Add a clause. May be called at any time between `solve` calls;
    /// duplicate and tautological clauses are handled. Returns `false` if
    /// the clause set is now trivially unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        if self.is_unsat() {
            return false;
        }
        // The clause is an input assertion of the current scope. (Dropped
        // level-0-false literals only consume facts with epoch ≤ depth, so
        // the current depth still dominates the full derivation.)
        let epoch = self.depth();
        // The solver may be mid-model from a previous solve; new clauses are
        // integrated at level 0.
        self.backtrack_to(0);
        lits.sort();
        lits.dedup();
        // Tautology check: p and ¬p both present.
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        // The (deduplicated) clause enters the proof log as an input axiom
        // of the current scope.
        let input_id = self.plog_input(&lits);
        // Drop literals already false at level 0; satisfied clause check.
        let mut keep = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                LBool::True => {
                    // Satisfied at level 0: never stored, but it stays a live
                    // axiom of this scope in the proof.
                    self.plog_record_extra(epoch, input_id);
                    return true;
                }
                LBool::False => {}
                LBool::Undef => keep.push(l),
            }
        }
        // If level-0-false literals were dropped, the stored clause is a RUP
        // consequence of the input plus the live level-0 derivations; log it
        // as such and retire the input. (Not for the empty case — there
        // `set_unsat` logs the one empty clause, justified by the still-live
        // input.)
        let proof_id = if keep.len() != lits.len() && !keep.is_empty() {
            let rid = self.plog_rup(&keep);
            self.plog_delete(input_id);
            rid
        } else {
            input_id
        };
        match keep.len() {
            0 => {
                self.plog_record_extra(epoch, input_id);
                self.set_unsat(epoch);
                false
            }
            1 => {
                self.plog_record_extra(epoch, proof_id);
                self.pending_units.push((keep[0], epoch));
                true
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[keep[0].index()].push(idx);
                self.watches[keep[1].index()].push(idx);
                self.clauses.push(Clause { lits: keep, epoch, proof_id });
                true
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) {
        // At level 0 the fact's derivation epoch is the reason clause's
        // epoch joined with the epochs of the facts that falsified its other
        // literals; without a reason, conservatively the current depth.
        let epoch = if self.trail_lim.is_empty() {
            match reason {
                Some(ci) => {
                    let mut e = self.clauses[ci].epoch;
                    for &x in &self.clauses[ci].lits {
                        if x != l {
                            e = e.max(self.level0_epoch[x.var().0 as usize]);
                        }
                    }
                    e
                }
                None => self.depth(),
            }
        } else {
            0
        };
        self.enqueue_with_epoch(l, reason, epoch);
    }

    fn enqueue_with_epoch(&mut self, l: Lit, reason: Option<usize>, epoch: u32) {
        let v = l.var().0 as usize;
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.is_neg() { LBool::False } else { LBool::True };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        if self.trail_lim.is_empty() {
            self.level0_epoch[v] = epoch;
        }
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Join of a clause's epoch with the level-0 facts falsifying it — the
    /// derivation epoch of a conflict detected at decision level 0.
    fn level0_conflict_epoch(&self, ci: usize) -> u32 {
        let mut e = self.clauses[ci].epoch;
        for &l in &self.clauses[ci].lits {
            e = e.max(self.level0_epoch[l.var().0 as usize]);
        }
        e
    }

    /// Propagate all queued assignments; returns a conflicting clause index
    /// on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            let falsified = l.negated();
            let mut i = 0;
            // Take the watch list to appease the borrow checker; clauses
            // removed from it are re-added to other lists.
            let mut watch_list = std::mem::take(&mut self.watches[falsified.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the falsified literal is at position 1.
                let (w0, w1) = (self.clauses[ci].lits[0], self.clauses[ci].lits[1]);
                if w0 == falsified {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], falsified);
                let first = self.clauses[ci].lits[0];
                let _ = w1;
                if self.lit_value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[cand.index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore the watch list and report.
                    self.watches[falsified.index()] = watch_list;
                    self.prop_head = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
            self.watches[falsified.index()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let idx = v.0 as usize;
        self.activity[idx] += self.act_inc;
        if self.activity[idx] > ACT_RESCALE {
            for a in self.activity.iter_mut() {
                *a /= ACT_RESCALE;
            }
            self.act_inc /= ACT_RESCALE;
            self.order.rebuild(&self.activity);
        }
        self.order.update(idx, self.activity[idx]);
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first), the backjump level, and the derivation epoch (the
    /// join over every resolved premise and consumed level-0 fact).
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32, u32) {
        let current_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut reason_clause = conflict;
        let mut asserting: Option<Lit> = None;
        let mut epoch = 0u32;

        loop {
            epoch = epoch.max(self.clauses[reason_clause].epoch);
            let lits: Vec<Lit> = self.clauses[reason_clause].lits.clone();
            // Skip the asserting literal itself when walking a reason clause.
            for l in lits {
                if Some(l) == asserting {
                    continue;
                }
                let v = l.var().0 as usize;
                if seen[v] {
                    continue;
                }
                if self.level[v] == 0 {
                    // The resolution consumes this level-0 fact.
                    epoch = epoch.max(self.level0_epoch[v]);
                    continue;
                }
                seen[v] = true;
                self.bump_var(l.var());
                if self.level[v] == current_level {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Pick the next trail literal to resolve on.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().0 as usize] {
                    counter -= 1;
                    if counter == 0 {
                        // First UIP found.
                        learned.insert(0, l.negated());
                        let backjump = learned[1..]
                            .iter()
                            .map(|x| self.level[x.var().0 as usize])
                            .max()
                            .unwrap_or(0);
                        return (learned, backjump, epoch);
                    }
                    asserting = Some(l);
                    reason_clause =
                        self.reason[l.var().0 as usize].expect("UIP literal must have a reason");
                    break;
                }
            }
        }
    }

    fn backtrack_to(&mut self, target_level: u32) {
        while self.trail_lim.len() as u32 > target_level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
                self.order.insert(v, self.activity[v]);
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.theory_low = self.theory_low.min(self.trail.len());
        if target_level == 0 {
            self.prop_head = 0;
        }
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Portfolio diversification: occasionally branch on a random heap
        // entry instead of the activity maximum. Assigned entries are
        // discarded exactly as `pop_max` would.
        if self.config.random_decision_permille > 0 && !self.order.is_empty() {
            let roll = self.rng.gen_range_usize(0, 1000) as u32;
            if roll < self.config.random_decision_permille {
                while !self.order.is_empty() {
                    let at = self.rng.gen_range_usize(0, self.order.len());
                    let idx = self.order.remove_index(at);
                    if self.assign[idx] == LBool::Undef {
                        return Some(Var(idx as u32));
                    }
                }
                return None;
            }
        }
        while let Some(idx) = self.order.pop_max() {
            if self.assign[idx] == LBool::Undef {
                return Some(Var(idx as u32));
            }
        }
        None
    }

    /// Conflicts allowed before restart number `restarts`, per the active
    /// schedule.
    fn restart_limit(&self, restarts: u64) -> u64 {
        match self.config.restart {
            RestartSchedule::Luby { base } => base.max(1).saturating_mul(Self::luby(restarts)),
            RestartSchedule::Geometric { base, factor_percent } => {
                let factor = factor_percent.max(101);
                let mut limit = base.max(1);
                for _ in 0..restarts {
                    limit = limit.saturating_mul(factor) / 100;
                    if limit > 1 << 40 {
                        break;
                    }
                }
                limit
            }
            RestartSchedule::Fixed { interval } => interval.max(1),
        }
    }

    /// Buffer a freshly learned epoch-0 clause for export when it clears
    /// the size/LBD filter. `lbd` of `None` means "compute from the current
    /// levels" (callers pass `Some(1)` for units whose level data is stale).
    fn maybe_export(
        &mut self,
        lits: &[Lit],
        epoch: u32,
        lbd: Option<u32>,
        farkas: &[(Lit, ccmatic_num::Rat)],
    ) {
        if !self.sharing
            || epoch != 0
            || lits.is_empty()
            || lits.len() > SHARE_MAX_LEN
            || self.export_buf.len() >= SHARE_BUF_CAP
        {
            return;
        }
        let lbd = lbd.unwrap_or_else(|| {
            let mut levels: Vec<u32> =
                lits.iter().map(|l| self.level[l.var().0 as usize]).collect();
            levels.sort_unstable();
            levels.dedup();
            levels.len() as u32
        });
        if lbd > SHARE_MAX_LBD {
            return;
        }
        let mut canonical = lits.to_vec();
        canonical.sort_unstable();
        self.export_buf.push(SharedClause {
            lits: canonical,
            lbd,
            base_vars: self.base_var_count(),
            farkas: farkas.to_vec(),
        });
    }

    /// Learn a clause produced by conflict analysis or the theory hook and
    /// backjump appropriately. `epoch` is the clause's derivation epoch.
    /// Returns `false` if this proves unsat.
    fn learn(&mut self, learned: Vec<Lit>, backjump: u32, epoch: u32) -> bool {
        self.stats.conflicts += 1;
        self.act_inc *= ACT_DECAY;
        if learned.is_empty() {
            self.set_unsat(epoch);
            return false;
        }
        // Export before backtracking while the literals' levels (needed for
        // LBD) are still live. Units reach here with stale level data, so
        // their LBD is pinned.
        let lbd_hint = if learned.len() == 1 { Some(1) } else { None };
        self.maybe_export(&learned, epoch, lbd_hint, &[]);
        self.backtrack_to(backjump);
        // First-UIP clauses (and unit theory lemmas re-entering through
        // here) are derivable by reverse unit propagation from their live
        // antecedents.
        let proof_id = self.plog_rup(&learned);
        if learned.len() == 1 {
            self.plog_record_extra(epoch, proof_id);
            if self.lit_value(learned[0]) == LBool::False {
                let e = epoch.max(self.level0_epoch[learned[0].var().0 as usize]);
                self.set_unsat(e);
                return false;
            }
            if self.lit_value(learned[0]) == LBool::Undef {
                self.enqueue_with_epoch(learned[0], None, epoch);
            }
            return true;
        }
        let idx = self.clauses.len();
        self.watches[learned[0].index()].push(idx);
        self.watches[learned[1].index()].push(idx);
        let assert_lit = learned[0];
        self.clauses.push(Clause { lits: learned, epoch, proof_id });
        if self.lit_value(assert_lit) == LBool::Undef {
            self.enqueue(assert_lit, Some(idx));
        }
        true
    }

    /// The Luby restart sequence (1,1,2,1,1,2,4,…).
    fn luby(mut i: u64) -> u64 {
        loop {
            // Smallest k with 2^k − 1 ≥ i + 1.
            let mut k = 1u64;
            while (1u64 << k) - 1 < i + 1 {
                k += 1;
            }
            if (1u64 << k) - 1 == i + 1 {
                return 1 << (k - 1);
            }
            // Tail-recurse on the position within the previous block.
            i -= (1 << (k - 1)) - 1;
        }
    }

    /// Propagation-based redundancy check: is `lits` derivable by reverse
    /// unit propagation from the current clause database plus level-0
    /// facts? Used to admit shared clauses into a proof-logged solver. A
    /// clause from a sibling worker may resolve on premises this solver
    /// never learned; the check then fails and the import is rejected,
    /// which is always safe.
    ///
    /// Precondition: decision level 0, propagation at fixpoint.
    fn rup_check(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        debug_assert_eq!(self.prop_head, self.trail.len());
        self.trail_lim.push(self.trail.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::False => {}
                LBool::Undef => self.enqueue_with_epoch(l.negated(), None, 0),
                LBool::True => {
                    // Satisfied at level 0: trivially redundant. (Callers
                    // filter these, but stay correct regardless.)
                    self.backtrack_to(0);
                    self.prop_head = self.trail.len();
                    return true;
                }
            }
        }
        let conflict = self.propagate().is_some();
        self.backtrack_to(0);
        // The level-0 prefix was at fixpoint before the probe and is
        // unchanged; skip re-propagating it.
        self.prop_head = self.trail.len();
        conflict
    }

    /// Admit queued shared clauses at a level-0 propagation fixpoint.
    /// Returns `false` if this proves unsat. See
    /// [`SatSolver::queue_shared_imports`] for the admission contract.
    fn integrate_imports(&mut self) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        let imports = std::mem::take(&mut self.import_queue);
        let base = self.base_var_count();
        for sc in imports {
            // Keep level-0 propagation at fixpoint between admissions: the
            // RUP probe needs it, and later imports should see the units
            // earlier ones produced.
            if let Some(ci) = self.propagate() {
                let e = self.level0_conflict_epoch(ci);
                self.set_unsat(e);
                return false;
            }
            let mut lits = sc.lits;
            lits.sort_unstable();
            lits.dedup();
            let malformed = lits.is_empty()
                || sc.base_vars != base
                || lits.iter().any(|l| l.var().0 >= base)
                || lits.windows(2).any(|w| w[0].var() == w[1].var());
            if malformed {
                self.stats.shared_rejected += 1;
                continue;
            }
            // Already satisfied at level 0 (e.g. our own broadcast coming
            // back): nothing to add.
            if lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
                continue;
            }
            // Certificate gate: with proofs on, a theory lemma re-enters
            // the log with its Farkas witness (the checker re-validates it
            // against our own atom definitions); a resolution clause must
            // pass the RUP probe to earn a checked step.
            let proof_id = if self.proofs_enabled() {
                if !sc.farkas.is_empty() {
                    self.plog_theory(&lits, &sc.farkas)
                } else if self.rup_check(&lits) {
                    self.plog_rup(&lits)
                } else {
                    self.stats.shared_rejected += 1;
                    continue;
                }
            } else {
                0
            };
            self.stats.shared_imported += 1;
            // Imported clauses are epoch 0 by contract: consequences of the
            // shared base encoding alone, so they survive every pop.
            let mut ordered: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut falses: Vec<Lit> = Vec::new();
            for &l in &lits {
                if self.lit_value(l) == LBool::False {
                    falses.push(l);
                } else {
                    ordered.push(l);
                }
            }
            let num_open = ordered.len();
            ordered.append(&mut falses);
            match num_open {
                0 => {
                    // Conflicts with live level-0 facts: unsat, at the join
                    // of the falsifying facts' epochs.
                    self.plog_record_extra(0, proof_id);
                    let e = ordered
                        .iter()
                        .fold(0u32, |e, l| e.max(self.level0_epoch[l.var().0 as usize]));
                    self.set_unsat(e);
                    return false;
                }
                1 if ordered.len() == 1 => {
                    self.plog_record_extra(0, proof_id);
                    self.enqueue_with_epoch(ordered[0], None, 0);
                }
                _ => {
                    let idx = self.clauses.len();
                    self.watches[ordered[0].index()].push(idx);
                    self.watches[ordered[1].index()].push(idx);
                    let first = ordered[0];
                    let unit = num_open == 1;
                    self.clauses.push(Clause { lits: ordered, epoch: 0, proof_id });
                    if unit {
                        // Exactly one open literal: propagate it now with
                        // the clause as reason (epoch joins the falsifying
                        // facts via `enqueue`).
                        self.enqueue(first, Some(idx));
                    }
                }
            }
        }
        true
    }

    /// Integrate theory-implied literals from a `trail_check` scan. Each
    /// lemma's first literal is the implied one; the rest are its
    /// currently-false premises. The clause is stored (entering the proof
    /// log as a theory lemma with its Farkas witness) and the implied
    /// literal enqueued with it as reason, so conflict analysis can resolve
    /// across it like any propagation. Returns `(progressed, consistent)`;
    /// `consistent == false` means unsat was derived.
    fn integrate_theory_implications(&mut self, implied: Vec<TheoryLemma>) -> (bool, bool) {
        let mut progressed = false;
        for lemma in implied {
            if lemma.lits.len() < 2 {
                // The bridge never emits premise-free implications; a unit
                // here could not be watched, so drop it defensively.
                debug_assert!(false, "premise-free theory implication");
                continue;
            }
            match self.lit_value(lemma.lits[0]) {
                // An earlier clause in this batch already propagated it.
                LBool::True => continue,
                LBool::False => {
                    // The whole clause is false: a genuine theory conflict.
                    // Route it through the standard path; the backjump
                    // invalidates the premises of the remaining batch, so
                    // drop it (the next scan re-derives anything still due).
                    let ok = self.handle_theory_conflict(lemma);
                    return (true, ok);
                }
                LBool::Undef => {}
            }
            let TheoryLemma { lits: mut clause, farkas } = lemma;
            debug_assert!(
                clause[1..].iter().all(|&l| self.lit_value(l) == LBool::False),
                "implication premises must be false under the current assignment"
            );
            let theory_id = self.plog_theory(&clause, &farkas);
            // Same epoch rule as conflict lemmas: valid whenever its atoms
            // exist (bounds are re-derived from the live atom set).
            let epoch = clause
                .iter()
                .map(|l| self.var_epoch[l.var().0 as usize])
                .max()
                .expect("len checked");
            // Watch the implied literal and the deepest premise so the
            // clause re-propagates correctly after backtracking.
            clause[1..].sort_by_key(|l| std::cmp::Reverse(self.level[l.var().0 as usize]));
            let idx = self.clauses.len();
            self.watches[clause[0].index()].push(idx);
            self.watches[clause[1].index()].push(idx);
            let implied_lit = clause[0];
            self.clauses.push(Clause { lits: clause, epoch, proof_id: theory_id });
            self.enqueue(implied_lit, Some(idx));
            self.stats.theory_props += 1;
            progressed = true;
        }
        (progressed, true)
    }

    /// Integrate a conflict clause reported by the theory: backjump to the
    /// clause's maximum decision level, store it, and run standard
    /// first-UIP analysis from it. Returns `false` if this proves unsat.
    fn handle_theory_conflict(&mut self, lemma: TheoryLemma) -> bool {
        let TheoryLemma { lits: mut clause, farkas } = lemma;
        self.stats.theory_conflicts += 1;
        debug_assert!(
            clause.iter().all(|&l| self.lit_value(l) == LBool::False),
            "theory conflict clause must be false under the current assignment"
        );
        // The lemma enters the proof with its Farkas witness before anything
        // is derived from it.
        let theory_id = self.plog_theory(&clause, &farkas);
        // A theory lemma is valid whenever its atoms exist: the theory
        // re-derives its bounds from the live atom set on every check, so
        // the lemma's epoch is the max creation depth of its variables.
        // This is the retention workhorse — lemmas over base-scope atoms
        // survive every candidate pop.
        let epoch = clause
            .iter()
            .map(|l| self.var_epoch[l.var().0 as usize])
            .max()
            .unwrap_or_else(|| self.depth());
        // Base-scope theory lemmas are the best shares: the Farkas witness
        // travels with them, so importers re-certify them theory-side
        // instead of needing a RUP derivation.
        self.maybe_export(&clause, epoch, None, &farkas);
        if clause.is_empty() {
            self.plog_record_extra(epoch, theory_id);
            self.set_unsat(epoch);
            return false;
        }
        // Keep the two highest-level literals in watch positions so the
        // all-false case is always detected by the last falsification.
        clause.sort_by_key(|l| std::cmp::Reverse(self.level[l.var().0 as usize]));
        let max_level = self.level[clause[0].var().0 as usize];
        if max_level == 0 {
            self.plog_record_extra(epoch, theory_id);
            let e = clause.iter().fold(epoch, |e, l| e.max(self.level0_epoch[l.var().0 as usize]));
            self.set_unsat(e);
            return false;
        }
        self.backtrack_to(max_level);
        if clause.len() == 1 {
            // Unit theory clause: fall back to direct learning (backjump so
            // the literal becomes assignable). `learn` re-logs the unit as a
            // (trivially RUP) consequence of the theory step.
            self.plog_record_extra(epoch, theory_id);
            self.backtrack_to(max_level - 1);
            return self.learn(clause, max_level - 1, epoch);
        }
        let idx = self.clauses.len();
        self.watches[clause[0].index()].push(idx);
        self.watches[clause[1].index()].push(idx);
        self.clauses.push(Clause { lits: clause, epoch, proof_id: theory_id });
        let (learned, backjump, learned_epoch) = self.analyze(idx);
        self.learn(learned, backjump, learned_epoch)
    }

    /// Solve the current clause set, consulting `theory` on partial and
    /// complete assignments. Returns `None` if the conflict budget was
    /// exhausted.
    pub fn solve(&mut self, theory: &mut dyn TheoryHook) -> Option<SolveResult> {
        if self.is_unsat() {
            return Some(SolveResult::Unsat);
        }
        self.backtrack_to(0);
        // A synchronized theory hook starts each solve with empty bound
        // state, so nothing of the trail has been processed yet.
        self.theory_low = 0;
        // Flush pending level-0 units.
        let units = std::mem::take(&mut self.pending_units);
        for (u, epoch) in units {
            match self.lit_value(u) {
                LBool::True => {
                    // Keep the stronger (older) epoch for the fact.
                    let v = u.var().0 as usize;
                    self.level0_epoch[v] = self.level0_epoch[v].min(epoch);
                }
                LBool::False => {
                    let e = epoch.max(self.level0_epoch[u.var().0 as usize]);
                    self.set_unsat(e);
                    return Some(SolveResult::Unsat);
                }
                LBool::Undef => self.enqueue_with_epoch(u, None, epoch),
            }
        }
        let mut conflicts_at_start = self.stats.conflicts;
        let mut restart_count = 0u64;
        let mut restart_limit = self.restart_limit(restart_count);
        let interruptible = self.interrupt.is_armed();
        loop {
            // One poll per propagation fixpoint: propagate + the theory's
            // partial check dominate the clock reads by orders of magnitude.
            if interruptible && self.interrupt.triggered() {
                return None;
            }
            if let Some(ci) = self.propagate() {
                if self.trail_lim.is_empty() {
                    let e = self.level0_conflict_epoch(ci);
                    self.set_unsat(e);
                    return Some(SolveResult::Unsat);
                }
                let (learned, backjump, epoch) = self.analyze(ci);
                if !self.learn(learned, backjump, epoch) {
                    return Some(SolveResult::Unsat);
                }
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts.saturating_sub(0) > budget {
                        return None;
                    }
                }
                if self.stats.conflicts - conflicts_at_start >= restart_limit {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    restart_limit = self.restart_limit(restart_count);
                    conflicts_at_start = self.stats.conflicts;
                    self.backtrack_to(0);
                }
                continue;
            }
            // At a level-0 propagation fixpoint, admit any shared clauses
            // queued by the portfolio engine (they may enqueue units, so
            // loop back to propagate before anything else).
            if !self.import_queue.is_empty() && self.trail_lim.is_empty() {
                if !self.integrate_imports() {
                    return Some(SolveResult::Unsat);
                }
                continue;
            }
            // Propagation fixpoint reached: give the theory an early look at
            // the partial assignment (CDCL(T) eager pruning).
            {
                self.stats.theory_checks += 1;
                let verdict = if theory.supports_trail_sync() {
                    // Hand over only the trail suffix assigned since the
                    // last check; advance the watermark *before* integrating
                    // implications (backtracks clamp it back down, and the
                    // hook's own cursor is authoritative on conflict exits).
                    let low = self.theory_low;
                    self.theory_low = self.trail.len();
                    let mut implied = Vec::new();
                    let assign = &self.assign;
                    let lookup = |v: Var| match assign[v.0 as usize] {
                        LBool::True => Some(true),
                        LBool::False => Some(false),
                        LBool::Undef => None,
                    };
                    let r = theory.trail_check(&self.trail, low, &lookup, &mut implied);
                    match r {
                        Ok(()) if !implied.is_empty() => {
                            let (progressed, consistent) =
                                self.integrate_theory_implications(implied);
                            if !consistent {
                                return Some(SolveResult::Unsat);
                            }
                            if let Some(budget) = self.conflict_budget {
                                if self.stats.conflicts > budget {
                                    return None;
                                }
                            }
                            if progressed {
                                continue;
                            }
                            Ok(())
                        }
                        other => other,
                    }
                } else {
                    let assign = &self.assign;
                    let lookup = |v: Var| match assign[v.0 as usize] {
                        LBool::True => Some(true),
                        LBool::False => Some(false),
                        LBool::Undef => None,
                    };
                    theory.partial_check(&lookup)
                };
                if let Err(clause) = verdict {
                    if !self.handle_theory_conflict(clause) {
                        return Some(SolveResult::Unsat);
                    }
                    if let Some(budget) = self.conflict_budget {
                        if self.stats.conflicts > budget {
                            return None;
                        }
                    }
                    continue;
                }
            }
            match self.pick_branch_var() {
                Some(v) => {
                    self.stats.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let phase = self.phase[v.0 as usize];
                    self.enqueue(Lit::with_sign(v, phase), None);
                }
                None => {
                    // Full assignment: final theory verdict.
                    self.stats.theory_checks += 1;
                    let assign = &self.assign;
                    let lookup = |v: Var| matches!(assign[v.0 as usize], LBool::True);
                    match theory.final_check(&lookup) {
                        Ok(()) => return Some(SolveResult::Sat),
                        Err(clause) => {
                            if !self.handle_theory_conflict(clause) {
                                return Some(SolveResult::Unsat);
                            }
                            if let Some(budget) = self.conflict_budget {
                                if self.stats.conflicts > budget {
                                    return None;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: &Var, pos: bool) -> Lit {
        Lit::with_sign(*v, pos)
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert!(s.value(a));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        assert!(s.add_clause(vec![Lit::pos(a)]));
        // Adding the opposite unit is detected as unsat at solve time.
        assert!(s.add_clause(vec![Lit::neg(a)]));
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat));
    }

    #[test]
    fn chain_propagation() {
        // a, a→b, b→c, c→d : all true.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(vec![lit(&vars[0], true)]);
        for w in vars.windows(2) {
            s.add_clause(vec![lit(&w[0], false), lit(&w[1], true)]);
        }
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        for v in &vars {
            assert!(s.value(*v));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p_ij = pigeon i in hole j.
        let mut s = SatSolver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        // Each pigeon in some hole.
        for row in &p {
            s.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        // No two pigeons share a hole.
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat));
    }

    #[test]
    fn incremental_blocking_enumerates_all_models() {
        // 3 free variables: exactly 8 models.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        // Ensure the vars appear in at least one clause.
        s.add_clause(vec![Lit::pos(vars[0]), Lit::neg(vars[0])]);
        let mut count = 0;
        loop {
            match s.solve(&mut NoTheory) {
                Some(SolveResult::Sat) => {
                    count += 1;
                    assert!(count <= 8, "more models than the space allows");
                    let block: Vec<Lit> =
                        vars.iter().map(|&v| Lit::with_sign(v, !s.value(v))).collect();
                    s.add_clause(block);
                }
                Some(SolveResult::Unsat) => break,
                None => panic!("no budget set"),
            }
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn theory_hook_can_reject_and_refine() {
        // Theory: reject any model where a==true, forcing a=false.
        struct RejectA {
            a: Var,
        }
        impl TheoryHook for RejectA {
            fn final_check(&mut self, assignment: &dyn Fn(Var) -> bool) -> Result<(), TheoryLemma> {
                if assignment(self.a) {
                    Err(TheoryLemma::new(vec![Lit::neg(self.a)]))
                } else {
                    Ok(())
                }
            }
        }
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        let mut th = RejectA { a };
        assert_eq!(s.solve(&mut th), Some(SolveResult::Sat));
        assert!(!s.value(a));
        assert!(s.value(b));
    }

    #[test]
    fn random_3sat_consistency() {
        // Cross-check on small random 3-SAT instances against brute force.
        use ccmatic_num::SmallRng;
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = 8usize;
            let m = rng.gen_range_usize(10, 40);
            let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                .map(|_| (0..3).map(|_| (rng.gen_range_usize(0, n), rng.gen_bool(0.5))).collect())
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for mask in 0..(1u32 << n) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((mask >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &clauses {
                s.add_clause(cl.iter().map(|&(v, pos)| Lit::with_sign(vars[v], pos)).collect());
            }
            let res = s.solve(&mut NoTheory);
            assert_eq!(
                res == Some(SolveResult::Sat),
                brute_sat,
                "solver disagrees with brute force"
            );
            if res == Some(SolveResult::Sat) {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|&(v, pos)| s.value(vars[v]) == pos),
                        "model does not satisfy clause"
                    );
                }
            }
        }
    }

    /// 4 pigeons into 3 holes: unsat with a conflict-rich refutation, so
    /// plenty of epoch-0 learned clauses to exchange.
    fn pigeonhole_4_into_3(s: &mut SatSolver) {
        let mut p = [[Var(0); 3]; 4];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
    }

    #[test]
    fn diversified_configs_agree_with_brute_force() {
        // Every diversification profile must stay sound and complete; only
        // the trajectory may differ.
        use ccmatic_num::SmallRng;
        for worker in 0..4 {
            let config = SearchConfig::diversified(123, worker);
            let mut rng = SmallRng::seed_from_u64(17);
            for _ in 0..25 {
                let n = 8usize;
                let m = rng.gen_range_usize(10, 40);
                let clauses: Vec<Vec<(usize, bool)>> = (0..m)
                    .map(|_| {
                        (0..3).map(|_| (rng.gen_range_usize(0, n), rng.gen_bool(0.5))).collect()
                    })
                    .collect();
                let mut brute_sat = false;
                'outer: for mask in 0..(1u32 << n) {
                    for cl in &clauses {
                        if !cl.iter().any(|&(v, pos)| ((mask >> v) & 1 == 1) == pos) {
                            continue 'outer;
                        }
                    }
                    brute_sat = true;
                    break;
                }
                let mut s = SatSolver::new();
                s.set_search_config(config.clone());
                let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
                for cl in &clauses {
                    s.add_clause(cl.iter().map(|&(v, pos)| Lit::with_sign(vars[v], pos)).collect());
                }
                assert_eq!(
                    s.solve(&mut NoTheory) == Some(SolveResult::Sat),
                    brute_sat,
                    "worker {worker} profile disagrees with brute force"
                );
            }
        }
    }

    #[test]
    fn restart_schedules_produce_expected_limits() {
        let mut s = SatSolver::new();
        s.set_search_config(SearchConfig {
            restart: RestartSchedule::Luby { base: 100 },
            ..SearchConfig::default()
        });
        assert_eq!(s.restart_limit(0), 100);
        assert_eq!(s.restart_limit(2), 200);
        assert_eq!(s.restart_limit(6), 400);
        s.set_search_config(SearchConfig {
            restart: RestartSchedule::Geometric { base: 100, factor_percent: 150 },
            ..SearchConfig::default()
        });
        assert_eq!(s.restart_limit(0), 100);
        assert_eq!(s.restart_limit(1), 150);
        assert_eq!(s.restart_limit(2), 225);
        s.set_search_config(SearchConfig {
            restart: RestartSchedule::Fixed { interval: 42 },
            ..SearchConfig::default()
        });
        assert_eq!(s.restart_limit(0), 42);
        assert_eq!(s.restart_limit(9), 42);
    }

    #[test]
    fn fixed_seed_runs_are_bit_reproducible() {
        // Two solvers with the same randomized profile and seed must take
        // identical trajectories (same stats), and a different seed is
        // allowed to differ.
        let run = |seed: u64| {
            let mut s = SatSolver::new();
            s.set_search_config(SearchConfig {
                seed,
                random_decision_permille: 300,
                activity_noise: true,
                restart: RestartSchedule::Fixed { interval: 5 },
                phase_init: PhaseInit::Random,
            });
            pigeonhole_4_into_3(&mut s);
            assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat));
            (s.stats.decisions, s.stats.conflicts, s.stats.propagations)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn shared_clauses_transfer_between_identical_bases() {
        let mut a = SatSolver::new();
        a.set_sharing(true);
        pigeonhole_4_into_3(&mut a);
        assert_eq!(a.solve(&mut NoTheory), Some(SolveResult::Unsat));
        let exports = a.take_shared_exports();
        assert!(!exports.is_empty(), "refutation should learn shareable clauses");
        assert!(a.stats.shared_exported > 0);
        assert!(exports.iter().all(|c| c.lits.len() <= SHARE_MAX_LEN));

        let mut b = SatSolver::new();
        pigeonhole_4_into_3(&mut b);
        b.queue_shared_imports(exports);
        assert_eq!(b.solve(&mut NoTheory), Some(SolveResult::Unsat));
        assert!(b.stats.shared_imported > 0, "imports should be admitted");
        assert_eq!(b.stats.shared_rejected, 0);
    }

    #[test]
    fn imports_with_mismatched_base_are_rejected() {
        let mut a = SatSolver::new();
        a.set_sharing(true);
        pigeonhole_4_into_3(&mut a);
        assert_eq!(a.solve(&mut NoTheory), Some(SolveResult::Unsat));
        let exports = a.take_shared_exports();

        // B has one extra base variable: different vocabulary, reject all.
        let mut b = SatSolver::new();
        pigeonhole_4_into_3(&mut b);
        let extra = b.new_var();
        b.add_clause(vec![Lit::pos(extra), Lit::neg(extra)]);
        let n = exports.len() as u64;
        b.queue_shared_imports(exports);
        assert_eq!(b.solve(&mut NoTheory), Some(SolveResult::Unsat));
        assert_eq!(b.stats.shared_imported, 0);
        assert_eq!(b.stats.shared_rejected, n);
    }

    #[cfg(feature = "proofs")]
    #[test]
    fn imported_clauses_keep_certificates_checkable() {
        let mut a = SatSolver::new();
        a.set_sharing(true);
        pigeonhole_4_into_3(&mut a);
        assert_eq!(a.solve(&mut NoTheory), Some(SolveResult::Unsat));
        let exports = a.take_shared_exports();
        assert!(!exports.is_empty());

        let mut b = SatSolver::new();
        b.set_proof_sink(Box::new(ccmatic_proof::MemorySink::new()));
        pigeonhole_4_into_3(&mut b);
        b.queue_shared_imports(exports);
        assert_eq!(b.solve(&mut NoTheory), Some(SolveResult::Unsat));
        assert!(b.stats.shared_imported > 0, "RUP gate should admit sibling clauses");
        let cert = b.proof_snapshot().expect("proof snapshot");
        ccmatic_proof::check(&cert).expect("certificate with imported clauses must check");
    }

    #[cfg(feature = "proofs")]
    #[test]
    fn underivable_import_is_rejected_under_proofs() {
        // A clause over base vars that unit propagation cannot derive must
        // fail the RUP gate instead of entering the proof unchecked.
        let mut s = SatSolver::new();
        s.set_proof_sink(Box::new(ccmatic_proof::MemorySink::new()));
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        let bogus = SharedClause {
            lits: vec![Lit::pos(a)],
            lbd: 1,
            base_vars: s.base_var_count(),
            farkas: Vec::new(),
        };
        s.queue_shared_imports(vec![bogus]);
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert_eq!(s.stats.shared_imported, 0);
        assert_eq!(s.stats.shared_rejected, 1);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(SatSolver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn pop_discards_scope_clauses() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::pos(a)]);
        s.push();
        s.add_clause(vec![Lit::neg(a)]);
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat));
        s.pop();
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert!(s.value(a));
    }

    #[test]
    fn pop_discards_scope_variables() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(vec![Lit::pos(a)]);
        s.push();
        let b = s.new_var();
        s.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert!(s.value(b));
        s.pop();
        assert_eq!(s.num_vars(), 1);
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert!(s.value(a));
    }

    #[test]
    fn nested_scopes_unwind_independently() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        s.push();
        s.add_clause(vec![Lit::neg(a)]);
        s.push();
        s.add_clause(vec![Lit::neg(b)]);
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat));
        s.pop();
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        assert!(!s.value(a) && s.value(b));
        s.pop();
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
    }

    #[test]
    fn base_learned_units_survive_pop() {
        // A chain forcing a=true lives in the base scope; a scoped
        // contradiction must not poison the base after pop.
        let mut s = SatSolver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        s.add_clause(vec![Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(vec![Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat));
        for depth in 0..3 {
            s.push();
            s.add_clause(vec![Lit::neg(vars[5 - depth])]);
            assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Unsat), "depth {depth}");
            s.pop();
            assert_eq!(s.solve(&mut NoTheory), Some(SolveResult::Sat), "after pop {depth}");
            assert!(vars.iter().all(|&v| s.value(v)));
        }
    }

    #[test]
    fn pop_matches_fresh_solver_on_random_instances() {
        // Differential: base ∪ scoped clauses, pop, then base ∪ new scoped
        // clauses must answer like a fresh solver on the same set.
        use ccmatic_num::SmallRng;
        let mut rng = SmallRng::seed_from_u64(99);
        for round in 0..30 {
            let n = 6usize;
            let gen_clauses = |rng: &mut SmallRng, m: usize| -> Vec<Vec<(usize, bool)>> {
                (0..m)
                    .map(|_| {
                        (0..3).map(|_| (rng.gen_range_usize(0, n), rng.gen_bool(0.5))).collect()
                    })
                    .collect()
            };
            let base = gen_clauses(&mut rng, 8);
            let scope_a = gen_clauses(&mut rng, 6);
            let scope_b = gen_clauses(&mut rng, 6);

            let solve_fresh = |sets: &[&Vec<Vec<(usize, bool)>>]| {
                let mut s = SatSolver::new();
                let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
                for set in sets {
                    for cl in set.iter() {
                        s.add_clause(cl.iter().map(|&(v, p)| Lit::with_sign(vars[v], p)).collect());
                    }
                }
                s.solve(&mut NoTheory).unwrap()
            };

            let mut s = SatSolver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for cl in &base {
                s.add_clause(cl.iter().map(|&(v, p)| Lit::with_sign(vars[v], p)).collect());
            }
            s.push();
            for cl in &scope_a {
                s.add_clause(cl.iter().map(|&(v, p)| Lit::with_sign(vars[v], p)).collect());
            }
            assert_eq!(
                s.solve(&mut NoTheory).unwrap(),
                solve_fresh(&[&base, &scope_a]),
                "round {round}: scope A"
            );
            s.pop();
            s.push();
            for cl in &scope_b {
                s.add_clause(cl.iter().map(|&(v, p)| Lit::with_sign(vars[v], p)).collect());
            }
            assert_eq!(
                s.solve(&mut NoTheory).unwrap(),
                solve_fresh(&[&base, &scope_b]),
                "round {round}: scope B after pop"
            );
            s.pop();
            assert_eq!(s.solve(&mut NoTheory).unwrap(), solve_fresh(&[&base]), "round {round}");
        }
    }
}
