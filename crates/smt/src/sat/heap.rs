//! Indexed binary max-heap keyed by VSIDS activity.
//!
//! The classic MiniSat order heap: supports `insert`, `pop_max`, and
//! `update` (increase-key) in O(log n), with a position index so membership
//! checks are O(1).

/// Max-heap over `usize` element ids with `f64` priorities.
pub struct ActivityHeap {
    /// Heap array of element ids.
    heap: Vec<usize>,
    /// Position of each element in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
    /// Priority of each element.
    prio: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl Default for ActivityHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl ActivityHeap {
    /// Empty heap.
    pub fn new() -> Self {
        ActivityHeap { heap: Vec::new(), pos: Vec::new(), prio: Vec::new() }
    }

    fn ensure(&mut self, id: usize) {
        if id >= self.pos.len() {
            self.pos.resize(id + 1, ABSENT);
            self.prio.resize(id + 1, 0.0);
        }
    }

    /// True iff `id` is currently in the heap.
    pub fn contains(&self, id: usize) -> bool {
        id < self.pos.len() && self.pos[id] != ABSENT
    }

    /// Insert `id` with the given priority; no-op if already present (but
    /// the priority is still updated upward).
    pub fn insert(&mut self, id: usize, priority: f64) {
        self.ensure(id);
        if self.contains(id) {
            self.update(id, priority);
            return;
        }
        self.prio[id] = priority;
        self.pos[id] = self.heap.len();
        self.heap.push(id);
        self.sift_up(self.heap.len() - 1);
    }

    /// Raise the priority of `id` (ignored if the new priority is lower and
    /// the element is in the heap — VSIDS activities only grow between
    /// rescales).
    pub fn update(&mut self, id: usize, priority: f64) {
        self.ensure(id);
        self.prio[id] = priority;
        if self.contains(id) {
            self.sift_up(self.pos[id]);
            self.sift_down(self.pos[id]);
        }
    }

    /// Remove and return the element with the highest priority.
    pub fn pop_max(&mut self) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Rebuild all priorities (used after a global activity rescale).
    pub fn rebuild(&mut self, priorities: &[f64]) {
        for (id, &p) in priorities.iter().enumerate() {
            self.ensure(id);
            self.prio[id] = p;
        }
        let members = self.heap.clone();
        self.heap.clear();
        for &id in &members {
            self.pos[id] = ABSENT;
        }
        for id in members {
            self.pos[id] = self.heap.len();
            self.heap.push(id);
            self.sift_up(self.heap.len() - 1);
        }
    }

    /// Drop every element with id ≥ `bound` (used when popping an assertion
    /// scope discards the variables created inside it). Survivors keep
    /// their priorities; the heap property is restored bottom-up.
    pub fn truncate_ids(&mut self, bound: usize) {
        self.heap.retain(|&id| id < bound);
        for id in bound..self.pos.len() {
            self.pos[id] = ABSENT;
        }
        self.pos.truncate(bound);
        self.prio.truncate(bound);
        for i in 0..self.heap.len() {
            self.pos[self.heap[i]] = i;
        }
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Remove and return the element at heap position `i` (not element id),
    /// restoring the heap property. Used by the portfolio's random-decision
    /// perturbation: a uniformly random heap position is a cheap
    /// (activity-biased, but that is fine for diversification) way to pick a
    /// non-maximal variable without a full scan.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn remove_index(&mut self, i: usize) -> usize {
        assert!(i < self.heap.len(), "heap position {i} out of bounds");
        let id = self.heap[i];
        let last = self.heap.pop().unwrap();
        self.pos[id] = ABSENT;
        if i < self.heap.len() {
            self.heap[i] = last;
            self.pos[last] = i;
            self.sift_up(i);
            self.sift_down(self.pos[last]);
        }
        id
    }

    /// Number of elements currently in the heap.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.prio[self.heap[i]] <= self.prio[self.heap[parent]] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.prio[self.heap[l]] > self.prio[self.heap[best]] {
                best = l;
            }
            if r < self.heap.len() && self.prio[self.heap[r]] > self.prio[self.heap[best]] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i]] = i;
        self.pos[self.heap[j]] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = ActivityHeap::new();
        h.insert(0, 1.0);
        h.insert(1, 5.0);
        h.insert(2, 3.0);
        assert_eq!(h.pop_max(), Some(1));
        assert_eq!(h.pop_max(), Some(2));
        assert_eq!(h.pop_max(), Some(0));
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn update_raises() {
        let mut h = ActivityHeap::new();
        h.insert(0, 1.0);
        h.insert(1, 2.0);
        h.update(0, 10.0);
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn reinsert_after_pop() {
        let mut h = ActivityHeap::new();
        h.insert(0, 1.0);
        assert_eq!(h.pop_max(), Some(0));
        assert!(!h.contains(0));
        h.insert(0, 2.0);
        assert!(h.contains(0));
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn rebuild_preserves_membership() {
        let mut h = ActivityHeap::new();
        for i in 0..10 {
            h.insert(i, i as f64);
        }
        let _ = h.pop_max();
        let prios: Vec<f64> = (0..10).map(|i| 10.0 - i as f64).collect();
        h.rebuild(&prios);
        assert_eq!(h.len(), 9);
        // Element 9 was popped; the new max priority among members is 0 (prio 10)...
        // element 0 has priority 10.0 now.
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn truncate_ids_drops_high_ids_and_keeps_order() {
        let mut h = ActivityHeap::new();
        for i in 0..20 {
            h.insert(i, (i * 7 % 13) as f64);
        }
        h.truncate_ids(10);
        assert_eq!(h.len(), 10);
        assert!(!h.contains(15));
        let mut popped = Vec::new();
        while let Some(x) = h.pop_max() {
            popped.push(x);
        }
        let mut expect: Vec<usize> = (0..10).collect();
        expect.sort_by_key(|&a| std::cmp::Reverse(a * 7 % 13));
        assert_eq!(popped, expect);
    }

    #[test]
    fn random_heap_matches_sort() {
        use ccmatic_num::SmallRng;
        let mut rng = SmallRng::seed_from_u64(42);
        let mut h = ActivityHeap::new();
        let prios: Vec<f64> = (0..100).map(|_| rng.next_f64() * 100.0).collect();
        for (i, &p) in prios.iter().enumerate() {
            h.insert(i, p);
        }
        let mut popped = Vec::new();
        while let Some(x) = h.pop_max() {
            popped.push(x);
        }
        let mut expect: Vec<usize> = (0..100).collect();
        expect.sort_by(|&a, &b| prios[b].partial_cmp(&prios[a]).unwrap());
        assert_eq!(popped, expect);
    }
}
