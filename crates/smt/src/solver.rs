//! The lazy DPLL(T) combination: CDCL SAT core + simplex theory solver.

use crate::cnf::CnfBuilder;
use crate::interrupt::Interrupt;
use crate::linexpr::LinExpr;
use crate::lra::{SimVar, Simplex, TheoryConflict};
use crate::sat::{Lit, SatSolver, SolveResult, TheoryHook, TheoryLemma, Var};
use crate::term::{BoolVar, Context, RealVar, Term, TermData};
use ccmatic_num::{DeltaRat, Rat};
use std::collections::HashMap;

/// Result of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The configured conflict budget was exhausted.
    Unknown,
}

/// A satisfying assignment.
#[derive(Clone, Debug, Default)]
pub struct Model {
    reals: HashMap<RealVar, Rat>,
    bools: HashMap<BoolVar, bool>,
}

impl Model {
    /// Value of a real variable (variables absent from every asserted atom
    /// default to zero, which is always consistent).
    pub fn real(&self, v: RealVar) -> Rat {
        self.reals.get(&v).cloned().unwrap_or_else(Rat::zero)
    }

    /// Value of a Boolean term variable (unconstrained variables default to
    /// `false`).
    pub fn bool_var(&self, v: BoolVar) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Evaluate a linear expression under the model.
    pub fn eval(&self, e: &LinExpr) -> Rat {
        e.eval(|v| self.real(v))
    }

    /// Insert a real value (used by tooling that builds models by hand,
    /// e.g. counterexample replay in tests).
    pub fn set_real(&mut self, v: RealVar, value: Rat) {
        self.reals.insert(v, value);
    }

    /// Iterate over the assigned real variables.
    pub fn reals(&self) -> impl Iterator<Item = (RealVar, &Rat)> + '_ {
        self.reals.iter().map(|(v, r)| (*v, r))
    }

    /// Evaluate a term under the model with exact rational arithmetic.
    /// This shares no code with the solving path, so it doubles as an
    /// independent soundness audit of `Sat` verdicts.
    pub fn satisfies(&self, ctx: &Context, t: Term) -> bool {
        match ctx.data(t) {
            TermData::True => true,
            TermData::False => false,
            TermData::BoolVar(b) => self.bool_var(*b),
            TermData::Atom(a) => {
                let atom = ctx.atom(*a);
                let v = self.eval(&atom.expr);
                if atom.strict {
                    v < atom.bound
                } else {
                    v <= atom.bound
                }
            }
            TermData::Not(inner) => !self.satisfies(ctx, *inner),
            TermData::And(ts) => ts.iter().all(|&s| self.satisfies(ctx, s)),
            TermData::Or(ts) => ts.iter().any(|&s| self.satisfies(ctx, s)),
        }
    }
}

/// Aggregate statistics over the lifetime of a [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// `check` invocations.
    pub checks: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// Total conflicts (SAT + theory).
    pub conflicts: u64,
    /// Theory consistency checks on full Boolean models.
    pub theory_checks: u64,
    /// Theory conflicts (blocking clauses learned from simplex).
    pub theory_conflicts: u64,
    /// Simplex pivots.
    pub pivots: u64,
    /// Arithmetic fast-path promotions (fast → bignum fallbacks). This is a
    /// *process-wide* snapshot from `ccmatic_num::arith_snapshot()`, not a
    /// per-solver count: take deltas around a region of interest.
    pub promotions: u64,
    /// Clause-derivation steps in the proof log (0 when logging is off or
    /// the `proofs` feature is disabled).
    pub proof_clauses: u64,
    /// Bytes of the proof log's text rendering (0 when logging is off).
    pub proof_bytes: u64,
    /// Learned clauses exported to sibling portfolio workers.
    pub shared_exported: u64,
    /// Shared clauses admitted from sibling portfolio workers.
    pub shared_imported: u64,
}

/// An incremental SMT solver for QF-LRA.
///
/// Assertions accumulate; `check` may be called repeatedly, and further
/// assertions (e.g. CEGIS blocking constraints) may be added between calls.
pub struct Solver {
    sat: SatSolver,
    cnf: CnfBuilder,
    simplex: Simplex,
    real_to_sim: HashMap<RealVar, SimVar>,
    /// Parallel to `cnf.atom_bindings()`: the simplex variable bounded by
    /// each atom.
    atom_slacks: Vec<SimVar>,
    /// `atom_slacks` length at each open `push`.
    scope_marks: Vec<usize>,
    /// Every term passed to [`Solver::assert`], in order, for exact model
    /// auditing; truncated by `pop` in lockstep with the SAT scopes.
    asserted: Vec<Term>,
    /// `asserted` length at each open `push`.
    asserted_marks: Vec<usize>,
    model: Option<Model>,
    /// `check` invocations over the solver's lifetime.
    checks: u64,
    /// Optional conflict budget for `check` (None = unlimited).
    pub conflict_budget: Option<u64>,
    /// Optional deadline/cancellation for `check`; fires as
    /// [`SatResult::Unknown`], never a fake verdict.
    pub interrupt: Interrupt,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Empty solver.
    pub fn new() -> Self {
        Solver {
            sat: SatSolver::new(),
            cnf: CnfBuilder::new(),
            simplex: Simplex::new(),
            real_to_sim: HashMap::new(),
            atom_slacks: Vec::new(),
            scope_marks: Vec::new(),
            asserted: Vec::new(),
            asserted_marks: Vec::new(),
            model: None,
            checks: 0,
            conflict_budget: None,
            interrupt: Interrupt::none(),
        }
    }

    /// Assert a term.
    pub fn assert(&mut self, ctx: &Context, t: Term) {
        self.model = None;
        self.asserted.push(t);
        self.cnf.assert_term(ctx, &mut self.sat, t);
    }

    /// Enable DRAT + Farkas proof logging into an in-memory sink, so `Unsat`
    /// verdicts from [`Solver::check_certified`] carry a replayable
    /// certificate. Must be called before anything is asserted. Without the
    /// `proofs` feature this is a no-op and [`Solver::proofs_enabled`] stays
    /// `false`.
    pub fn enable_proofs(&mut self) {
        self.sat.set_proof_sink(Box::new(ccmatic_proof::MemorySink::new()));
    }

    /// Enable proof logging into a caller-supplied sink (e.g. a streaming
    /// [`ccmatic_proof::WriterSink`] for bounded memory). Must be called
    /// before anything is asserted.
    pub fn set_proof_sink(&mut self, sink: Box<dyn ccmatic_proof::ProofSink + Send>) {
        self.sat.set_proof_sink(sink);
    }

    /// Whether proof logging is active (always `false` without the `proofs`
    /// feature).
    pub fn proofs_enabled(&self) -> bool {
        self.sat.proofs_enabled()
    }

    /// Install SAT search-strategy knobs (restart schedule, randomized
    /// branching, phase policy). Portfolio workers call this before
    /// asserting anything so phase/noise policies cover every variable;
    /// soundness is unaffected either way.
    pub fn set_search_config(&mut self, config: crate::sat::SearchConfig) {
        self.sat.set_search_config(config);
    }

    /// Enable buffering of shareable learned clauses for
    /// [`Solver::take_shared_exports`].
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sat.set_sharing(enabled);
    }

    /// Drain base-scope learned clauses for broadcast to sibling portfolio
    /// workers (empty unless [`Solver::set_sharing`] is on).
    pub fn take_shared_exports(&mut self) -> Vec<crate::share::SharedClause> {
        self.sat.take_shared_exports()
    }

    /// Queue clauses exported by a sibling worker whose *base encoding is
    /// identical to this solver's* (same assertions before the first push,
    /// in the same order). They are admitted inside the next `check`, where
    /// each must match the base variable numbering and — with proof logging
    /// on — re-certify via its Farkas witness or an importer-side RUP test.
    pub fn queue_shared_imports(&mut self, clauses: Vec<crate::share::SharedClause>) {
        self.sat.queue_shared_imports(clauses);
    }

    /// Open an assertion scope across the whole stack (SAT core, CNF memo
    /// tables, simplex tableau). Assertions made from here on are retracted
    /// by the matching [`Solver::pop`]; anything asserted before survives,
    /// as do learned clauses that only depend on it.
    pub fn push(&mut self) {
        self.sat.push();
        self.cnf.push();
        self.simplex.push();
        self.scope_marks.push(self.atom_slacks.len());
        self.asserted_marks.push(self.asserted.len());
    }

    /// Retract every assertion made since the matching [`Solver::push`].
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let mark = self.scope_marks.pop().expect("pop without matching push");
        let amark = self.asserted_marks.pop().expect("pop without matching push");
        self.model = None;
        self.sat.pop();
        self.cnf.pop();
        self.simplex.pop();
        self.atom_slacks.truncate(mark);
        self.asserted.truncate(amark);
        // Real variables first seen inside the scope mapped to simplex vars
        // that no longer exist; forget them so a later assert re-allocates.
        let live = self.simplex.num_vars() as u32;
        self.real_to_sim.retain(|_, s| s.0 < live);
    }

    /// Number of open scopes.
    pub fn depth(&self) -> u32 {
        self.scope_marks.len() as u32
    }

    /// Register in the simplex any atoms that appeared since the last check.
    fn register_new_atoms(&mut self, ctx: &Context) {
        while self.atom_slacks.len() < self.cnf.atom_bindings().len() {
            let (sat_var, atom_id) = self.cnf.atom_bindings()[self.atom_slacks.len()];
            let data = ctx.atom(atom_id).clone();
            // Single-variable unit-coefficient atoms bound the variable
            // itself; anything else gets a shared slack per expression.
            let slack = if data.expr.num_vars() == 1 {
                let (v, c) = data.expr.iter().next().map(|(v, c)| (v, c.clone())).unwrap();
                debug_assert_eq!(c, Rat::one(), "canonical atoms have leading coefficient 1");
                self.sim_var(v)
            } else {
                let terms: Vec<(SimVar, Rat)> =
                    data.expr.iter().map(|(v, c)| (self.sim_var(v), c.clone())).collect();
                self.simplex.define_slack(&terms)
            };
            self.atom_slacks.push(slack);
            if self.sat.proofs_enabled() {
                // The certificate checker needs the arithmetic meaning of
                // each theory literal, in real-variable space.
                let expr: Vec<(u32, Rat)> =
                    data.expr.iter().map(|(v, c)| (v.0, c.clone())).collect();
                self.sat.log_atom_def(sat_var, &expr, &data.bound, data.strict);
            }
        }
    }

    fn sim_var(&mut self, v: RealVar) -> SimVar {
        if let Some(&s) = self.real_to_sim.get(&v) {
            return s;
        }
        let s = self.simplex.new_var();
        self.real_to_sim.insert(v, s);
        s
    }

    /// Decide satisfiability of the asserted formula.
    pub fn check(&mut self, ctx: &Context) -> SatResult {
        self.checks += 1;
        self.model = None;
        self.register_new_atoms(ctx);
        self.sat.conflict_budget = self.conflict_budget;
        self.sat.interrupt = self.interrupt.clone();

        struct Bridge<'a> {
            simplex: &'a mut Simplex,
            /// (sat var, slack var, bound, strict) per atom.
            atoms: Vec<(Var, SimVar, Rat, bool)>,
        }
        /// Re-tag a simplex conflict as a SAT clause: the tags already are
        /// literal codes, and the Farkas multipliers ride along so the proof
        /// log can record a checkable theory lemma.
        fn lemma(conflict: TheoryConflict) -> TheoryLemma {
            TheoryLemma {
                lits: conflict.tags.into_iter().map(Lit).collect(),
                farkas: conflict.farkas.into_iter().map(|(t, c)| (Lit(t), c)).collect(),
            }
        }
        impl TheoryHook for Bridge<'_> {
            fn final_check(&mut self, assignment: &dyn Fn(Var) -> bool) -> Result<(), TheoryLemma> {
                self.partial_check(&|v| Some(assignment(v)))
            }

            fn partial_check(
                &mut self,
                assignment: &dyn Fn(Var) -> Option<bool>,
            ) -> Result<(), TheoryLemma> {
                self.simplex.reset_bounds();
                for (sat_var, slack, bound, strict) in &self.atoms {
                    let Some(holds) = assignment(*sat_var) else {
                        continue;
                    };
                    // The conflict clause must falsify the asserted literal,
                    // so the tag is the *negation* of what is currently true.
                    let result = if holds {
                        // expr ≤ bound (or < bound).
                        let b = if *strict {
                            DeltaRat::strictly_below(bound.clone())
                        } else {
                            DeltaRat::from(bound.clone())
                        };
                        let tag = Lit::neg(*sat_var).0;
                        self.simplex.assert_upper(*slack, b, tag)
                    } else {
                        // ¬(expr ≤ bound) ⇒ expr > bound;
                        // ¬(expr < bound) ⇒ expr ≥ bound.
                        let b = if *strict {
                            DeltaRat::from(bound.clone())
                        } else {
                            DeltaRat::strictly_above(bound.clone())
                        };
                        let tag = Lit::pos(*sat_var).0;
                        self.simplex.assert_lower(*slack, b, tag)
                    };
                    if let Err(conflict) = result {
                        return Err(lemma(conflict));
                    }
                }
                match self.simplex.check() {
                    Ok(()) => Ok(()),
                    Err(conflict) => Err(lemma(conflict)),
                }
            }
        }

        let atoms: Vec<(Var, SimVar, Rat, bool)> = self
            .cnf
            .atom_bindings()
            .iter()
            .zip(&self.atom_slacks)
            .map(|(&(sat_var, atom_id), &slack)| {
                let data = ctx.atom(atom_id);
                (sat_var, slack, data.bound.clone(), data.strict)
            })
            .collect();
        let mut bridge = Bridge { simplex: &mut self.simplex, atoms };
        let result = self.sat.solve(&mut bridge);
        match result {
            Some(SolveResult::Sat) => {
                self.extract_model(ctx);
                debug_assert!(
                    self.model_satisfies_asserted(ctx),
                    "extracted model violates an asserted term"
                );
                SatResult::Sat
            }
            Some(SolveResult::Unsat) => SatResult::Unsat,
            None => SatResult::Unknown,
        }
    }

    /// Exact-rational audit: every asserted term is true under the current
    /// model. `false` if no model is available.
    pub fn model_satisfies_asserted(&self, ctx: &Context) -> bool {
        match &self.model {
            Some(m) => self.asserted.iter().all(|&t| m.satisfies(ctx, t)),
            None => false,
        }
    }

    /// [`Solver::check`], plus evidence: `Unsat` verdicts carry a snapshot
    /// of the proof log (when a snapshot-capable sink is attached — see
    /// [`Solver::enable_proofs`]) for independent replay by
    /// [`ccmatic_proof::check`], and `Sat` verdicts are audited by exact
    /// rational evaluation of every asserted term under the model.
    pub fn check_certified(&mut self, ctx: &Context) -> Certified {
        let result = self.check(ctx);
        match result {
            SatResult::Unsat => {
                Certified { result, certificate: self.sat.proof_snapshot(), model_ok: None }
            }
            SatResult::Sat => Certified {
                result,
                certificate: None,
                model_ok: Some(self.model_satisfies_asserted(ctx)),
            },
            SatResult::Unknown => Certified { result, certificate: None, model_ok: None },
        }
    }

    fn extract_model(&mut self, ctx: &Context) {
        let concrete = self.simplex.concrete_values();
        let mut model = Model::default();
        for (&rv, &sv) in &self.real_to_sim {
            model.reals.insert(rv, concrete[sv.0 as usize].clone());
        }
        // Boolean variables straight from the SAT assignment.
        let bindings: Vec<(BoolVar, Var)> = self.cnf.bool_bindings().collect();
        for (b, v) in bindings {
            model.bools.insert(b, self.sat.value(v));
        }
        let _ = ctx;
        self.model = Some(model);
    }

    /// The model from the last `Sat` check.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        #[cfg(feature = "proofs")]
        let (proof_clauses, proof_bytes) = match self.sat.proof_stats() {
            Some(p) => (p.clauses, p.bytes),
            None => (0, 0),
        };
        #[cfg(not(feature = "proofs"))]
        let (proof_clauses, proof_bytes) = (0, 0);
        SolverStats {
            checks: self.checks,
            decisions: self.sat.stats.decisions,
            conflicts: self.sat.stats.conflicts,
            theory_checks: self.sat.stats.theory_checks,
            theory_conflicts: self.sat.stats.theory_conflicts,
            pivots: self.simplex.pivots,
            promotions: ccmatic_num::arith_snapshot().promotions,
            proof_clauses,
            proof_bytes,
            shared_exported: self.sat.stats.shared_exported,
            shared_imported: self.sat.stats.shared_imported,
        }
    }
}

/// Verdict plus evidence, from [`Solver::check_certified`].
#[derive(Debug)]
pub struct Certified {
    /// The verdict, identical to what [`Solver::check`] returns.
    pub result: SatResult,
    /// On `Unsat` with a snapshot-capable proof sink: the refutation, ready
    /// for [`ccmatic_proof::check`].
    pub certificate: Option<ccmatic_proof::UnsatCertificate>,
    /// On `Sat`: whether every asserted term evaluated true under the model.
    pub model_ok: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    #[test]
    fn simple_sat_with_model() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let c1 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(4)));
        let c2 = ctx.ge(ctx.var(x), ctx.constant(int(3)));
        let c3 = ctx.ge(ctx.var(y), ctx.constant(int(1)));
        let f = ctx.and(vec![c1, c2, c3]);
        let mut s = Solver::new();
        s.assert(&ctx, f);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.real(x) >= int(3));
        assert!(m.real(y) >= int(1));
        assert!(&m.real(x) + &m.real(y) <= int(4));
    }

    #[test]
    fn simple_unsat() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c1 = ctx.lt(ctx.var(x), ctx.constant(int(0)));
        let c2 = ctx.gt(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, c1);
        s.assert(&ctx, c2);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn disjunction_forces_theory_backtrack() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        // (x <= 0 ∨ x >= 10) ∧ x >= 5  →  x >= 10 branch.
        let a = ctx.le(ctx.var(x), ctx.constant(int(0)));
        let b = ctx.ge(ctx.var(x), ctx.constant(int(10)));
        let d = ctx.or(vec![a, b]);
        let c = ctx.ge(ctx.var(x), ctx.constant(int(5)));
        let mut s = Solver::new();
        s.assert(&ctx, d);
        s.assert(&ctx, c);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(10));
    }

    #[test]
    fn strict_inequalities_get_interior_models() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c1 = ctx.gt(ctx.var(x), ctx.constant(int(0)));
        let c2 = ctx.lt(ctx.var(x), ctx.constant(rat(1, 1000)));
        let mut s = Solver::new();
        s.assert(&ctx, c1);
        s.assert(&ctx, c2);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v = s.model().unwrap().real(x);
        assert!(v > int(0) && v < rat(1, 1000), "model {v} not strictly inside");
    }

    #[test]
    fn incremental_blocking() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        // x = 1 ∨ x = 2, enumerate both then unsat.
        let e1 = ctx.eq(ctx.var(x), ctx.constant(int(1)));
        let e2 = ctx.eq(ctx.var(x), ctx.constant(int(2)));
        let f = ctx.or(vec![e1, e2]);
        let mut s = Solver::new();
        s.assert(&ctx, f);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v1 = s.model().unwrap().real(x);
        let block1 = ctx.ne(ctx.var(x), ctx.constant(v1.clone()));
        s.assert(&ctx, block1);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v2 = s.model().unwrap().real(x);
        assert_ne!(v1, v2);
        let block2 = ctx.ne(ctx.var(x), ctx.constant(v2));
        s.assert(&ctx, block2);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn equalities_chain() {
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..5).map(|i| ctx.real_var(format!("v{i}"))).collect();
        let mut s = Solver::new();
        // v0 = 1, v_{i+1} = v_i + 1  →  v4 = 5.
        let first = ctx.eq(ctx.var(vars[0]), ctx.constant(int(1)));
        s.assert(&ctx, first);
        for w in vars.windows(2) {
            let step = ctx.eq(ctx.var(w[1]), ctx.var(w[0]) + ctx.constant(int(1)));
            s.assert(&ctx, step);
        }
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert_eq!(s.model().unwrap().real(vars[4]), int(5));
    }

    #[test]
    fn bool_and_arith_mix() {
        let mut ctx = Context::new();
        let p = ctx.bool_var("p");
        let x = ctx.real_var("x");
        // p → x ≥ 3; ¬p → x ≤ −3; x ≥ 0 forces p.
        let ge3 = ctx.ge(ctx.var(x), ctx.constant(int(3)));
        let le_m3 = ctx.le(ctx.var(x), ctx.constant(int(-3)));
        let imp1 = ctx.implies(p, ge3);
        let np = ctx.not(p);
        let imp2 = ctx.implies(np, le_m3);
        let pos = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, imp1);
        s.assert(&ctx, imp2);
        s.assert(&ctx, pos);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.real(x) >= int(3));
        if let crate::term::TermData::BoolVar(bv) = ctx.data(p).clone() {
            assert!(m.bool_var(bv));
        } else {
            panic!("expected bool var");
        }
    }

    #[test]
    fn unconstrained_check_is_sat() {
        let ctx = Context::new();
        let mut s = Solver::new();
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().is_some());
    }

    #[test]
    fn stats_count_checks() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c = ctx.ge(ctx.var(x), ctx.constant(int(1)));
        let mut s = Solver::new();
        assert_eq!(s.stats().checks, 0);
        s.assert(&ctx, c);
        s.check(&ctx);
        s.check(&ctx);
        s.check(&ctx);
        assert_eq!(s.stats().checks, 3);
    }

    #[test]
    fn scoped_assertions_are_retracted() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.ge(ctx.var(x), ctx.constant(int(2)));
        let mut s = Solver::new();
        s.assert(&ctx, base);
        assert_eq!(s.check(&ctx), SatResult::Sat);

        s.push();
        let cap = ctx.lt(ctx.var(x), ctx.constant(int(1)));
        s.assert(&ctx, cap);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
        s.pop();

        // Base constraint alone is satisfiable again.
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(2));

        // A different scoped constraint gets a consistent view.
        s.push();
        let cap5 = ctx.le(ctx.var(x), ctx.constant(int(5)));
        s.assert(&ctx, cap5);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v = s.model().unwrap().real(x);
        assert!(v >= int(2) && v <= int(5));
        s.pop();
    }

    #[test]
    fn scoped_fresh_variables_are_forgotten() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, base);
        assert_eq!(s.check(&ctx), SatResult::Sat);

        // y is first seen inside a scope; its simplex var dies with the pop.
        let y = ctx.real_var("y");
        s.push();
        let link = ctx.eq(ctx.var(y), ctx.var(x) + ctx.constant(int(7)));
        let ybig = ctx.ge(ctx.var(y), ctx.constant(int(100)));
        s.assert(&ctx, link);
        s.assert(&ctx, ybig);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(93));
        s.pop();

        // After the pop, y is unconstrained again and re-usable.
        s.push();
        let ysmall = ctx.le(ctx.var(y), ctx.constant(int(-50)));
        s.assert(&ctx, ysmall);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(y) <= int(-50));
        s.pop();
        assert_eq!(s.check(&ctx), SatResult::Sat);
    }

    #[test]
    fn nested_scopes_compose() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let mut s = Solver::new();
        let base = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        s.assert(&ctx, base);
        s.push();
        let le10 = ctx.le(ctx.var(x), ctx.constant(int(10)));
        s.assert(&ctx, le10);
        s.push();
        let ge20 = ctx.ge(ctx.var(x), ctx.constant(int(20)));
        s.assert(&ctx, ge20);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) <= int(10));
        s.pop();
        assert_eq!(s.depth(), 0);
        let ge20b = ctx.ge(ctx.var(x), ctx.constant(int(20)));
        s.assert(&ctx, ge20b);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(20));
    }
}
