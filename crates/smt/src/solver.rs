//! The lazy DPLL(T) combination: CDCL SAT core + simplex theory solver.

use crate::cnf::CnfBuilder;
use crate::interrupt::Interrupt;
use crate::linexpr::LinExpr;
use crate::lra::{RowExtreme, SimVar, Simplex, TheoryConflict};
use crate::sat::{Lit, SatSolver, SolveResult, TheoryHook, TheoryLemma, Var};
use crate::term::{BoolVar, Context, RealVar, Term, TermData};
use ccmatic_num::{DeltaRat, Rat};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-wide trail-sync counters across every [`Solver`] instance
/// (including worker-thread verifiers), in the mold of
/// `ccmatic_smt::pivots_total` / `ccmatic_num::arith_snapshot`: benches
/// bracket a region of interest with snapshots and report the deltas.
static THEORY_PROPS_TOTAL: AtomicU64 = AtomicU64::new(0);
static BOUNDS_ASSERTED_TOTAL: AtomicU64 = AtomicU64::new(0);
static BOUNDS_REUSED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Process-wide snapshot of the trail-synchronized theory-solving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoryCounters {
    /// Literals implied into SAT trails by theory propagation.
    pub theory_props: u64,
    /// Atom bounds asserted into simplex solvers at theory fixpoints.
    pub bounds_asserted: u64,
    /// Atom bounds retained across theory fixpoints instead of re-asserted.
    pub bounds_reused: u64,
}

/// Read the process-wide trail-sync counters.
pub fn theory_counters() -> TheoryCounters {
    TheoryCounters {
        theory_props: THEORY_PROPS_TOTAL.load(AtomicOrdering::Relaxed),
        bounds_asserted: BOUNDS_ASSERTED_TOTAL.load(AtomicOrdering::Relaxed),
        bounds_reused: BOUNDS_REUSED_TOTAL.load(AtomicOrdering::Relaxed),
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// The configured conflict budget was exhausted.
    Unknown,
}

/// A satisfying assignment.
#[derive(Clone, Debug, Default)]
pub struct Model {
    reals: HashMap<RealVar, Rat>,
    bools: HashMap<BoolVar, bool>,
}

impl Model {
    /// Value of a real variable (variables absent from every asserted atom
    /// default to zero, which is always consistent).
    pub fn real(&self, v: RealVar) -> Rat {
        self.reals.get(&v).cloned().unwrap_or_else(Rat::zero)
    }

    /// Value of a Boolean term variable (unconstrained variables default to
    /// `false`).
    pub fn bool_var(&self, v: BoolVar) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Evaluate a linear expression under the model.
    pub fn eval(&self, e: &LinExpr) -> Rat {
        e.eval(|v| self.real(v))
    }

    /// Insert a real value (used by tooling that builds models by hand,
    /// e.g. counterexample replay in tests).
    pub fn set_real(&mut self, v: RealVar, value: Rat) {
        self.reals.insert(v, value);
    }

    /// Iterate over the assigned real variables.
    pub fn reals(&self) -> impl Iterator<Item = (RealVar, &Rat)> + '_ {
        self.reals.iter().map(|(v, r)| (*v, r))
    }

    /// Evaluate a term under the model with exact rational arithmetic.
    /// This shares no code with the solving path, so it doubles as an
    /// independent soundness audit of `Sat` verdicts.
    pub fn satisfies(&self, ctx: &Context, t: Term) -> bool {
        match ctx.data(t) {
            TermData::True => true,
            TermData::False => false,
            TermData::BoolVar(b) => self.bool_var(*b),
            TermData::Atom(a) => {
                let atom = ctx.atom(*a);
                let v = self.eval(&atom.expr);
                if atom.strict {
                    v < atom.bound
                } else {
                    v <= atom.bound
                }
            }
            TermData::Not(inner) => !self.satisfies(ctx, *inner),
            TermData::And(ts) => ts.iter().all(|&s| self.satisfies(ctx, s)),
            TermData::Or(ts) => ts.iter().any(|&s| self.satisfies(ctx, s)),
        }
    }
}

/// Aggregate statistics over the lifetime of a [`Solver`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// `check` invocations.
    pub checks: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// Total conflicts (SAT + theory).
    pub conflicts: u64,
    /// Theory consistency checks on full Boolean models.
    pub theory_checks: u64,
    /// Theory conflicts (blocking clauses learned from simplex).
    pub theory_conflicts: u64,
    /// Simplex pivots.
    pub pivots: u64,
    /// Arithmetic fast-path promotions (fast → bignum fallbacks). This is a
    /// *process-wide* snapshot from `ccmatic_num::arith_snapshot()`, not a
    /// per-solver count: take deltas around a region of interest.
    pub promotions: u64,
    /// Clause-derivation steps in the proof log (0 when logging is off or
    /// the `proofs` feature is disabled).
    pub proof_clauses: u64,
    /// Bytes of the proof log's text rendering (0 when logging is off).
    pub proof_bytes: u64,
    /// Learned clauses exported to sibling portfolio workers.
    pub shared_exported: u64,
    /// Shared clauses admitted from sibling portfolio workers.
    pub shared_imported: u64,
    /// Literals implied into the SAT trail by theory propagation.
    pub theory_props: u64,
    /// Atom bounds asserted into the simplex at theory fixpoints.
    pub bounds_asserted: u64,
    /// Atom bounds retained across theory fixpoints instead of re-asserted
    /// (only nonzero on the trail-synchronized path).
    pub bounds_reused: u64,
}

/// An incremental SMT solver for QF-LRA.
///
/// Assertions accumulate; `check` may be called repeatedly, and further
/// assertions (e.g. CEGIS blocking constraints) may be added between calls.
pub struct Solver {
    sat: SatSolver,
    cnf: CnfBuilder,
    simplex: Simplex,
    real_to_sim: HashMap<RealVar, SimVar>,
    /// Parallel to `cnf.atom_bindings()`: the simplex variable bounded by
    /// each atom.
    atom_slacks: Vec<SimVar>,
    /// `atom_slacks` length at each open `push`.
    scope_marks: Vec<usize>,
    /// Memo: multi-variable atom expression (in simplex-variable terms) →
    /// its slack, so atoms differing only in the bound share one slack.
    /// Sharing is what lets a bound on one atom propagate the truth value
    /// of its siblings. Stale entries are retired on `pop`.
    expr_slacks: HashMap<Vec<(SimVar, Rat)>, SimVar>,
    /// Every term passed to [`Solver::assert`], in order, for exact model
    /// auditing; truncated by `pop` in lockstep with the SAT scopes.
    asserted: Vec<Term>,
    /// `asserted` length at each open `push`.
    asserted_marks: Vec<usize>,
    model: Option<Model>,
    /// `check` invocations over the solver's lifetime.
    checks: u64,
    /// Trail-synchronized incremental theory solving (default on); when
    /// off, every theory fixpoint resets and re-asserts all atom bounds.
    theory_sync: bool,
    /// Theory propagation on top of trail sync (default on; no effect
    /// when `theory_sync` is off).
    theory_propagation: bool,
    /// Lifetime atom bounds asserted at theory fixpoints.
    bounds_asserted: u64,
    /// Lifetime atom bounds retained across theory fixpoints.
    bounds_reused: u64,
    /// Optional conflict budget for `check` (None = unlimited).
    pub conflict_budget: Option<u64>,
    /// Optional deadline/cancellation for `check`; fires as
    /// [`SatResult::Unknown`], never a fake verdict.
    pub interrupt: Interrupt,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Empty solver.
    pub fn new() -> Self {
        Solver {
            sat: SatSolver::new(),
            cnf: CnfBuilder::new(),
            simplex: Simplex::new(),
            real_to_sim: HashMap::new(),
            atom_slacks: Vec::new(),
            scope_marks: Vec::new(),
            expr_slacks: HashMap::new(),
            asserted: Vec::new(),
            asserted_marks: Vec::new(),
            model: None,
            checks: 0,
            theory_sync: true,
            theory_propagation: true,
            bounds_asserted: 0,
            bounds_reused: 0,
            conflict_budget: None,
            interrupt: Interrupt::none(),
        }
    }

    /// Enable or disable trail-synchronized incremental theory solving
    /// (default on). Off restores the historical reset-and-reassert bridge —
    /// the reference behavior the differential suite pins against.
    pub fn set_theory_sync(&mut self, enabled: bool) {
        self.theory_sync = enabled;
    }

    /// Enable or disable theory propagation (default on). Only meaningful
    /// while trail sync is on.
    pub fn set_theory_propagation(&mut self, enabled: bool) {
        self.theory_propagation = enabled;
    }

    /// Assert a term.
    pub fn assert(&mut self, ctx: &Context, t: Term) {
        self.model = None;
        self.asserted.push(t);
        self.cnf.assert_term(ctx, &mut self.sat, t);
    }

    /// Enable DRAT + Farkas proof logging into an in-memory sink, so `Unsat`
    /// verdicts from [`Solver::check_certified`] carry a replayable
    /// certificate. Must be called before anything is asserted. Without the
    /// `proofs` feature this is a no-op and [`Solver::proofs_enabled`] stays
    /// `false`.
    pub fn enable_proofs(&mut self) {
        self.sat.set_proof_sink(Box::new(ccmatic_proof::MemorySink::new()));
    }

    /// Enable proof logging into a caller-supplied sink (e.g. a streaming
    /// [`ccmatic_proof::WriterSink`] for bounded memory). Must be called
    /// before anything is asserted.
    pub fn set_proof_sink(&mut self, sink: Box<dyn ccmatic_proof::ProofSink + Send>) {
        self.sat.set_proof_sink(sink);
    }

    /// Whether proof logging is active (always `false` without the `proofs`
    /// feature).
    pub fn proofs_enabled(&self) -> bool {
        self.sat.proofs_enabled()
    }

    /// Install SAT search-strategy knobs (restart schedule, randomized
    /// branching, phase policy). Portfolio workers call this before
    /// asserting anything so phase/noise policies cover every variable;
    /// soundness is unaffected either way.
    pub fn set_search_config(&mut self, config: crate::sat::SearchConfig) {
        self.sat.set_search_config(config);
    }

    /// Enable buffering of shareable learned clauses for
    /// [`Solver::take_shared_exports`].
    pub fn set_sharing(&mut self, enabled: bool) {
        self.sat.set_sharing(enabled);
    }

    /// Drain base-scope learned clauses for broadcast to sibling portfolio
    /// workers (empty unless [`Solver::set_sharing`] is on).
    pub fn take_shared_exports(&mut self) -> Vec<crate::share::SharedClause> {
        self.sat.take_shared_exports()
    }

    /// Queue clauses exported by a sibling worker whose *base encoding is
    /// identical to this solver's* (same assertions before the first push,
    /// in the same order). They are admitted inside the next `check`, where
    /// each must match the base variable numbering and — with proof logging
    /// on — re-certify via its Farkas witness or an importer-side RUP test.
    pub fn queue_shared_imports(&mut self, clauses: Vec<crate::share::SharedClause>) {
        self.sat.queue_shared_imports(clauses);
    }

    /// Open an assertion scope across the whole stack (SAT core, CNF memo
    /// tables, simplex tableau). Assertions made from here on are retracted
    /// by the matching [`Solver::pop`]; anything asserted before survives,
    /// as do learned clauses that only depend on it.
    pub fn push(&mut self) {
        self.sat.push();
        self.cnf.push();
        self.simplex.push();
        self.scope_marks.push(self.atom_slacks.len());
        self.asserted_marks.push(self.asserted.len());
    }

    /// Retract every assertion made since the matching [`Solver::push`].
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let mark = self.scope_marks.pop().expect("pop without matching push");
        let amark = self.asserted_marks.pop().expect("pop without matching push");
        self.model = None;
        self.sat.pop();
        self.cnf.pop();
        self.simplex.pop();
        self.atom_slacks.truncate(mark);
        self.asserted.truncate(amark);
        // Real variables first seen inside the scope mapped to simplex vars
        // that no longer exist; forget them so a later assert re-allocates.
        let live = self.simplex.num_vars() as u32;
        self.real_to_sim.retain(|_, s| s.0 < live);
        // Same for memoized slacks: a surviving slack only references
        // variables older than itself, so `slack < live` is exact.
        self.expr_slacks.retain(|_, s| s.0 < live);
    }

    /// Number of open scopes.
    pub fn depth(&self) -> u32 {
        self.scope_marks.len() as u32
    }

    /// Register in the simplex any atoms that appeared since the last check.
    fn register_new_atoms(&mut self, ctx: &Context) {
        while self.atom_slacks.len() < self.cnf.atom_bindings().len() {
            let (sat_var, atom_id) = self.cnf.atom_bindings()[self.atom_slacks.len()];
            let data = ctx.atom(atom_id).clone();
            // Single-variable unit-coefficient atoms bound the variable
            // itself; anything else gets a shared slack per expression
            // (memoized so atoms differing only in the bound — e.g. the
            // probes of a WCE binary search — land on one slack, letting a
            // bound asserted for one atom fix the truth value of another).
            let slack = if data.expr.num_vars() == 1 {
                let (v, c) = data.expr.iter().next().map(|(v, c)| (v, c.clone())).unwrap();
                debug_assert_eq!(c, Rat::one(), "canonical atoms have leading coefficient 1");
                self.sim_var(v)
            } else {
                let terms: Vec<(SimVar, Rat)> =
                    data.expr.iter().map(|(v, c)| (self.sim_var(v), c.clone())).collect();
                match self.expr_slacks.get(&terms) {
                    Some(&s) => s,
                    None => {
                        let s = self.simplex.define_slack(&terms);
                        self.expr_slacks.insert(terms, s);
                        s
                    }
                }
            };
            self.atom_slacks.push(slack);
            if self.sat.proofs_enabled() {
                // The certificate checker needs the arithmetic meaning of
                // each theory literal, in real-variable space.
                let expr: Vec<(u32, Rat)> =
                    data.expr.iter().map(|(v, c)| (v.0, c.clone())).collect();
                self.sat.log_atom_def(sat_var, &expr, &data.bound, data.strict);
            }
        }
    }

    fn sim_var(&mut self, v: RealVar) -> SimVar {
        if let Some(&s) = self.real_to_sim.get(&v) {
            return s;
        }
        let s = self.simplex.new_var();
        self.real_to_sim.insert(v, s);
        s
    }

    /// Decide satisfiability of the asserted formula.
    pub fn check(&mut self, ctx: &Context) -> SatResult {
        self.checks += 1;
        self.model = None;
        self.register_new_atoms(ctx);
        self.sat.conflict_budget = self.conflict_budget;
        self.sat.interrupt = self.interrupt.clone();

        struct Bridge<'a> {
            simplex: &'a mut Simplex,
            /// (sat var, slack var, bound, strict) per atom.
            atoms: Vec<(Var, SimVar, Rat, bool)>,
            /// Trail-synchronized incremental mode (Dutertre–de Moura).
            sync: bool,
            /// Theory propagation on top of sync.
            propagate: bool,
            /// SAT variable → atom index (sync mode only).
            var_to_atom: HashMap<u32, usize>,
            /// Slack variable → indices of the atoms bounding it.
            slack_atoms: HashMap<u32, Vec<usize>>,
            /// Sorted slack ids; the propagation scan walks this instead of
            /// the map so lemma emission order is deterministic.
            slack_order: Vec<u32>,
            /// One entry per processed trail position: the simplex undo-log
            /// mark taken *before* that entry was handled (so positions stay
            /// trail-aligned even when an assert conflicts) and the number
            /// of atom entries in the trail prefix up to and including it.
            synced: Vec<(usize, u64)>,
            /// Scratch for `Simplex::drain_touched`.
            touched: Vec<SimVar>,
            /// Lifetime counters, merged into the solver after the solve.
            bounds_asserted: u64,
            bounds_reused: u64,
        }
        /// Re-tag a simplex conflict as a SAT clause: the tags already are
        /// literal codes, and the Farkas multipliers ride along so the proof
        /// log can record a checkable theory lemma.
        fn lemma(conflict: TheoryConflict) -> TheoryLemma {
            TheoryLemma {
                lits: conflict.tags.into_iter().map(Lit).collect(),
                farkas: conflict.farkas.into_iter().map(|(t, c)| (Lit(t), c)).collect(),
            }
        }
        impl Bridge<'_> {
            /// Assert atom `ai`'s bound for polarity `holds`. The conflict
            /// clause must falsify the asserted literal, so the tag is the
            /// *negation* of what is currently true.
            fn assert_atom(&mut self, ai: usize, holds: bool) -> Result<(), TheoryConflict> {
                let (sat_var, slack, bound, strict) = &self.atoms[ai];
                if holds {
                    // expr ≤ bound (or < bound).
                    let b = if *strict {
                        DeltaRat::strictly_below(bound.clone())
                    } else {
                        DeltaRat::from(bound.clone())
                    };
                    let tag = Lit::neg(*sat_var).0;
                    self.simplex.assert_upper(*slack, b, tag)
                } else {
                    // ¬(expr ≤ bound) ⇒ expr > bound;
                    // ¬(expr < bound) ⇒ expr ≥ bound.
                    let b = if *strict {
                        DeltaRat::from(bound.clone())
                    } else {
                        DeltaRat::strictly_above(bound.clone())
                    };
                    let tag = Lit::pos(*sat_var).0;
                    self.simplex.assert_lower(*slack, b, tag)
                }
            }

            /// The upper bound on an atom's slack equivalent to the atom
            /// being true: `expr ≤ b` (`<` when strict).
            fn atom_true_bound(&self, ai: usize) -> DeltaRat {
                let (_, _, bound, strict) = &self.atoms[ai];
                if *strict {
                    DeltaRat::strictly_below(bound.clone())
                } else {
                    DeltaRat::from(bound.clone())
                }
            }

            /// Theory propagation: after a feasible check, scan the atoms
            /// whose slacks the latest bound tightenings can decide and emit
            /// implied literals with Farkas explanations. Best-effort — a
            /// missed implication costs a decision, never soundness.
            fn scan_propagations(
                &mut self,
                assignment: &dyn Fn(Var) -> Option<bool>,
                implied: &mut Vec<TheoryLemma>,
            ) {
                let mut touched = std::mem::take(&mut self.touched);
                self.simplex.drain_touched(&mut touched);
                if touched.is_empty() {
                    self.touched = touched;
                    return;
                }
                let mut emitted: Vec<u32> = Vec::new();
                // Direct propagation: atoms sharing a touched slack compare
                // their bound against the slack's tightened interval.
                for &tv in &touched {
                    let Some(atom_idxs) = self.slack_atoms.get(&tv.0) else {
                        continue;
                    };
                    for &ai in atom_idxs {
                        let (sat_var, slack, _, _) = self.atoms[ai];
                        if assignment(sat_var).is_some() || emitted.contains(&sat_var.0) {
                            continue;
                        }
                        let tb = self.atom_true_bound(ai);
                        if let Some((u, tag)) = self.simplex.upper_bound(slack) {
                            // expr ≤ u ≤ b ⇒ the atom must be true.
                            if *u <= tb {
                                emitted.push(sat_var.0);
                                implied.push(TheoryLemma {
                                    lits: vec![Lit::pos(sat_var), Lit(tag)],
                                    farkas: vec![
                                        (Lit::pos(sat_var), Rat::one()),
                                        (Lit(tag), Rat::one()),
                                    ],
                                });
                                continue;
                            }
                        }
                        if let Some((l, tag)) = self.simplex.lower_bound(slack) {
                            // expr ≥ l > b ⇒ the atom must be false.
                            if tb < *l {
                                emitted.push(sat_var.0);
                                implied.push(TheoryLemma {
                                    lits: vec![Lit::neg(sat_var), Lit(tag)],
                                    farkas: vec![
                                        (Lit::neg(sat_var), Rat::one()),
                                        (Lit(tag), Rat::one()),
                                    ],
                                });
                            }
                        }
                    }
                }
                // Row propagation: a basic atom slack whose row mentions a
                // touched variable may have its reachable interval pinned on
                // one side of the atom bound. Guarded by a work cap so the
                // scan can never dominate the fixpoint it accelerates.
                const ROW_SCAN_CAP: usize = 16_384;
                if self.slack_atoms.len().saturating_mul(touched.len()) <= ROW_SCAN_CAP {
                    for &sv in &self.slack_order {
                        let atom_idxs = &self.slack_atoms[&sv];
                        let slack = SimVar(sv);
                        if !self.simplex.is_basic_var(slack)
                            || !touched.iter().any(|&t| self.simplex.row_mentions(slack, t))
                        {
                            continue;
                        }
                        let mut hi: Option<Option<RowExtreme>> = None;
                        let mut lo: Option<Option<RowExtreme>> = None;
                        for &ai in atom_idxs {
                            let (sat_var, _, _, _) = self.atoms[ai];
                            if assignment(sat_var).is_some() || emitted.contains(&sat_var.0) {
                                continue;
                            }
                            let tb = self.atom_true_bound(ai);
                            // Reachable maximum ≤ b ⇒ atom true.
                            let hi =
                                hi.get_or_insert_with(|| self.simplex.row_extreme(slack, true));
                            if let Some((reach, lams)) = hi {
                                if !lams.is_empty() && *reach <= tb {
                                    emitted.push(sat_var.0);
                                    let mut lits = vec![Lit::pos(sat_var)];
                                    let mut farkas = vec![(Lit::pos(sat_var), Rat::one())];
                                    for (tag, lam) in lams.iter() {
                                        lits.push(Lit(*tag));
                                        farkas.push((Lit(*tag), lam.clone()));
                                    }
                                    implied.push(TheoryLemma { lits, farkas });
                                    continue;
                                }
                            }
                            // Reachable minimum > b ⇒ atom false.
                            let lo =
                                lo.get_or_insert_with(|| self.simplex.row_extreme(slack, false));
                            if let Some((reach, lams)) = lo {
                                if !lams.is_empty() && tb < *reach {
                                    emitted.push(sat_var.0);
                                    let mut lits = vec![Lit::neg(sat_var)];
                                    let mut farkas = vec![(Lit::neg(sat_var), Rat::one())];
                                    for (tag, lam) in lams.iter() {
                                        lits.push(Lit(*tag));
                                        farkas.push((Lit(*tag), lam.clone()));
                                    }
                                    implied.push(TheoryLemma { lits, farkas });
                                }
                            }
                        }
                    }
                }
                self.touched = touched;
            }
        }
        impl TheoryHook for Bridge<'_> {
            fn final_check(&mut self, assignment: &dyn Fn(Var) -> bool) -> Result<(), TheoryLemma> {
                if self.sync {
                    // The solve loop guarantees a `trail_check` ran at this
                    // same fixpoint (no trail change in between), so every
                    // asserted atom bound is already in the simplex; just
                    // confirm feasibility.
                    return self.simplex.check().map_err(lemma);
                }
                self.partial_check(&|v| Some(assignment(v)))
            }

            fn partial_check(
                &mut self,
                assignment: &dyn Fn(Var) -> Option<bool>,
            ) -> Result<(), TheoryLemma> {
                self.simplex.reset_bounds();
                for ai in 0..self.atoms.len() {
                    let Some(holds) = assignment(self.atoms[ai].0) else {
                        continue;
                    };
                    self.bounds_asserted += 1;
                    if let Err(conflict) = self.assert_atom(ai, holds) {
                        return Err(lemma(conflict));
                    }
                }
                match self.simplex.check() {
                    Ok(()) => Ok(()),
                    Err(conflict) => Err(lemma(conflict)),
                }
            }

            fn supports_trail_sync(&self) -> bool {
                self.sync
            }

            fn trail_check(
                &mut self,
                trail: &[Lit],
                low: usize,
                assignment: &dyn Fn(Var) -> Option<bool>,
                implied: &mut Vec<TheoryLemma>,
            ) -> Result<(), TheoryLemma> {
                // Retract bounds for trail entries beyond the stable prefix.
                // Our own cursor is authoritative: an earlier conflict exit
                // may have left it short of the watermark the SAT core
                // reported, in which case the missing entries are simply
                // (re-)asserted below.
                let keep = self.synced.len().min(low);
                if let Some(&(mark, _)) = self.synced.get(keep) {
                    self.simplex.undo_bounds_to(mark);
                }
                self.synced.truncate(keep);
                self.bounds_reused += self.synced.last().map_or(0, |&(_, n)| n);
                // Assert the suffix added since the last fixpoint.
                for &l in &trail[keep..] {
                    let mark = self.simplex.bound_mark();
                    let mut atoms = self.synced.last().map_or(0, |&(_, n)| n);
                    let ai = self.var_to_atom.get(&l.var().0).copied();
                    if ai.is_some() {
                        atoms += 1;
                        self.bounds_asserted += 1;
                    }
                    self.synced.push((mark, atoms));
                    if let Some(ai) = ai {
                        if let Err(conflict) = self.assert_atom(ai, !l.is_neg()) {
                            return Err(lemma(conflict));
                        }
                    }
                }
                if let Err(conflict) = self.simplex.check() {
                    return Err(lemma(conflict));
                }
                if self.propagate {
                    self.scan_propagations(assignment, implied);
                }
                Ok(())
            }
        }

        let atoms: Vec<(Var, SimVar, Rat, bool)> = self
            .cnf
            .atom_bindings()
            .iter()
            .zip(&self.atom_slacks)
            .map(|(&(sat_var, atom_id), &slack)| {
                let data = ctx.atom(atom_id);
                (sat_var, slack, data.bound.clone(), data.strict)
            })
            .collect();
        let mut var_to_atom = HashMap::new();
        let mut slack_atoms: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut slack_order: Vec<u32> = Vec::new();
        if self.theory_sync {
            // Bounds from a previous check's trail must not leak into this
            // one: the trail persists across solves, but the bridge's sync
            // cursor starts empty, so start the simplex empty too.
            self.simplex.reset_bounds();
            for (ai, (sat_var, slack, _, _)) in atoms.iter().enumerate() {
                var_to_atom.insert(sat_var.0, ai);
                slack_atoms.entry(slack.0).or_default().push(ai);
            }
            slack_order.extend(slack_atoms.keys().copied());
            slack_order.sort_unstable();
        }
        let stats_before = self.sat.stats;
        let mut bridge = Bridge {
            simplex: &mut self.simplex,
            atoms,
            sync: self.theory_sync,
            propagate: self.theory_propagation,
            var_to_atom,
            slack_atoms,
            slack_order,
            synced: Vec::new(),
            touched: Vec::new(),
            bounds_asserted: 0,
            bounds_reused: 0,
        };
        let result = self.sat.solve(&mut bridge);
        let (ba, br) = (bridge.bounds_asserted, bridge.bounds_reused);
        self.bounds_asserted += ba;
        self.bounds_reused += br;
        BOUNDS_ASSERTED_TOTAL.fetch_add(ba, AtomicOrdering::Relaxed);
        BOUNDS_REUSED_TOTAL.fetch_add(br, AtomicOrdering::Relaxed);
        THEORY_PROPS_TOTAL.fetch_add(
            self.sat.stats.theory_props - stats_before.theory_props,
            AtomicOrdering::Relaxed,
        );
        match result {
            Some(SolveResult::Sat) => {
                self.extract_model(ctx);
                debug_assert!(
                    self.model_satisfies_asserted(ctx),
                    "extracted model violates an asserted term"
                );
                SatResult::Sat
            }
            Some(SolveResult::Unsat) => SatResult::Unsat,
            None => SatResult::Unknown,
        }
    }

    /// Exact-rational audit: every asserted term is true under the current
    /// model. `false` if no model is available.
    pub fn model_satisfies_asserted(&self, ctx: &Context) -> bool {
        match &self.model {
            Some(m) => self.asserted.iter().all(|&t| m.satisfies(ctx, t)),
            None => false,
        }
    }

    /// [`Solver::check`], plus evidence: `Unsat` verdicts carry a snapshot
    /// of the proof log (when a snapshot-capable sink is attached — see
    /// [`Solver::enable_proofs`]) for independent replay by
    /// [`ccmatic_proof::check`], and `Sat` verdicts are audited by exact
    /// rational evaluation of every asserted term under the model.
    pub fn check_certified(&mut self, ctx: &Context) -> Certified {
        let result = self.check(ctx);
        match result {
            SatResult::Unsat => {
                Certified { result, certificate: self.sat.proof_snapshot(), model_ok: None }
            }
            SatResult::Sat => Certified {
                result,
                certificate: None,
                model_ok: Some(self.model_satisfies_asserted(ctx)),
            },
            SatResult::Unknown => Certified { result, certificate: None, model_ok: None },
        }
    }

    fn extract_model(&mut self, ctx: &Context) {
        let concrete = self.simplex.concrete_values();
        let mut model = Model::default();
        for (&rv, &sv) in &self.real_to_sim {
            model.reals.insert(rv, concrete[sv.0 as usize].clone());
        }
        // Boolean variables straight from the SAT assignment.
        let bindings: Vec<(BoolVar, Var)> = self.cnf.bool_bindings().collect();
        for (b, v) in bindings {
            model.bools.insert(b, self.sat.value(v));
        }
        let _ = ctx;
        self.model = Some(model);
    }

    /// The model from the last `Sat` check.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        #[cfg(feature = "proofs")]
        let (proof_clauses, proof_bytes) = match self.sat.proof_stats() {
            Some(p) => (p.clauses, p.bytes),
            None => (0, 0),
        };
        #[cfg(not(feature = "proofs"))]
        let (proof_clauses, proof_bytes) = (0, 0);
        SolverStats {
            checks: self.checks,
            decisions: self.sat.stats.decisions,
            conflicts: self.sat.stats.conflicts,
            theory_checks: self.sat.stats.theory_checks,
            theory_conflicts: self.sat.stats.theory_conflicts,
            pivots: self.simplex.pivots,
            promotions: ccmatic_num::arith_snapshot().promotions,
            proof_clauses,
            proof_bytes,
            shared_exported: self.sat.stats.shared_exported,
            shared_imported: self.sat.stats.shared_imported,
            theory_props: self.sat.stats.theory_props,
            bounds_asserted: self.bounds_asserted,
            bounds_reused: self.bounds_reused,
        }
    }
}

/// Verdict plus evidence, from [`Solver::check_certified`].
#[derive(Debug)]
pub struct Certified {
    /// The verdict, identical to what [`Solver::check`] returns.
    pub result: SatResult,
    /// On `Unsat` with a snapshot-capable proof sink: the refutation, ready
    /// for [`ccmatic_proof::check`].
    pub certificate: Option<ccmatic_proof::UnsatCertificate>,
    /// On `Sat`: whether every asserted term evaluated true under the model.
    pub model_ok: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    #[test]
    fn simple_sat_with_model() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let c1 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(4)));
        let c2 = ctx.ge(ctx.var(x), ctx.constant(int(3)));
        let c3 = ctx.ge(ctx.var(y), ctx.constant(int(1)));
        let f = ctx.and(vec![c1, c2, c3]);
        let mut s = Solver::new();
        s.assert(&ctx, f);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.real(x) >= int(3));
        assert!(m.real(y) >= int(1));
        assert!(&m.real(x) + &m.real(y) <= int(4));
    }

    #[test]
    fn simple_unsat() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c1 = ctx.lt(ctx.var(x), ctx.constant(int(0)));
        let c2 = ctx.gt(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, c1);
        s.assert(&ctx, c2);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn disjunction_forces_theory_backtrack() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        // (x <= 0 ∨ x >= 10) ∧ x >= 5  →  x >= 10 branch.
        let a = ctx.le(ctx.var(x), ctx.constant(int(0)));
        let b = ctx.ge(ctx.var(x), ctx.constant(int(10)));
        let d = ctx.or(vec![a, b]);
        let c = ctx.ge(ctx.var(x), ctx.constant(int(5)));
        let mut s = Solver::new();
        s.assert(&ctx, d);
        s.assert(&ctx, c);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(10));
    }

    #[test]
    fn strict_inequalities_get_interior_models() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c1 = ctx.gt(ctx.var(x), ctx.constant(int(0)));
        let c2 = ctx.lt(ctx.var(x), ctx.constant(rat(1, 1000)));
        let mut s = Solver::new();
        s.assert(&ctx, c1);
        s.assert(&ctx, c2);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v = s.model().unwrap().real(x);
        assert!(v > int(0) && v < rat(1, 1000), "model {v} not strictly inside");
    }

    #[test]
    fn incremental_blocking() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        // x = 1 ∨ x = 2, enumerate both then unsat.
        let e1 = ctx.eq(ctx.var(x), ctx.constant(int(1)));
        let e2 = ctx.eq(ctx.var(x), ctx.constant(int(2)));
        let f = ctx.or(vec![e1, e2]);
        let mut s = Solver::new();
        s.assert(&ctx, f);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v1 = s.model().unwrap().real(x);
        let block1 = ctx.ne(ctx.var(x), ctx.constant(v1.clone()));
        s.assert(&ctx, block1);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v2 = s.model().unwrap().real(x);
        assert_ne!(v1, v2);
        let block2 = ctx.ne(ctx.var(x), ctx.constant(v2));
        s.assert(&ctx, block2);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn equalities_chain() {
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..5).map(|i| ctx.real_var(format!("v{i}"))).collect();
        let mut s = Solver::new();
        // v0 = 1, v_{i+1} = v_i + 1  →  v4 = 5.
        let first = ctx.eq(ctx.var(vars[0]), ctx.constant(int(1)));
        s.assert(&ctx, first);
        for w in vars.windows(2) {
            let step = ctx.eq(ctx.var(w[1]), ctx.var(w[0]) + ctx.constant(int(1)));
            s.assert(&ctx, step);
        }
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert_eq!(s.model().unwrap().real(vars[4]), int(5));
    }

    #[test]
    fn bool_and_arith_mix() {
        let mut ctx = Context::new();
        let p = ctx.bool_var("p");
        let x = ctx.real_var("x");
        // p → x ≥ 3; ¬p → x ≤ −3; x ≥ 0 forces p.
        let ge3 = ctx.ge(ctx.var(x), ctx.constant(int(3)));
        let le_m3 = ctx.le(ctx.var(x), ctx.constant(int(-3)));
        let imp1 = ctx.implies(p, ge3);
        let np = ctx.not(p);
        let imp2 = ctx.implies(np, le_m3);
        let pos = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, imp1);
        s.assert(&ctx, imp2);
        s.assert(&ctx, pos);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.real(x) >= int(3));
        if let crate::term::TermData::BoolVar(bv) = ctx.data(p).clone() {
            assert!(m.bool_var(bv));
        } else {
            panic!("expected bool var");
        }
    }

    #[test]
    fn unconstrained_check_is_sat() {
        let ctx = Context::new();
        let mut s = Solver::new();
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().is_some());
    }

    #[test]
    fn stats_count_checks() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let c = ctx.ge(ctx.var(x), ctx.constant(int(1)));
        let mut s = Solver::new();
        assert_eq!(s.stats().checks, 0);
        s.assert(&ctx, c);
        s.check(&ctx);
        s.check(&ctx);
        s.check(&ctx);
        assert_eq!(s.stats().checks, 3);
    }

    #[test]
    fn scoped_assertions_are_retracted() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.ge(ctx.var(x), ctx.constant(int(2)));
        let mut s = Solver::new();
        s.assert(&ctx, base);
        assert_eq!(s.check(&ctx), SatResult::Sat);

        s.push();
        let cap = ctx.lt(ctx.var(x), ctx.constant(int(1)));
        s.assert(&ctx, cap);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
        s.pop();

        // Base constraint alone is satisfiable again.
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(2));

        // A different scoped constraint gets a consistent view.
        s.push();
        let cap5 = ctx.le(ctx.var(x), ctx.constant(int(5)));
        s.assert(&ctx, cap5);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let v = s.model().unwrap().real(x);
        assert!(v >= int(2) && v <= int(5));
        s.pop();
    }

    #[test]
    fn scoped_fresh_variables_are_forgotten() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let base = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        let mut s = Solver::new();
        s.assert(&ctx, base);
        assert_eq!(s.check(&ctx), SatResult::Sat);

        // y is first seen inside a scope; its simplex var dies with the pop.
        let y = ctx.real_var("y");
        s.push();
        let link = ctx.eq(ctx.var(y), ctx.var(x) + ctx.constant(int(7)));
        let ybig = ctx.ge(ctx.var(y), ctx.constant(int(100)));
        s.assert(&ctx, link);
        s.assert(&ctx, ybig);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(93));
        s.pop();

        // After the pop, y is unconstrained again and re-usable.
        s.push();
        let ysmall = ctx.le(ctx.var(y), ctx.constant(int(-50)));
        s.assert(&ctx, ysmall);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(y) <= int(-50));
        s.pop();
        assert_eq!(s.check(&ctx), SatResult::Sat);
    }

    #[test]
    fn nested_scopes_compose() {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let mut s = Solver::new();
        let base = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        s.assert(&ctx, base);
        s.push();
        let le10 = ctx.le(ctx.var(x), ctx.constant(int(10)));
        s.assert(&ctx, le10);
        s.push();
        let ge20 = ctx.ge(ctx.var(x), ctx.constant(int(20)));
        s.assert(&ctx, ge20);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
        s.pop();
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) <= int(10));
        s.pop();
        assert_eq!(s.depth(), 0);
        let ge20b = ctx.ge(ctx.var(x), ctx.constant(int(20)));
        s.assert(&ctx, ge20b);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        assert!(s.model().unwrap().real(x) >= int(20));
    }
}
