//! Bounded, deterministic clause exchange between portfolio workers.
//!
//! Diversified solvers attacking the same base formula learn different
//! clauses; sharing the short, low-LBD ones lets each worker prune parts of
//! the search space a sibling already refuted. Soundness rests on two
//! contracts enforced by the SAT core (see `SatSolver::queue_shared_imports`):
//!
//! * only **epoch-0** clauses are exported — consequences of the base-scope
//!   assertions alone, never of a worker's private push/pop scopes — and the
//!   importer re-tags them epoch 0, so scope retention stays correct;
//! * every export records the exporter's base variable count, and the
//!   importer rejects clauses whose numbering does not match its own base
//!   (workers share clauses only when they built *identical* base
//!   encodings, so equal counts mean equal meanings).
//!
//! With proof logging on, imports additionally pass a certificate gate:
//! theory lemmas re-enter the importer's proof with their Farkas witness,
//! and plain learned clauses must pass an importer-side RUP test (they may
//! validly fail it — the importer might lack the exporter's premises — in
//! which case the clause is dropped, never trusted).
//!
//! [`ClauseExchange`] itself is a small mutex-guarded log with per-worker
//! read cursors. Workers publish at most once per exchange round and the
//! portfolio engine orders rounds with barriers, so every worker observes
//! the same clauses in the same order on every run with the same seed —
//! the exchange is deterministic by construction, not by luck.

use crate::sat::Lit;
use ccmatic_num::Rat;
use std::sync::Mutex;

/// A learned clause in transit between workers.
#[derive(Clone, Debug, PartialEq)]
pub struct SharedClause {
    /// The clause, sorted by literal code (canonical form).
    pub lits: Vec<Lit>,
    /// Literal-block distance at learning time (1 for units).
    pub lbd: u32,
    /// The exporter's base-scope variable count; importers with a different
    /// base reject the clause.
    pub base_vars: u32,
    /// Farkas witness when the clause is a theory lemma; empty for clauses
    /// learned by resolution.
    pub farkas: Vec<(Lit, Rat)>,
}

/// One worker's publication for one exchange round.
struct Entry {
    round: u64,
    source: usize,
    clauses: Vec<SharedClause>,
}

struct Log {
    entries: Vec<Entry>,
    /// Per-worker read position into `entries`.
    cursors: Vec<usize>,
}

/// Multi-producer clause log with per-worker cursors.
///
/// The portfolio engine guarantees that all publications for round `r`
/// happen before any worker collects with `before_round > r`, so a plain
/// cursor walk suffices; entries within one round are sorted by worker
/// index before delivery to erase arrival-order nondeterminism.
pub struct ClauseExchange {
    log: Mutex<Log>,
    /// Soft cap on clauses retained per worker publication.
    per_publish_cap: usize,
}

impl ClauseExchange {
    /// An exchange for `workers` participants.
    pub fn new(workers: usize) -> Self {
        ClauseExchange {
            log: Mutex::new(Log { entries: Vec::new(), cursors: vec![0; workers] }),
            per_publish_cap: 256,
        }
    }

    /// Publish `clauses` as `worker`'s contribution for `round`. Call at
    /// most once per worker per round; oversized batches are truncated.
    pub fn publish(&self, worker: usize, round: u64, mut clauses: Vec<SharedClause>) {
        clauses.truncate(self.per_publish_cap);
        if clauses.is_empty() {
            return;
        }
        let mut log = self.log.lock().unwrap();
        debug_assert!(log.entries.last().is_none_or(|e| e.round <= round));
        log.entries.push(Entry { round, source: worker, clauses });
    }

    /// Collect every clause published by *other* workers in rounds strictly
    /// before `before_round` that `worker` has not seen yet, in
    /// (round, worker) order.
    pub fn collect(&self, worker: usize, before_round: u64) -> Vec<SharedClause> {
        let mut log = self.log.lock().unwrap();
        let mut picked: Vec<(u64, usize, usize)> = Vec::new();
        let mut cursor = log.cursors[worker];
        while cursor < log.entries.len() && log.entries[cursor].round < before_round {
            if log.entries[cursor].source != worker {
                picked.push((log.entries[cursor].round, log.entries[cursor].source, cursor));
            }
            cursor += 1;
        }
        log.cursors[worker] = cursor;
        picked.sort_unstable_by_key(|&(round, source, _)| (round, source));
        picked.into_iter().flat_map(|(_, _, idx)| log.entries[idx].clauses.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(code: u32) -> SharedClause {
        SharedClause { lits: vec![Lit(code)], lbd: 1, base_vars: 64, farkas: Vec::new() }
    }

    #[test]
    fn delivers_others_clauses_once_in_order() {
        let ex = ClauseExchange::new(3);
        ex.publish(1, 1, vec![clause(2)]);
        ex.publish(0, 1, vec![clause(4)]);
        // Round-1 publications are invisible until the round-2 barrier.
        assert!(ex.collect(2, 1).is_empty());
        let got = ex.collect(2, 2);
        assert_eq!(got, vec![clause(4), clause(2)], "sorted by worker index");
        assert!(ex.collect(2, 2).is_empty(), "cursor advanced");
        // Worker 0 never sees its own publication.
        assert_eq!(ex.collect(0, 2), vec![clause(2)]);
    }

    #[test]
    fn empty_publications_are_dropped() {
        let ex = ClauseExchange::new(2);
        ex.publish(0, 1, Vec::new());
        assert!(ex.collect(1, 5).is_empty());
    }
}
