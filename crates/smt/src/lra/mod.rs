//! General-simplex decision procedure for conjunctions of linear bounds.
//!
//! This is the theory solver of the lazy SMT combination, implementing the
//! algorithm of de Moura & Bjørner, *A fast linear-arithmetic solver for
//! DPLL(T)* (CAV 2006):
//!
//! * every asserted atom is a bound on a single variable (problem variable
//!   or *slack* variable defined as a linear combination of others),
//! * strict bounds are represented exactly using [`DeltaRat`]
//!   delta-rationals,
//! * a tableau of basic-variable rows is pivoted (Bland's rule, guaranteeing
//!   termination) until either all bounds hold or an infeasible row yields a
//!   Farkas-style conflict: the set of bound *tags* (SAT literals) that
//!   cannot hold together.
//!
//! The tableau persists across `reset_bounds` calls, so repeated theory
//! checks (one per candidate Boolean model) only pay for bound assertion
//! and re-pivoting, not structure building.
//!
//! Tableau rows are flat sorted `Vec<(SimVar, Rat)>` sparse vectors rather
//! than `BTreeMap`s: rows are read far more often than they are restructured,
//! and the hot substitution step ([`Row::add_scaled`]) is a linear merge of
//! two sorted lists through a reusable scratch buffer, so the pivot loop
//! performs no per-entry node allocation and no pointer chasing.

use ccmatic_num::{DeltaRat, Rat};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-wide pivot count across every [`Simplex`] instance (including
/// worker-thread verifiers); complements the per-instance
/// [`Simplex::pivots`] the same way `ccmatic_num::arith_snapshot` works for
/// arithmetic ops.
static PIVOTS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide pivot counter.
pub fn pivots_total() -> u64 {
    PIVOTS_TOTAL.load(AtomicOrdering::Relaxed)
}

/// A simplex variable (problem variable or slack).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SimVar(pub u32);

/// A sparse tableau row: `(variable, coefficient)` entries sorted by
/// variable, with no zero coefficients stored.
///
/// The row's meaning carries a positive *scale* factor: a basic variable
/// `v` with this row satisfies `v = scale · Σ coeff·nonbasic`. Pivoting
/// folds the `1/a_bj` division into the scale instead of multiplying it
/// through every entry, and [`Row::normalize`] divides out the rational
/// content whenever entries leave the i64 fast path — so big-limb
/// arithmetic is confined to one scalar per row rather than smeared
/// across every coefficient (*effective* coefficient = `scale · entry`;
/// `scale > 0`, so entry signs still drive pivot selection).
#[derive(Clone, Debug)]
struct Row {
    entries: Vec<(SimVar, Rat)>,
    scale: Rat,
}

impl Default for Row {
    fn default() -> Self {
        Row { entries: Vec::new(), scale: Rat::one() }
    }
}

impl Row {
    /// Coefficient of `v`, if present.
    fn get(&self, v: SimVar) -> Option<&Rat> {
        self.entries.binary_search_by_key(&v, |e| e.0).ok().map(|i| &self.entries[i].1)
    }

    /// Remove and return the coefficient of `v`.
    fn remove(&mut self, v: SimVar) -> Option<Rat> {
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Add `c` to the coefficient of `v`, dropping the entry if it cancels.
    fn add_term(&mut self, v: SimVar, c: &Rat) {
        if c.is_zero() {
            return;
        }
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => {
                self.entries[i].1 += c;
                if self.entries[i].1.is_zero() {
                    self.entries.remove(i);
                }
            }
            Err(i) => self.entries.insert(i, (v, c.clone())),
        }
    }

    /// Iterate entries in variable order.
    fn iter(&self) -> impl Iterator<Item = (SimVar, &Rat)> {
        self.entries.iter().map(|(v, c)| (*v, c))
    }

    /// Effective coefficient of `v` (scale folded in), if present.
    fn effective(&self, v: SimVar) -> Option<Rat> {
        self.get(v).map(|c| &self.scale * c)
    }

    /// `self.entries += k·other.entries` as a linear merge of the two
    /// sorted entry lists — scales are *not* consulted; the caller folds
    /// both rows' scales into `k`. The merged result is built in
    /// `scratch`, which is then swapped in; the buffers alternate across
    /// calls so neither is reallocated once warm.
    fn add_scaled(&mut self, other: &Row, k: &Rat, scratch: &mut Vec<(SimVar, Rat)>) {
        scratch.clear();
        scratch.reserve(self.entries.len() + other.entries.len());
        let mut a = self.entries.drain(..).peekable();
        for (bv, bc) in &other.entries {
            loop {
                match a.peek() {
                    Some((av, _)) if av < bv => {
                        scratch.push(a.next().expect("peeked entry exists"));
                    }
                    Some((av, _)) if av == bv => {
                        let (v, mut c) = a.next().expect("peeked entry exists");
                        c += &(k * bc);
                        if !c.is_zero() {
                            scratch.push((v, c));
                        }
                        break;
                    }
                    _ => {
                        let c = k * bc;
                        if !c.is_zero() {
                            scratch.push((*bv, c));
                        }
                        break;
                    }
                }
            }
        }
        scratch.extend(a);
        std::mem::swap(&mut self.entries, scratch);
    }

    /// Big-op confinement: when any entry has left the i64 fast path,
    /// divide every entry by the row's rational content (gcd of numerators
    /// over lcm of denominators — the canonical factor making the entries
    /// a primitive integer vector) and fold it into the scale. Entries
    /// that merely share a huge accumulated pivot factor drop back to
    /// small integers; the factor lives on in the single `scale` scalar.
    fn normalize(&mut self) {
        if self.entries.iter().all(|(_, c)| c.is_small()) {
            return;
        }
        let mut gn = ccmatic_num::BigInt::zero();
        let mut ld = ccmatic_num::BigInt::one();
        for (_, c) in &self.entries {
            gn = gn.gcd(c.numer());
            ld = ld.lcm(c.denom());
        }
        let content = Rat::new(gn, ld);
        if content == Rat::one() {
            return;
        }
        let inv = content.recip();
        for (_, c) in self.entries.iter_mut() {
            *c *= &inv;
        }
        self.scale *= &content;
    }
}

/// Opaque tag identifying the asserted bound that produced a conflict; the
/// SMT layer uses SAT literal codes.
pub type Tag = u32;

/// Result of [`Simplex::row_extreme`]: the reachable extreme value of a
/// basic variable's row plus the `(tag, |scale·coeff|)` Farkas premises of
/// each limiting bound.
pub type RowExtreme = (DeltaRat, Vec<(Tag, Rat)>);

/// An inconsistent set of asserted bounds, identified by their tags.
#[derive(Clone, Debug)]
pub struct TheoryConflict {
    /// Tags of every bound participating in the infeasibility proof,
    /// sorted and deduplicated.
    pub tags: Vec<Tag>,
    /// Farkas multiplier per tag: orienting each tagged bound as a `≤`
    /// inequality, scaling by its (positive) multiplier and summing cancels
    /// every variable and leaves `0 ≤ c` with `c < 0`. Multipliers for a
    /// tag appearing more than once are combined.
    pub farkas: Vec<(Tag, Rat)>,
}

impl TheoryConflict {
    /// Build a conflict from its Farkas combination, deriving the tag set.
    fn from_farkas(farkas: Vec<(Tag, Rat)>) -> Self {
        let mut tags: Vec<Tag> = farkas.iter().map(|(t, _)| *t).collect();
        tags.sort_unstable();
        tags.dedup();
        TheoryConflict { tags, farkas }
    }

    /// Add `lam` to `tag`'s multiplier, combining duplicates.
    fn add_farkas(farkas: &mut Vec<(Tag, Rat)>, tag: Tag, lam: Rat) {
        match farkas.iter_mut().find(|e| e.0 == tag) {
            Some(e) => e.1 += &lam,
            None => farkas.push((tag, lam)),
        }
    }
}

#[derive(Clone)]
struct BoundVal {
    value: DeltaRat,
    tag: Tag,
}

/// Snapshot of the tableau structure taken at a `push` (bounds are not
/// saved: the SMT bridge re-asserts them from scratch on every check).
struct SimplexFrame {
    rows: Vec<Option<Row>>,
    value: Vec<DeltaRat>,
}

/// The simplex solver state.
pub struct Simplex {
    /// `rows[v] = Some(row)` iff `v` is basic; the row holds nonbasic vars
    /// and coefficients so that `v = Σ coeff·nonbasic`.
    rows: Vec<Option<Row>>,
    lower: Vec<Option<BoundVal>>,
    upper: Vec<Option<BoundVal>>,
    value: Vec<DeltaRat>,
    /// Open assertion scopes.
    frames: Vec<SimplexFrame>,
    /// Statistics: total pivots performed.
    pub pivots: u64,
    /// Reusable merge buffer for [`Row::add_scaled`].
    scratch: Vec<(SimVar, Rat)>,
    /// Undo log for incremental bound retraction: every *actual* tightening
    /// (the no-op weaker-bound early returns record nothing) pushes the
    /// overwritten slot as `(var, is_upper, previous)`. [`Simplex::bound_mark`]
    /// / [`Simplex::undo_bounds_to`] give the SMT bridge trail-synchronized
    /// rollback without a full [`Simplex::reset_bounds`].
    bound_undo: Vec<(u32, bool, Option<BoundVal>)>,
    /// Basic variables that may violate one of their bounds — a superset of
    /// the actually-violating set, maintained at every bound tightening and
    /// value update so [`Simplex::check`] scans `O(dirty)` rows per call
    /// instead of the whole tableau. Stale entries are dropped lazily.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    /// Variables whose bounds tightened since the last
    /// [`Simplex::drain_touched`] — the bridge's theory-propagation scan
    /// targets only these.
    touched: Vec<u32>,
    touched_flag: Vec<bool>,
}

impl Default for Simplex {
    fn default() -> Self {
        Self::new()
    }
}

impl Simplex {
    /// Empty solver.
    pub fn new() -> Self {
        Simplex {
            rows: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            value: Vec::new(),
            frames: Vec::new(),
            pivots: 0,
            scratch: Vec::new(),
            bound_undo: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
            touched: Vec::new(),
            touched_flag: Vec::new(),
        }
    }

    /// Open a scope: snapshot the tableau so slack definitions and pivots
    /// made from here on can be rolled back by [`Simplex::pop`]. (Pivoting
    /// rewrites base-variable rows in place, so a snapshot — not a length
    /// mark — is required; the clone is tiny next to the pivoting work a
    /// scope performs.)
    pub fn push(&mut self) {
        self.frames.push(SimplexFrame { rows: self.rows.clone(), value: self.value.clone() });
    }

    /// Close the innermost scope: restore the tableau to its push-time
    /// shape and drop every bound (the SMT bridge re-asserts bounds from
    /// the live atom set on each check).
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        self.rows = frame.rows;
        self.value = frame.value;
        // Clear bookkeeping lists before truncating their flag vectors: the
        // lists may hold indices of scope-local variables being dropped.
        self.reset_bounds();
        let n = self.rows.len();
        self.lower.truncate(n);
        self.upper.truncate(n);
        self.dirty_flag.truncate(n);
        self.touched_flag.truncate(n);
    }

    /// Allocate a fresh (nonbasic, unbounded) variable with value 0.
    pub fn new_var(&mut self) -> SimVar {
        let v = SimVar(self.rows.len() as u32);
        self.rows.push(None);
        self.lower.push(None);
        self.upper.push(None);
        self.value.push(DeltaRat::zero());
        self.dirty_flag.push(false);
        self.touched_flag.push(false);
        v
    }

    /// Number of variables (problem + slack).
    pub fn num_vars(&self) -> usize {
        self.rows.len()
    }

    fn is_basic(&self, v: SimVar) -> bool {
        self.rows[v.0 as usize].is_some()
    }

    /// Define a new *slack* variable equal to `Σ coeff·var` over existing
    /// variables. Basic variables in the definition are substituted by
    /// their rows so the new row only references nonbasic variables.
    pub fn define_slack(&mut self, expr: &[(SimVar, Rat)]) -> SimVar {
        let mut row = Row::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (v, c) in expr {
            if c.is_zero() {
                continue;
            }
            if let Some(sub) = &self.rows[v.0 as usize] {
                // Fold the substituted row's scale into the merge factor:
                // c·v = c·(scale·Σ entry·x) = (c·scale)·Σ entry·x.
                row.add_scaled(sub, &(c * &sub.scale), &mut scratch);
            } else {
                row.add_term(*v, c);
            }
        }
        row.normalize();
        self.scratch = scratch;
        let s = self.new_var();
        // Initial value = row evaluated at current assignment.
        let mut val = DeltaRat::zero();
        for (v, c) in row.iter() {
            val = &val + &self.value[v.0 as usize].scale(c);
        }
        val = val.scale(&row.scale);
        self.value[s.0 as usize] = val;
        self.rows[s.0 as usize] = Some(row);
        s
    }

    /// Drop all asserted bounds (tableau and values are kept). Also clears
    /// the incremental bookkeeping: the undo log, the dirty set, and the
    /// touched set all describe bounds, which no longer exist.
    pub fn reset_bounds(&mut self) {
        for b in self.lower.iter_mut() {
            *b = None;
        }
        for b in self.upper.iter_mut() {
            *b = None;
        }
        self.bound_undo.clear();
        for &i in &self.dirty {
            self.dirty_flag[i as usize] = false;
        }
        self.dirty.clear();
        for &i in &self.touched {
            self.touched_flag[i as usize] = false;
        }
        self.touched.clear();
    }

    /// Position in the bound-undo log; pass to [`Simplex::undo_bounds_to`]
    /// to retract every tightening made after this point.
    pub fn bound_mark(&self) -> usize {
        self.bound_undo.len()
    }

    /// Retract bound tightenings back to `mark`, restoring each overwritten
    /// slot. Values are deliberately *not* rolled back: every restored bound
    /// is weaker than (or equal to) the one it replaces, so nonbasic
    /// variables stay within their own bounds, and any basic-row violation
    /// relaxation could have cured is dropped lazily from the dirty set by
    /// the next [`Simplex::check`].
    pub fn undo_bounds_to(&mut self, mark: usize) {
        while self.bound_undo.len() > mark {
            let (v, is_upper, old) = self.bound_undo.pop().expect("len checked");
            let i = v as usize;
            if is_upper {
                self.upper[i] = old;
            } else {
                self.lower[i] = old;
            }
        }
    }

    fn mark_dirty(&mut self, i: usize) {
        if !self.dirty_flag[i] {
            self.dirty_flag[i] = true;
            self.dirty.push(i as u32);
        }
    }

    fn mark_touched(&mut self, i: usize) {
        if !self.touched_flag[i] {
            self.touched_flag[i] = true;
            self.touched.push(i as u32);
        }
    }

    /// Move the set of variables whose bounds tightened since the previous
    /// drain into `out` (cleared first). The theory-propagation scan uses
    /// this to look only at constraints a new bound can actually affect.
    pub fn drain_touched(&mut self, out: &mut Vec<SimVar>) {
        out.clear();
        for &i in &self.touched {
            self.touched_flag[i as usize] = false;
            out.push(SimVar(i));
        }
        self.touched.clear();
    }

    /// Current upper bound on `v` with the tag of the literal asserting it.
    pub fn upper_bound(&self, v: SimVar) -> Option<(&DeltaRat, Tag)> {
        self.upper[v.0 as usize].as_ref().map(|b| (&b.value, b.tag))
    }

    /// Current lower bound on `v` with the tag of the literal asserting it.
    pub fn lower_bound(&self, v: SimVar) -> Option<(&DeltaRat, Tag)> {
        self.lower[v.0 as usize].as_ref().map(|b| (&b.value, b.tag))
    }

    /// Whether `v` currently owns a tableau row.
    pub fn is_basic_var(&self, v: SimVar) -> bool {
        self.is_basic(v)
    }

    /// Whether basic `b`'s row mentions `v` (false if `b` is nonbasic).
    pub fn row_mentions(&self, b: SimVar, v: SimVar) -> bool {
        match &self.rows[b.0 as usize] {
            Some(row) => row.get(v).is_some(),
            None => false,
        }
    }

    /// Bound-propagated extreme of basic `v`: the largest (`toward_upper`)
    /// or smallest value its row can reach given the current bounds on its
    /// nonbasic variables, together with `(tag, |scale·coeff|)` Farkas
    /// premises for each limiting bound — the same accumulation
    /// [`Simplex::check`] uses for propagation conflicts. `None` if `v` is
    /// nonbasic or the row is unbounded in that direction.
    pub fn row_extreme(&self, v: SimVar, toward_upper: bool) -> Option<RowExtreme> {
        let row = self.rows[v.0 as usize].as_ref()?;
        let scale = &row.scale;
        let mut acc = DeltaRat::zero();
        let mut lams = Vec::with_capacity(row.entries.len());
        for (j, c) in row.iter() {
            let ji = j.0 as usize;
            let wants_upper = toward_upper == c.is_positive();
            let bv = if wants_upper { self.upper[ji].as_ref() } else { self.lower[ji].as_ref() }?;
            let eff = scale * c;
            acc = &acc + &bv.value.scale(&eff);
            lams.push((bv.tag, eff.abs()));
        }
        Some((acc, lams))
    }

    /// Assert `v ≤ bound`. Returns a conflict if it contradicts the current
    /// lower bound on `v`.
    pub fn assert_upper(
        &mut self,
        v: SimVar,
        bound: DeltaRat,
        tag: Tag,
    ) -> Result<(), TheoryConflict> {
        let i = v.0 as usize;
        if let Some(u) = &self.upper[i] {
            if u.value <= bound {
                return Ok(());
            }
        }
        if let Some(l) = &self.lower[i] {
            if l.value > bound {
                return Err(TheoryConflict::from_farkas(vec![
                    (l.tag, Rat::one()),
                    (tag, Rat::one()),
                ]));
            }
        }
        self.bound_undo.push((v.0, true, self.upper[i].take()));
        self.upper[i] = Some(BoundVal { value: bound.clone(), tag });
        self.mark_touched(i);
        if self.is_basic(v) {
            self.mark_dirty(i);
        } else if self.value[i] > bound {
            self.update_nonbasic(v, bound);
        }
        Ok(())
    }

    /// Assert `v ≥ bound`. Returns a conflict if it contradicts the current
    /// upper bound on `v`.
    pub fn assert_lower(
        &mut self,
        v: SimVar,
        bound: DeltaRat,
        tag: Tag,
    ) -> Result<(), TheoryConflict> {
        let i = v.0 as usize;
        if let Some(l) = &self.lower[i] {
            if l.value >= bound {
                return Ok(());
            }
        }
        if let Some(u) = &self.upper[i] {
            if u.value < bound {
                return Err(TheoryConflict::from_farkas(vec![
                    (u.tag, Rat::one()),
                    (tag, Rat::one()),
                ]));
            }
        }
        self.bound_undo.push((v.0, false, self.lower[i].take()));
        self.lower[i] = Some(BoundVal { value: bound.clone(), tag });
        self.mark_touched(i);
        if self.is_basic(v) {
            self.mark_dirty(i);
        } else if self.value[i] < bound {
            self.update_nonbasic(v, bound);
        }
        Ok(())
    }

    /// Change the value of a nonbasic variable, propagating to basic rows.
    fn update_nonbasic(&mut self, v: SimVar, new_val: DeltaRat) {
        let delta = &new_val - &self.value[v.0 as usize];
        for b in 0..self.rows.len() {
            let c = match &self.rows[b] {
                Some(row) => row.effective(v),
                None => None,
            };
            if let Some(c) = c {
                let adj = delta.scale(&c);
                self.value[b] = &self.value[b] + &adj;
                self.mark_dirty(b);
            }
        }
        self.value[v.0 as usize] = new_val;
    }

    /// Pivot to feasibility or produce a conflict.
    pub fn check(&mut self) -> Result<(), TheoryConflict> {
        loop {
            // Bland's rule: lowest-index violating basic variable. The dirty
            // set is a superset of the violating basics (every bound
            // tightening and value update marks the rows it may have broken),
            // so scanning it — dropping entries that turn out fine — selects
            // exactly the variable the old full-tableau scan would have.
            let mut violating: Option<(SimVar, bool)> = None; // (var, below_lower)
            let mut k = 0;
            while k < self.dirty.len() {
                let i = self.dirty[k] as usize;
                let mut viol: Option<bool> = None;
                if self.rows[i].is_some() {
                    if let Some(l) = &self.lower[i] {
                        if self.value[i] < l.value {
                            viol = Some(true);
                        }
                    }
                    if viol.is_none() {
                        if let Some(u) = &self.upper[i] {
                            if self.value[i] > u.value {
                                viol = Some(false);
                            }
                        }
                    }
                }
                match viol {
                    Some(below) => {
                        if violating.is_none_or(|(v, _)| SimVar(i as u32) < v) {
                            violating = Some((SimVar(i as u32), below));
                        }
                        k += 1;
                    }
                    None => {
                        self.dirty_flag[i] = false;
                        self.dirty.swap_remove(k);
                    }
                }
            }
            let Some((b, below)) = violating else {
                return Ok(());
            };
            let bi = b.0 as usize;
            let row = self.rows[bi].as_ref().expect("violating variable is basic");
            let scale = row.scale.clone();
            // One pass over the row: find a pivot column (lowest index —
            // Bland's rule prevents cycling) and, in the same scan,
            // propagate bounds — accumulate the extreme value the row can
            // reach given the nonbasic bounds in the helpful direction.
            // If every term is bounded and the extreme still misses `b`'s
            // bound, the system is infeasible *now*: emit the Farkas
            // conflict immediately instead of pivoting toward it (the
            // fully-blocked dead end below is the special case where every
            // nonbasic already sits at its limiting bound).
            let mut pivot_col: Option<SimVar> = None;
            let mut extreme: Option<(DeltaRat, Vec<(Tag, Rat)>)> =
                Some((DeltaRat::zero(), Vec::new()));
            for (j, c) in row.iter() {
                let ji = j.0 as usize;
                let can_fix = if below {
                    // Need to increase b.
                    (c.is_positive() && self.can_increase(ji))
                        || (c.is_negative() && self.can_decrease(ji))
                } else {
                    // Need to decrease b.
                    (c.is_positive() && self.can_decrease(ji))
                        || (c.is_negative() && self.can_increase(ji))
                };
                if can_fix && pivot_col.is_none() {
                    pivot_col = Some(j);
                }
                if let Some((acc, lams)) = &mut extreme {
                    // The bound limiting this term in the helpful
                    // direction: increasing b wants positive-coefficient
                    // vars at their upper bounds (and vice versa).
                    let wants_upper = below == c.is_positive();
                    let lim = if wants_upper { &self.upper[ji] } else { &self.lower[ji] };
                    match lim {
                        Some(bv) => {
                            let eff = &scale * c;
                            *acc = &*acc + &bv.value.scale(&eff);
                            lams.push((bv.tag, eff.abs()));
                        }
                        // Unbounded in the helpful direction: the row can
                        // reach any value, no conclusion.
                        None => extreme = None,
                    }
                }
                if pivot_col.is_some() && extreme.is_none() {
                    break;
                }
            }
            if let Some((reach, lams)) = extreme {
                let (own, missed) = if below {
                    let l = self.lower[bi].as_ref().unwrap();
                    (l.tag, reach < l.value)
                } else {
                    let u = self.upper[bi].as_ref().unwrap();
                    (u.tag, reach > u.value)
                };
                if missed {
                    let mut farkas = Vec::new();
                    TheoryConflict::add_farkas(&mut farkas, own, Rat::one());
                    for (tag, lam) in lams {
                        TheoryConflict::add_farkas(&mut farkas, tag, lam);
                    }
                    return Err(TheoryConflict::from_farkas(farkas));
                }
            }
            let Some(j) = pivot_col else {
                // Infeasible: every nonbasic is pinned at the blocking bound.
                // The Farkas combination uses multiplier 1 for the violated
                // bound on `b` and |scale·c| for each blocking bound: since
                // `b = scale·Σ c·x` holds identically, the variable parts
                // cancel and the constants sum to a negative value. (With
                // bound propagation above this is only reachable when a
                // blocked bound equals the reachable extreme exactly.)
                let own = if below {
                    self.lower[bi].as_ref().unwrap().tag
                } else {
                    self.upper[bi].as_ref().unwrap().tag
                };
                let mut farkas = Vec::new();
                TheoryConflict::add_farkas(&mut farkas, own, Rat::one());
                for (jv, c) in row.iter() {
                    let ji = jv.0 as usize;
                    let blocking = if below {
                        // b needs increase; positive coeff blocked by upper,
                        // negative coeff blocked by lower.
                        if c.is_positive() {
                            self.upper[ji].as_ref()
                        } else {
                            self.lower[ji].as_ref()
                        }
                    } else if c.is_positive() {
                        self.lower[ji].as_ref()
                    } else {
                        self.upper[ji].as_ref()
                    };
                    let lam = (&scale * c).abs();
                    let tag = blocking.expect("blocking bound must exist").tag;
                    TheoryConflict::add_farkas(&mut farkas, tag, lam);
                }
                return Err(TheoryConflict::from_farkas(farkas));
            };
            let target = if below {
                self.lower[bi].as_ref().unwrap().value.clone()
            } else {
                self.upper[bi].as_ref().unwrap().value.clone()
            };
            self.pivot_and_update(b, j, target);
        }
    }

    fn can_increase(&self, i: usize) -> bool {
        match &self.upper[i] {
            None => true,
            Some(u) => self.value[i] < u.value,
        }
    }

    fn can_decrease(&self, i: usize) -> bool {
        match &self.lower[i] {
            None => true,
            Some(l) => self.value[i] > l.value,
        }
    }

    /// Pivot basic `b` with nonbasic `j` and set `b`'s value to `target`.
    fn pivot_and_update(&mut self, b: SimVar, j: SimVar, target: DeltaRat) {
        self.pivots += 1;
        PIVOTS_TOTAL.fetch_add(1, AtomicOrdering::Relaxed);
        let bi = b.0 as usize;
        let ji = j.0 as usize;
        // `b`'s row is transformed in place into `j`'s row below; no clone.
        let mut row_j = self.rows[bi].take().expect("pivot row is basic");
        let s = std::mem::replace(&mut row_j.scale, Rat::one());
        let a_bj = row_j.remove(j).expect("pivot column must be in row");
        // Value updates: θ = (target − β(b)) / (s·a_bj), the effective
        // pivot coefficient.
        let inv_eff = (&s * &a_bj).recip();
        let theta = (&target - &self.value[bi]).scale(&inv_eff);
        self.value[bi] = target;
        self.value[ji] = &self.value[ji] + &theta;
        // j is about to become basic with a changed value; its row (and
        // every row whose value shifts below) may now violate a bound.
        self.mark_dirty(ji);
        for i in 0..self.rows.len() {
            let c = match &self.rows[i] {
                Some(row) => row.effective(j),
                None => None,
            };
            if let Some(c) = c {
                let adj = theta.scale(&c);
                self.value[i] = &self.value[i] + &adj;
                self.mark_dirty(i);
            }
        }
        // Row for j: from b = s·Σ a_k x_k, with σ = sign(a_bj),
        //   x_j = (1/|a_bj|)·( (σ/s)·b − Σ_{k≠j} σ·a_k·x_k )
        // — the division by a_bj lives in the new (positive) scale
        // 1/|a_bj|, so the surviving entries keep their magnitudes (only
        // flipping sign) and big-number growth is confined to the scale
        // and the single fresh `b` entry. `b`, having been basic, cannot
        // already appear in its own row.
        let positive = a_bj.is_positive();
        row_j.scale = a_bj.abs().recip();
        if positive {
            for (_, c) in row_j.entries.iter_mut() {
                *c = -&*c;
            }
        }
        let b_entry = if positive { s.recip() } else { -s.recip() };
        row_j.add_term(b, &b_entry);
        row_j.normalize();
        // Substitute x_j in every other row via the shared scratch buffer,
        // folding both scales into the merge factor:
        //   s_i·c·x_j = s_i·c·t·Σ e·x  ⇒  entries += (c·t)·e.
        let t = row_j.scale.clone();
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.rows.len() {
            if i == ji {
                continue;
            }
            if let Some(row) = &mut self.rows[i] {
                if let Some(c) = row.remove(j) {
                    row.add_scaled(&row_j, &(&c * &t), &mut scratch);
                    row.normalize();
                }
            }
        }
        self.scratch = scratch;
        self.rows[ji] = Some(row_j);
    }

    /// Current delta-rational value of a variable (valid after a successful
    /// `check`).
    pub fn raw_value(&self, v: SimVar) -> &DeltaRat {
        &self.value[v.0 as usize]
    }

    /// Concretize the current assignment into plain rationals by choosing a
    /// small positive value for δ that keeps every asserted bound satisfied.
    pub fn concrete_values(&self) -> Vec<Rat> {
        let delta = self.suitable_delta();
        self.value.iter().map(|v| v.eval(&delta)).collect()
    }

    /// A value of δ small enough that substituting it preserves every
    /// asserted bound (standard delta-rational extraction).
    pub fn suitable_delta(&self) -> Rat {
        let mut best = Rat::one();
        for i in 0..self.value.len() {
            let v = &self.value[i];
            if let Some(u) = &self.upper[i] {
                // Need v.real + v.delta·δ ≤ u.real + u.delta·δ.
                let dd = &v.delta - &u.value.delta;
                if dd.is_positive() {
                    let gap = &u.value.real - &v.real;
                    let cand = &gap / &dd;
                    if cand < best {
                        best = cand;
                    }
                }
            }
            if let Some(l) = &self.lower[i] {
                let dd = &l.value.delta - &v.delta;
                if dd.is_positive() {
                    let gap = &v.real - &l.value.real;
                    let cand = &gap / &dd;
                    if cand < best {
                        best = cand;
                    }
                }
            }
        }
        // Halve to stay strictly inside open regions.
        &best * &Rat::new(1i64.into(), 2i64.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    fn dr(r: Rat) -> DeltaRat {
        DeltaRat::from(r)
    }

    #[test]
    fn bounds_on_single_var() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, dr(int(2)), 0).unwrap();
        s.assert_upper(x, dr(int(5)), 1).unwrap();
        s.check().unwrap();
        let v = s.raw_value(x);
        assert!(*v >= dr(int(2)) && *v <= dr(int(5)));
    }

    #[test]
    fn direct_bound_conflict() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, dr(int(5)), 10).unwrap();
        let err = s.assert_upper(x, dr(int(2)), 20).unwrap_err();
        let mut tags = err.tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![10, 20]);
    }

    #[test]
    fn strict_bounds_via_delta() {
        // x < 1 and x > 0 is satisfiable over reals.
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_upper(x, DeltaRat::strictly_below(int(1)), 0).unwrap();
        s.assert_lower(x, DeltaRat::strictly_above(int(0)), 1).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(vals[0] > int(0) && vals[0] < int(1), "got {}", vals[0]);
    }

    #[test]
    fn strict_conflict() {
        // x < 1 and x > 1 is unsat.
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_upper(x, DeltaRat::strictly_below(int(1)), 0).unwrap();
        let r = s.assert_lower(x, DeltaRat::strictly_above(int(1)), 1);
        assert!(r.is_err());
    }

    #[test]
    fn slack_feasible_system() {
        // x + y <= 4, x - y <= 2, x >= 3  →  y >= 1; satisfiable.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let s1 = s.define_slack(&[(x, int(1)), (y, int(1))]);
        let s2 = s.define_slack(&[(x, int(1)), (y, int(-1))]);
        s.assert_upper(s1, dr(int(4)), 0).unwrap();
        s.assert_upper(s2, dr(int(2)), 1).unwrap();
        s.assert_lower(x, dr(int(3)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
        assert!(&xv + &yv <= int(4));
        assert!(&xv - &yv <= int(2));
        assert!(xv >= int(3));
    }

    #[test]
    fn slack_infeasible_system_with_explanation() {
        // x + y <= 1, x >= 1, y >= 1 : conflict must involve all three.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(1)), 100).unwrap();
        s.assert_lower(x, dr(int(1)), 101).unwrap();
        s.assert_lower(y, dr(int(1)), 102).unwrap();
        let err = s.check().unwrap_err();
        let mut tags = err.tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![100, 101, 102]);
    }

    #[test]
    fn reset_bounds_allows_reuse() {
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(1)), 0).unwrap();
        s.assert_lower(x, dr(int(1)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        assert!(s.check().is_err());
        s.reset_bounds();
        s.assert_upper(sum, dr(int(10)), 0).unwrap();
        s.assert_lower(x, dr(int(1)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(&vals[x.0 as usize] + &vals[y.0 as usize] <= int(10));
    }

    #[test]
    fn fractional_coefficients() {
        // 0.5x + 1.5y <= 3, x >= 2, y >= 1 → 1 + 1.5 = 2.5 <= 3 ok.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let e = s.define_slack(&[(x, rat(1, 2)), (y, rat(3, 2))]);
        s.assert_upper(e, dr(int(3)), 0).unwrap();
        s.assert_lower(x, dr(int(2)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        s.check().unwrap();
    }

    #[test]
    fn equality_via_two_bounds() {
        // x + y = 5 (as <= and >=), x = 2 → y = 3.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(5)), 0).unwrap();
        s.assert_lower(sum, dr(int(5)), 1).unwrap();
        s.assert_upper(x, dr(int(2)), 2).unwrap();
        s.assert_lower(x, dr(int(2)), 3).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert_eq!(vals[y.0 as usize], int(3));
    }

    #[test]
    fn chained_slacks_substitute_basic_vars() {
        // s1 = x + y; force pivots; then s2 = s1 + x must still be correct.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let s1 = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_lower(s1, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        let s2 = s.define_slack(&[(s1, int(1)), (x, int(1))]);
        s.assert_upper(s2, dr(int(10)), 1).unwrap();
        s.assert_lower(x, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
        assert!(&xv + &yv >= int(4));
        assert!(&(&xv + &yv) + &xv <= int(10));
        assert!(xv >= int(1));
    }

    #[test]
    fn pop_restores_tableau_shape() {
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sxy = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_lower(sxy, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        s.push();
        // Scope: a new slack plus bounds that force pivoting on base rows.
        let sxmy = s.define_slack(&[(x, int(1)), (y, int(-1))]);
        s.assert_upper(sxmy, dr(int(0)), 1).unwrap();
        s.assert_upper(x, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        s.pop();
        assert_eq!(s.num_vars(), 3, "scope slack must be dropped");
        // The base system solves again after the rollback.
        s.assert_lower(sxy, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(&vals[0] + &vals[1] >= int(4));
    }

    #[test]
    fn bound_propagation_reports_full_conflict_without_pivoting() {
        // s = 2x + 3y with x ≤ 1, y ≤ 1 can reach at most 5; s ≥ 6 is
        // infeasible by bound propagation alone. The conflict must cite
        // all three bounds with Farkas multipliers matching the row
        // coefficients (scale 1 here).
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sl = s.define_slack(&[(x, int(2)), (y, int(3))]);
        s.assert_upper(x, dr(int(1)), 1).unwrap();
        s.assert_upper(y, dr(int(1)), 2).unwrap();
        s.assert_lower(sl, dr(int(6)), 0).unwrap();
        let pivots_before = s.pivots;
        let err = s.check().unwrap_err();
        assert_eq!(s.pivots, pivots_before, "propagation must fire before any pivot");
        let mut tags = err.tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2]);
        let lam = |t: Tag| err.farkas.iter().find(|e| e.0 == t).map(|e| e.1.clone());
        assert_eq!(lam(0), Some(int(1)));
        assert_eq!(lam(1), Some(int(2)));
        assert_eq!(lam(2), Some(int(3)));
    }

    #[test]
    fn huge_shared_factors_are_confined_to_the_row_scale() {
        // Coefficients sharing a > 2^63 factor: content normalization must
        // bring every stored entry back to the i64 fast path while the
        // system still solves exactly.
        let huge = Rat::new(
            &ccmatic_num::BigInt::from(i64::MAX) * &ccmatic_num::BigInt::from(4i64),
            ccmatic_num::BigInt::one(),
        );
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sl = s.define_slack(&[(x, &huge * &int(1)), (y, &huge * &int(2))]);
        for row in s.rows.iter().flatten() {
            assert!(
                row.entries.iter().all(|(_, c)| c.is_small()),
                "normalization left a big entry: {:?}",
                row.entries
            );
        }
        // huge·x + 2·huge·y = 3·huge has the solution x = y = 1.
        let rhs = &huge * &int(3);
        s.assert_upper(sl, dr(rhs.clone()), 0).unwrap();
        s.assert_lower(sl, dr(rhs.clone()), 1).unwrap();
        s.assert_lower(x, dr(int(1)), 2).unwrap();
        s.assert_upper(x, dr(int(1)), 3).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert_eq!(vals[y.0 as usize], int(1));
    }

    #[test]
    fn pivoting_keeps_entry_magnitudes_from_compounding() {
        // A chain of fractional-coefficient slacks pivoted repeatedly: the
        // 1/a_bj factors must accumulate in row scales, leaving every
        // stored entry on the i64 fast path.
        let mut s = Simplex::new();
        let vars: Vec<SimVar> = (0..4).map(|_| s.new_var()).collect();
        let mut slacks = Vec::new();
        for w in vars.windows(2) {
            slacks.push(s.define_slack(&[(w[0], rat(1, 3)), (w[1], rat(5, 7))]));
        }
        for (i, sl) in slacks.iter().enumerate() {
            s.assert_lower(*sl, dr(int(i as i64 + 1)), i as u32).unwrap();
        }
        s.assert_upper(vars[0], dr(int(0)), 100).unwrap();
        s.check().unwrap();
        assert!(s.pivots > 0, "the chain must force pivoting");
        for row in s.rows.iter().flatten() {
            assert!(row.scale.is_positive(), "row scale must stay positive");
            assert!(row.entries.iter().all(|(_, c)| c.is_small()));
        }
        // The model still satisfies every constraint exactly.
        let vals = s.concrete_values();
        for (i, w) in vars.windows(2).enumerate() {
            let lhs =
                &(&vals[w[0].0 as usize] * &rat(1, 3)) + &(&vals[w[1].0 as usize] * &rat(5, 7));
            assert!(lhs >= int(i as i64 + 1), "slack {i} violated: {lhs}");
        }
    }

    #[test]
    fn many_random_systems_match_feasibility_oracle() {
        // Random interval systems on 2 vars: a·x + b·y ∈ [lo, hi]. Compare
        // against a coarse grid-search oracle for satisfiability. The grid
        // uses quarter steps so any system satisfiable on the grid must be
        // accepted by the simplex (completeness direction only).
        use ccmatic_num::SmallRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..40 {
            let n_cons = rng.gen_range_usize(1, 5);
            let cons: Vec<(i64, i64, i64)> = (0..n_cons)
                .map(|_| {
                    (rng.gen_range_i64(-2, 3), rng.gen_range_i64(-2, 3), rng.gen_range_i64(-4, 5))
                })
                .collect();
            // Oracle: any grid point satisfying all a·x+b·y <= c?
            let mut grid_sat = false;
            'grid: for xi in -12..=12 {
                for yi in -12..=12 {
                    // x = xi/4, y = yi/4
                    if cons.iter().all(|&(a, b, c)| a * xi + b * yi <= 4 * c) {
                        grid_sat = true;
                        break 'grid;
                    }
                }
            }
            let mut s = Simplex::new();
            let x = s.new_var();
            let y = s.new_var();
            let mut ok = true;
            for (i, &(a, b, c)) in cons.iter().enumerate() {
                let sl = s.define_slack(&[(x, int(a)), (y, int(b))]);
                if s.assert_upper(sl, dr(int(c)), i as u32).is_err() {
                    ok = false;
                    break;
                }
            }
            let feasible = ok && s.check().is_ok();
            if grid_sat {
                assert!(feasible, "simplex rejected a grid-satisfiable system {cons:?}");
            }
            if feasible {
                // Soundness: model must satisfy every constraint.
                let vals = s.concrete_values();
                let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
                for &(a, b, c) in &cons {
                    let lhs = &(&xv * &int(a)) + &(&yv * &int(b));
                    assert!(lhs <= int(c), "model violates {a}x+{b}y<={c}");
                }
            }
        }
    }
}
