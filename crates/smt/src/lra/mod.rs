//! General-simplex decision procedure for conjunctions of linear bounds.
//!
//! This is the theory solver of the lazy SMT combination, implementing the
//! algorithm of de Moura & Bjørner, *A fast linear-arithmetic solver for
//! DPLL(T)* (CAV 2006):
//!
//! * every asserted atom is a bound on a single variable (problem variable
//!   or *slack* variable defined as a linear combination of others),
//! * strict bounds are represented exactly using [`DeltaRat`]
//!   delta-rationals,
//! * a tableau of basic-variable rows is pivoted (Bland's rule, guaranteeing
//!   termination) until either all bounds hold or an infeasible row yields a
//!   Farkas-style conflict: the set of bound *tags* (SAT literals) that
//!   cannot hold together.
//!
//! The tableau persists across `reset_bounds` calls, so repeated theory
//! checks (one per candidate Boolean model) only pay for bound assertion
//! and re-pivoting, not structure building.
//!
//! Tableau rows are flat sorted `Vec<(SimVar, Rat)>` sparse vectors rather
//! than `BTreeMap`s: rows are read far more often than they are restructured,
//! and the hot substitution step ([`Row::add_scaled`]) is a linear merge of
//! two sorted lists through a reusable scratch buffer, so the pivot loop
//! performs no per-entry node allocation and no pointer chasing.

use ccmatic_num::{DeltaRat, Rat};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Process-wide pivot count across every [`Simplex`] instance (including
/// worker-thread verifiers); complements the per-instance
/// [`Simplex::pivots`] the same way `ccmatic_num::arith_snapshot` works for
/// arithmetic ops.
static PIVOTS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Read the process-wide pivot counter.
pub fn pivots_total() -> u64 {
    PIVOTS_TOTAL.load(AtomicOrdering::Relaxed)
}

/// A simplex variable (problem variable or slack).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SimVar(pub u32);

/// A sparse tableau row: `(variable, coefficient)` entries sorted by
/// variable, with no zero coefficients stored.
#[derive(Clone, Debug, Default)]
struct Row {
    entries: Vec<(SimVar, Rat)>,
}

impl Row {
    /// Coefficient of `v`, if present.
    fn get(&self, v: SimVar) -> Option<&Rat> {
        self.entries.binary_search_by_key(&v, |e| e.0).ok().map(|i| &self.entries[i].1)
    }

    /// Remove and return the coefficient of `v`.
    fn remove(&mut self, v: SimVar) -> Option<Rat> {
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Add `c` to the coefficient of `v`, dropping the entry if it cancels.
    fn add_term(&mut self, v: SimVar, c: &Rat) {
        if c.is_zero() {
            return;
        }
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => {
                self.entries[i].1 += c;
                if self.entries[i].1.is_zero() {
                    self.entries.remove(i);
                }
            }
            Err(i) => self.entries.insert(i, (v, c.clone())),
        }
    }

    /// Iterate entries in variable order.
    fn iter(&self) -> impl Iterator<Item = (SimVar, &Rat)> {
        self.entries.iter().map(|(v, c)| (*v, c))
    }

    /// `self += k·other` as a linear merge of the two sorted entry lists.
    /// The merged result is built in `scratch`, which is then swapped in;
    /// the buffers alternate across calls so neither is reallocated once
    /// warm.
    fn add_scaled(&mut self, other: &Row, k: &Rat, scratch: &mut Vec<(SimVar, Rat)>) {
        scratch.clear();
        scratch.reserve(self.entries.len() + other.entries.len());
        let mut a = self.entries.drain(..).peekable();
        for (bv, bc) in &other.entries {
            loop {
                match a.peek() {
                    Some((av, _)) if av < bv => {
                        scratch.push(a.next().expect("peeked entry exists"));
                    }
                    Some((av, _)) if av == bv => {
                        let (v, mut c) = a.next().expect("peeked entry exists");
                        c += &(k * bc);
                        if !c.is_zero() {
                            scratch.push((v, c));
                        }
                        break;
                    }
                    _ => {
                        let c = k * bc;
                        if !c.is_zero() {
                            scratch.push((*bv, c));
                        }
                        break;
                    }
                }
            }
        }
        scratch.extend(a);
        std::mem::swap(&mut self.entries, scratch);
    }
}

/// Opaque tag identifying the asserted bound that produced a conflict; the
/// SMT layer uses SAT literal codes.
pub type Tag = u32;

/// An inconsistent set of asserted bounds, identified by their tags.
#[derive(Clone, Debug)]
pub struct TheoryConflict {
    /// Tags of every bound participating in the infeasibility proof,
    /// sorted and deduplicated.
    pub tags: Vec<Tag>,
    /// Farkas multiplier per tag: orienting each tagged bound as a `≤`
    /// inequality, scaling by its (positive) multiplier and summing cancels
    /// every variable and leaves `0 ≤ c` with `c < 0`. Multipliers for a
    /// tag appearing more than once are combined.
    pub farkas: Vec<(Tag, Rat)>,
}

impl TheoryConflict {
    /// Build a conflict from its Farkas combination, deriving the tag set.
    fn from_farkas(farkas: Vec<(Tag, Rat)>) -> Self {
        let mut tags: Vec<Tag> = farkas.iter().map(|(t, _)| *t).collect();
        tags.sort_unstable();
        tags.dedup();
        TheoryConflict { tags, farkas }
    }

    /// Add `lam` to `tag`'s multiplier, combining duplicates.
    fn add_farkas(farkas: &mut Vec<(Tag, Rat)>, tag: Tag, lam: Rat) {
        match farkas.iter_mut().find(|e| e.0 == tag) {
            Some(e) => e.1 += &lam,
            None => farkas.push((tag, lam)),
        }
    }
}

#[derive(Clone)]
struct BoundVal {
    value: DeltaRat,
    tag: Tag,
}

/// Snapshot of the tableau structure taken at a `push` (bounds are not
/// saved: the SMT bridge re-asserts them from scratch on every check).
struct SimplexFrame {
    rows: Vec<Option<Row>>,
    value: Vec<DeltaRat>,
}

/// The simplex solver state.
pub struct Simplex {
    /// `rows[v] = Some(row)` iff `v` is basic; the row holds nonbasic vars
    /// and coefficients so that `v = Σ coeff·nonbasic`.
    rows: Vec<Option<Row>>,
    lower: Vec<Option<BoundVal>>,
    upper: Vec<Option<BoundVal>>,
    value: Vec<DeltaRat>,
    /// Open assertion scopes.
    frames: Vec<SimplexFrame>,
    /// Statistics: total pivots performed.
    pub pivots: u64,
    /// Reusable merge buffer for [`Row::add_scaled`].
    scratch: Vec<(SimVar, Rat)>,
}

impl Default for Simplex {
    fn default() -> Self {
        Self::new()
    }
}

impl Simplex {
    /// Empty solver.
    pub fn new() -> Self {
        Simplex {
            rows: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            value: Vec::new(),
            frames: Vec::new(),
            pivots: 0,
            scratch: Vec::new(),
        }
    }

    /// Open a scope: snapshot the tableau so slack definitions and pivots
    /// made from here on can be rolled back by [`Simplex::pop`]. (Pivoting
    /// rewrites base-variable rows in place, so a snapshot — not a length
    /// mark — is required; the clone is tiny next to the pivoting work a
    /// scope performs.)
    pub fn push(&mut self) {
        self.frames.push(SimplexFrame { rows: self.rows.clone(), value: self.value.clone() });
    }

    /// Close the innermost scope: restore the tableau to its push-time
    /// shape and drop every bound (the SMT bridge re-asserts bounds from
    /// the live atom set on each check).
    ///
    /// # Panics
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let frame = self.frames.pop().expect("pop without matching push");
        self.rows = frame.rows;
        self.value = frame.value;
        let n = self.rows.len();
        self.lower.truncate(n);
        self.upper.truncate(n);
        self.reset_bounds();
    }

    /// Allocate a fresh (nonbasic, unbounded) variable with value 0.
    pub fn new_var(&mut self) -> SimVar {
        let v = SimVar(self.rows.len() as u32);
        self.rows.push(None);
        self.lower.push(None);
        self.upper.push(None);
        self.value.push(DeltaRat::zero());
        v
    }

    /// Number of variables (problem + slack).
    pub fn num_vars(&self) -> usize {
        self.rows.len()
    }

    fn is_basic(&self, v: SimVar) -> bool {
        self.rows[v.0 as usize].is_some()
    }

    /// Define a new *slack* variable equal to `Σ coeff·var` over existing
    /// variables. Basic variables in the definition are substituted by
    /// their rows so the new row only references nonbasic variables.
    pub fn define_slack(&mut self, expr: &[(SimVar, Rat)]) -> SimVar {
        let mut row = Row::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (v, c) in expr {
            if c.is_zero() {
                continue;
            }
            if let Some(sub) = &self.rows[v.0 as usize] {
                row.add_scaled(sub, c, &mut scratch);
            } else {
                row.add_term(*v, c);
            }
        }
        self.scratch = scratch;
        let s = self.new_var();
        // Initial value = row evaluated at current assignment.
        let mut val = DeltaRat::zero();
        for (v, c) in row.iter() {
            val = &val + &self.value[v.0 as usize].scale(c);
        }
        self.value[s.0 as usize] = val;
        self.rows[s.0 as usize] = Some(row);
        s
    }

    /// Drop all asserted bounds (tableau and values are kept).
    pub fn reset_bounds(&mut self) {
        for b in self.lower.iter_mut() {
            *b = None;
        }
        for b in self.upper.iter_mut() {
            *b = None;
        }
    }

    /// Assert `v ≤ bound`. Returns a conflict if it contradicts the current
    /// lower bound on `v`.
    pub fn assert_upper(
        &mut self,
        v: SimVar,
        bound: DeltaRat,
        tag: Tag,
    ) -> Result<(), TheoryConflict> {
        let i = v.0 as usize;
        if let Some(u) = &self.upper[i] {
            if u.value <= bound {
                return Ok(());
            }
        }
        if let Some(l) = &self.lower[i] {
            if l.value > bound {
                return Err(TheoryConflict::from_farkas(vec![
                    (l.tag, Rat::one()),
                    (tag, Rat::one()),
                ]));
            }
        }
        self.upper[i] = Some(BoundVal { value: bound.clone(), tag });
        if !self.is_basic(v) && self.value[i] > bound {
            self.update_nonbasic(v, bound);
        }
        Ok(())
    }

    /// Assert `v ≥ bound`. Returns a conflict if it contradicts the current
    /// upper bound on `v`.
    pub fn assert_lower(
        &mut self,
        v: SimVar,
        bound: DeltaRat,
        tag: Tag,
    ) -> Result<(), TheoryConflict> {
        let i = v.0 as usize;
        if let Some(l) = &self.lower[i] {
            if l.value >= bound {
                return Ok(());
            }
        }
        if let Some(u) = &self.upper[i] {
            if u.value < bound {
                return Err(TheoryConflict::from_farkas(vec![
                    (u.tag, Rat::one()),
                    (tag, Rat::one()),
                ]));
            }
        }
        self.lower[i] = Some(BoundVal { value: bound.clone(), tag });
        if !self.is_basic(v) && self.value[i] < bound {
            self.update_nonbasic(v, bound);
        }
        Ok(())
    }

    /// Change the value of a nonbasic variable, propagating to basic rows.
    fn update_nonbasic(&mut self, v: SimVar, new_val: DeltaRat) {
        let delta = &new_val - &self.value[v.0 as usize];
        for b in 0..self.rows.len() {
            if let Some(row) = &self.rows[b] {
                if let Some(c) = row.get(v) {
                    let adj = delta.scale(c);
                    self.value[b] = &self.value[b] + &adj;
                }
            }
        }
        self.value[v.0 as usize] = new_val;
    }

    /// Pivot to feasibility or produce a conflict.
    pub fn check(&mut self) -> Result<(), TheoryConflict> {
        loop {
            // Bland's rule: lowest-index violating basic variable.
            let mut violating: Option<(SimVar, bool)> = None; // (var, below_lower)
            for i in 0..self.rows.len() {
                if self.rows[i].is_none() {
                    continue;
                }
                let v = SimVar(i as u32);
                if let Some(l) = &self.lower[i] {
                    if self.value[i] < l.value {
                        violating = Some((v, true));
                        break;
                    }
                }
                if let Some(u) = &self.upper[i] {
                    if self.value[i] > u.value {
                        violating = Some((v, false));
                        break;
                    }
                }
            }
            let Some((b, below)) = violating else {
                return Ok(());
            };
            let bi = b.0 as usize;
            let row = self.rows[bi].as_ref().expect("violating variable is basic");
            // Find a nonbasic variable that can move `b` toward its bound
            // (lowest index — Bland's rule prevents cycling).
            let mut pivot_col: Option<SimVar> = None;
            for (j, c) in row.iter() {
                let ji = j.0 as usize;
                let can_fix = if below {
                    // Need to increase b.
                    (c.is_positive() && self.can_increase(ji))
                        || (c.is_negative() && self.can_decrease(ji))
                } else {
                    // Need to decrease b.
                    (c.is_positive() && self.can_decrease(ji))
                        || (c.is_negative() && self.can_increase(ji))
                };
                if can_fix {
                    pivot_col = Some(j);
                    break;
                }
            }
            let Some(j) = pivot_col else {
                // Infeasible: every nonbasic is pinned at the blocking bound.
                // The Farkas combination uses multiplier 1 for the violated
                // bound on `b` and |c| for each blocking bound: since
                // `b = Σ c·x` holds identically, the variable parts cancel
                // and the constants sum to a negative value.
                let own = if below {
                    self.lower[bi].as_ref().unwrap().tag
                } else {
                    self.upper[bi].as_ref().unwrap().tag
                };
                let mut farkas = Vec::new();
                TheoryConflict::add_farkas(&mut farkas, own, Rat::one());
                for (jv, c) in row.iter() {
                    let ji = jv.0 as usize;
                    let blocking = if below {
                        // b needs increase; positive coeff blocked by upper,
                        // negative coeff blocked by lower.
                        if c.is_positive() {
                            self.upper[ji].as_ref()
                        } else {
                            self.lower[ji].as_ref()
                        }
                    } else if c.is_positive() {
                        self.lower[ji].as_ref()
                    } else {
                        self.upper[ji].as_ref()
                    };
                    let lam = if c.is_positive() { c.clone() } else { -c };
                    let tag = blocking.expect("blocking bound must exist").tag;
                    TheoryConflict::add_farkas(&mut farkas, tag, lam);
                }
                return Err(TheoryConflict::from_farkas(farkas));
            };
            let target = if below {
                self.lower[bi].as_ref().unwrap().value.clone()
            } else {
                self.upper[bi].as_ref().unwrap().value.clone()
            };
            self.pivot_and_update(b, j, target);
        }
    }

    fn can_increase(&self, i: usize) -> bool {
        match &self.upper[i] {
            None => true,
            Some(u) => self.value[i] < u.value,
        }
    }

    fn can_decrease(&self, i: usize) -> bool {
        match &self.lower[i] {
            None => true,
            Some(l) => self.value[i] > l.value,
        }
    }

    /// Pivot basic `b` with nonbasic `j` and set `b`'s value to `target`.
    fn pivot_and_update(&mut self, b: SimVar, j: SimVar, target: DeltaRat) {
        self.pivots += 1;
        PIVOTS_TOTAL.fetch_add(1, AtomicOrdering::Relaxed);
        let bi = b.0 as usize;
        let ji = j.0 as usize;
        // `b`'s row is transformed in place into `j`'s row below; no clone.
        let mut row_j = self.rows[bi].take().expect("pivot row is basic");
        let a_bj = row_j.remove(j).expect("pivot column must be in row");
        let inv = a_bj.recip();
        // Value updates: θ = (target − β(b)) / a_bj.
        let theta = (&target - &self.value[bi]).scale(&inv);
        self.value[bi] = target;
        self.value[ji] = &self.value[ji] + &theta;
        for i in 0..self.rows.len() {
            if let Some(row) = &self.rows[i] {
                if let Some(c) = row.get(j) {
                    let adj = theta.scale(c);
                    self.value[i] = &self.value[i] + &adj;
                }
            }
        }
        // Row for j: from b = Σ a_k x_k,
        //   x_j = (1/a_bj)·b − Σ_{k≠j} (a_k/a_bj)·x_k
        // Scale the remaining entries of b's row in place, then insert b
        // (which, having been basic, cannot already appear).
        let neg_inv = -&inv;
        for (_, c) in row_j.entries.iter_mut() {
            *c *= &neg_inv;
        }
        row_j.add_term(b, &inv);
        // Substitute x_j in every other row via the shared scratch buffer.
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.rows.len() {
            if i == ji {
                continue;
            }
            if let Some(row) = &mut self.rows[i] {
                if let Some(c) = row.remove(j) {
                    row.add_scaled(&row_j, &c, &mut scratch);
                }
            }
        }
        self.scratch = scratch;
        self.rows[ji] = Some(row_j);
    }

    /// Current delta-rational value of a variable (valid after a successful
    /// `check`).
    pub fn raw_value(&self, v: SimVar) -> &DeltaRat {
        &self.value[v.0 as usize]
    }

    /// Concretize the current assignment into plain rationals by choosing a
    /// small positive value for δ that keeps every asserted bound satisfied.
    pub fn concrete_values(&self) -> Vec<Rat> {
        let delta = self.suitable_delta();
        self.value.iter().map(|v| v.eval(&delta)).collect()
    }

    /// A value of δ small enough that substituting it preserves every
    /// asserted bound (standard delta-rational extraction).
    pub fn suitable_delta(&self) -> Rat {
        let mut best = Rat::one();
        for i in 0..self.value.len() {
            let v = &self.value[i];
            if let Some(u) = &self.upper[i] {
                // Need v.real + v.delta·δ ≤ u.real + u.delta·δ.
                let dd = &v.delta - &u.value.delta;
                if dd.is_positive() {
                    let gap = &u.value.real - &v.real;
                    let cand = &gap / &dd;
                    if cand < best {
                        best = cand;
                    }
                }
            }
            if let Some(l) = &self.lower[i] {
                let dd = &l.value.delta - &v.delta;
                if dd.is_positive() {
                    let gap = &v.real - &l.value.real;
                    let cand = &gap / &dd;
                    if cand < best {
                        best = cand;
                    }
                }
            }
        }
        // Halve to stay strictly inside open regions.
        &best * &Rat::new(1i64.into(), 2i64.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    fn dr(r: Rat) -> DeltaRat {
        DeltaRat::from(r)
    }

    #[test]
    fn bounds_on_single_var() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, dr(int(2)), 0).unwrap();
        s.assert_upper(x, dr(int(5)), 1).unwrap();
        s.check().unwrap();
        let v = s.raw_value(x);
        assert!(*v >= dr(int(2)) && *v <= dr(int(5)));
    }

    #[test]
    fn direct_bound_conflict() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, dr(int(5)), 10).unwrap();
        let err = s.assert_upper(x, dr(int(2)), 20).unwrap_err();
        let mut tags = err.tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![10, 20]);
    }

    #[test]
    fn strict_bounds_via_delta() {
        // x < 1 and x > 0 is satisfiable over reals.
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_upper(x, DeltaRat::strictly_below(int(1)), 0).unwrap();
        s.assert_lower(x, DeltaRat::strictly_above(int(0)), 1).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(vals[0] > int(0) && vals[0] < int(1), "got {}", vals[0]);
    }

    #[test]
    fn strict_conflict() {
        // x < 1 and x > 1 is unsat.
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_upper(x, DeltaRat::strictly_below(int(1)), 0).unwrap();
        let r = s.assert_lower(x, DeltaRat::strictly_above(int(1)), 1);
        assert!(r.is_err());
    }

    #[test]
    fn slack_feasible_system() {
        // x + y <= 4, x - y <= 2, x >= 3  →  y >= 1; satisfiable.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let s1 = s.define_slack(&[(x, int(1)), (y, int(1))]);
        let s2 = s.define_slack(&[(x, int(1)), (y, int(-1))]);
        s.assert_upper(s1, dr(int(4)), 0).unwrap();
        s.assert_upper(s2, dr(int(2)), 1).unwrap();
        s.assert_lower(x, dr(int(3)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
        assert!(&xv + &yv <= int(4));
        assert!(&xv - &yv <= int(2));
        assert!(xv >= int(3));
    }

    #[test]
    fn slack_infeasible_system_with_explanation() {
        // x + y <= 1, x >= 1, y >= 1 : conflict must involve all three.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(1)), 100).unwrap();
        s.assert_lower(x, dr(int(1)), 101).unwrap();
        s.assert_lower(y, dr(int(1)), 102).unwrap();
        let err = s.check().unwrap_err();
        let mut tags = err.tags;
        tags.sort_unstable();
        assert_eq!(tags, vec![100, 101, 102]);
    }

    #[test]
    fn reset_bounds_allows_reuse() {
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(1)), 0).unwrap();
        s.assert_lower(x, dr(int(1)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        assert!(s.check().is_err());
        s.reset_bounds();
        s.assert_upper(sum, dr(int(10)), 0).unwrap();
        s.assert_lower(x, dr(int(1)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(&vals[x.0 as usize] + &vals[y.0 as usize] <= int(10));
    }

    #[test]
    fn fractional_coefficients() {
        // 0.5x + 1.5y <= 3, x >= 2, y >= 1 → 1 + 1.5 = 2.5 <= 3 ok.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let e = s.define_slack(&[(x, rat(1, 2)), (y, rat(3, 2))]);
        s.assert_upper(e, dr(int(3)), 0).unwrap();
        s.assert_lower(x, dr(int(2)), 1).unwrap();
        s.assert_lower(y, dr(int(1)), 2).unwrap();
        s.check().unwrap();
    }

    #[test]
    fn equality_via_two_bounds() {
        // x + y = 5 (as <= and >=), x = 2 → y = 3.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sum = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_upper(sum, dr(int(5)), 0).unwrap();
        s.assert_lower(sum, dr(int(5)), 1).unwrap();
        s.assert_upper(x, dr(int(2)), 2).unwrap();
        s.assert_lower(x, dr(int(2)), 3).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert_eq!(vals[y.0 as usize], int(3));
    }

    #[test]
    fn chained_slacks_substitute_basic_vars() {
        // s1 = x + y; force pivots; then s2 = s1 + x must still be correct.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let s1 = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_lower(s1, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        let s2 = s.define_slack(&[(s1, int(1)), (x, int(1))]);
        s.assert_upper(s2, dr(int(10)), 1).unwrap();
        s.assert_lower(x, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
        assert!(&xv + &yv >= int(4));
        assert!(&(&xv + &yv) + &xv <= int(10));
        assert!(xv >= int(1));
    }

    #[test]
    fn pop_restores_tableau_shape() {
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sxy = s.define_slack(&[(x, int(1)), (y, int(1))]);
        s.assert_lower(sxy, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        s.push();
        // Scope: a new slack plus bounds that force pivoting on base rows.
        let sxmy = s.define_slack(&[(x, int(1)), (y, int(-1))]);
        s.assert_upper(sxmy, dr(int(0)), 1).unwrap();
        s.assert_upper(x, dr(int(1)), 2).unwrap();
        s.check().unwrap();
        s.pop();
        assert_eq!(s.num_vars(), 3, "scope slack must be dropped");
        // The base system solves again after the rollback.
        s.assert_lower(sxy, dr(int(4)), 0).unwrap();
        s.check().unwrap();
        let vals = s.concrete_values();
        assert!(&vals[0] + &vals[1] >= int(4));
    }

    #[test]
    fn many_random_systems_match_feasibility_oracle() {
        // Random interval systems on 2 vars: a·x + b·y ∈ [lo, hi]. Compare
        // against a coarse grid-search oracle for satisfiability. The grid
        // uses quarter steps so any system satisfiable on the grid must be
        // accepted by the simplex (completeness direction only).
        use ccmatic_num::SmallRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..40 {
            let n_cons = rng.gen_range_usize(1, 5);
            let cons: Vec<(i64, i64, i64)> = (0..n_cons)
                .map(|_| {
                    (rng.gen_range_i64(-2, 3), rng.gen_range_i64(-2, 3), rng.gen_range_i64(-4, 5))
                })
                .collect();
            // Oracle: any grid point satisfying all a·x+b·y <= c?
            let mut grid_sat = false;
            'grid: for xi in -12..=12 {
                for yi in -12..=12 {
                    // x = xi/4, y = yi/4
                    if cons.iter().all(|&(a, b, c)| a * xi + b * yi <= 4 * c) {
                        grid_sat = true;
                        break 'grid;
                    }
                }
            }
            let mut s = Simplex::new();
            let x = s.new_var();
            let y = s.new_var();
            let mut ok = true;
            for (i, &(a, b, c)) in cons.iter().enumerate() {
                let sl = s.define_slack(&[(x, int(a)), (y, int(b))]);
                if s.assert_upper(sl, dr(int(c)), i as u32).is_err() {
                    ok = false;
                    break;
                }
            }
            let feasible = ok && s.check().is_ok();
            if grid_sat {
                assert!(feasible, "simplex rejected a grid-satisfiable system {cons:?}");
            }
            if feasible {
                // Soundness: model must satisfy every constraint.
                let vals = s.concrete_values();
                let (xv, yv) = (vals[x.0 as usize].clone(), vals[y.0 as usize].clone());
                for &(a, b, c) in &cons {
                    let lhs = &(&xv * &int(a)) + &(&yv * &int(b));
                    assert!(lhs <= int(c), "model violates {a}x+{b}y<={c}");
                }
            }
        }
    }
}
