//! Canonicalized linear-arithmetic atoms.
//!
//! Every inequality over [`LinExpr`]s is rewritten into a *canonical atom*
//! of the form `p ≤ k` or `p < k`, where `p` is a constant-free linear
//! expression whose lowest-numbered variable has coefficient `+1`. Equality
//! is split into two inequalities at term-construction time, and `≥`/`>`
//! become *negations* of canonical atoms. This gives the theory bridge a
//! pleasant property: asserting an atom literal is always a single bound on
//! a single (slack) variable — positive polarity an upper bound, negative
//! polarity a lower bound.

use crate::linexpr::LinExpr;
use ccmatic_num::Rat;

/// Index of a canonical atom in the [`Context`](crate::Context) atom table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AtomId(pub u32);

/// A canonical atom: `expr ≤ bound` (or `<` when `strict`).
///
/// Invariants: `expr` has no constant term, at least one variable, and its
/// leading (lowest-id) variable has coefficient exactly `+1`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AtomData {
    /// Constant-free, leading-coefficient-one variable part.
    pub expr: LinExpr,
    /// Right-hand side.
    pub bound: Rat,
    /// True for `<`, false for `≤`.
    pub strict: bool,
}

/// Result of canonicalizing `lhs ⋈ rhs`.
pub enum Canonical {
    /// The atom folded to a constant truth value (no variables).
    Const(bool),
    /// A canonical atom, possibly negated (`negated` means the original
    /// inequality is equivalent to the *negation* of the canonical atom).
    Atom { data: AtomData, negated: bool },
}

/// The inequality relations accepted by the canonicalizer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
}

/// Canonicalize `lhs ⋈ rhs` into an [`AtomData`] literal.
///
/// The difference `d = lhs − rhs` is formed, the constant moved to the
/// right-hand side, and the expression scaled so the leading coefficient is
/// `+1` (flipping the relation when the scale is negative). `Ge`/`Gt` are
/// then expressed as negations: `p ≥ k ⟺ ¬(p < k)`.
pub fn canonicalize(lhs: &LinExpr, rhs: &LinExpr, rel: Rel) -> Canonical {
    let d = lhs.clone() - rhs.clone();
    let k = -d.constant_part().clone();
    let p = d.var_part();
    let Some(lead) = p.leading_var() else {
        // Constant comparison: 0 ⋈ k.
        let truth = match rel {
            Rel::Le => Rat::zero() <= k,
            Rel::Lt => Rat::zero() < k,
            Rel::Ge => Rat::zero() >= k,
            Rel::Gt => Rat::zero() > k,
        };
        return Canonical::Const(truth);
    };
    let a = p.coeff(lead);
    let scale = a.recip();
    let p = p.scaled(&scale);
    let k = &k * &scale;
    // Negative scale flips the inequality direction.
    let rel = if scale.is_negative() {
        match rel {
            Rel::Le => Rel::Ge,
            Rel::Lt => Rel::Gt,
            Rel::Ge => Rel::Le,
            Rel::Gt => Rel::Lt,
        }
    } else {
        rel
    };
    let (strict, negated) = match rel {
        Rel::Le => (false, false),
        Rel::Lt => (true, false),
        // p ≥ k ⟺ ¬(p < k)
        Rel::Ge => (true, true),
        // p > k ⟺ ¬(p ≤ k)
        Rel::Gt => (false, true),
    };
    Canonical::Atom { data: AtomData { expr: p, bound: k, strict }, negated }
}

impl std::fmt::Display for AtomData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.expr, if self.strict { "<" } else { "≤" }, self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::RealVar;
    use ccmatic_num::{int, rat};

    fn x() -> LinExpr {
        LinExpr::var(RealVar(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(RealVar(1))
    }

    fn atom(lhs: &LinExpr, rhs: &LinExpr, rel: Rel) -> (AtomData, bool) {
        match canonicalize(lhs, rhs, rel) {
            Canonical::Atom { data, negated } => (data, negated),
            Canonical::Const(_) => panic!("expected non-constant atom"),
        }
    }

    #[test]
    fn le_is_direct() {
        // x + 1 <= 3  →  x <= 2, positive polarity
        let (d, neg) =
            atom(&(x() + LinExpr::constant(int(1))), &LinExpr::constant(int(3)), Rel::Le);
        assert!(!neg);
        assert!(!d.strict);
        assert_eq!(d.bound, int(2));
        assert_eq!(d.expr, x());
    }

    #[test]
    fn ge_is_negated_strict() {
        // x >= 2  →  ¬(x < 2)
        let (d, neg) = atom(&x(), &LinExpr::constant(int(2)), Rel::Ge);
        assert!(neg);
        assert!(d.strict);
        assert_eq!(d.bound, int(2));
    }

    #[test]
    fn negative_leading_coeff_flips() {
        // -2x <= 4  →  x >= -2  →  ¬(x < -2)
        let lhs = x() * int(-2);
        let (d, neg) = atom(&lhs, &LinExpr::constant(int(4)), Rel::Le);
        assert!(neg);
        assert!(d.strict);
        assert_eq!(d.bound, int(-2));
        assert_eq!(d.expr, x());
    }

    #[test]
    fn scaling_shares_atoms() {
        // 2x + 4y <= 6 and x + 2y <= 3 canonicalize identically.
        let a = atom(&(x() * int(2) + y() * int(4)), &LinExpr::constant(int(6)), Rel::Le);
        let b = atom(&(x() + y() * int(2)), &LinExpr::constant(int(3)), Rel::Le);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn constant_folding() {
        match canonicalize(&LinExpr::constant(int(1)), &LinExpr::constant(int(2)), Rel::Le) {
            Canonical::Const(true) => {}
            _ => panic!("1 <= 2 should fold to true"),
        }
        match canonicalize(&LinExpr::constant(rat(1, 2)), &LinExpr::constant(rat(1, 2)), Rel::Lt) {
            Canonical::Const(false) => {}
            _ => panic!("1/2 < 1/2 should fold to false"),
        }
        // Cancellation: x - x <= 0 folds to true.
        match canonicalize(&(x() - x()), &LinExpr::zero(), Rel::Le) {
            Canonical::Const(true) => {}
            _ => panic!("0 <= 0 should fold to true"),
        }
    }
}
