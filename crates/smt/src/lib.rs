//! A small, sound and complete SMT solver for quantifier-free linear real
//! arithmetic (QF-LRA).
//!
//! This crate is the solver substrate for the CCmatic reproduction. The
//! paper uses Z3; per the reproduction rules we build the required fragment
//! from scratch:
//!
//! * [`Context`] — hash-consed term arena for Boolean structure over linear
//!   arithmetic atoms ([`term`]).
//! * [`cnf`] — polarity-aware Tseitin conversion into clauses, with
//!   canonicalized arithmetic atoms ([`atom`]).
//! * [`sat`] — a CDCL SAT solver: two-watched-literal propagation, first-UIP
//!   clause learning, VSIDS branching, phase saving, Luby restarts,
//!   incremental clause addition.
//! * [`lra`] — a general-simplex theory solver for conjunctions of linear
//!   bounds over delta-rationals (strict inequalities via an infinitesimal),
//!   producing Farkas-style conflict explanations.
//! * [`Solver`] — the lazy DPLL(T) combination: the SAT core enumerates
//!   Boolean models, the simplex checks the implied conjunction of bounds,
//!   and theory conflicts come back as blocking clauses.
//! * [`opt`] — optimization (maximize a linear objective) by binary search
//!   over solver calls, as used by the paper's "worst-case counterexample"
//!   generation.
//!
//! # Example
//!
//! ```
//! use ccmatic_smt::{Context, Solver, SatResult};
//! use ccmatic_num::{int, rat};
//!
//! let mut ctx = Context::new();
//! let x = ctx.real_var("x");
//! let y = ctx.real_var("y");
//! let xe = ctx.var(x);
//! let ye = ctx.var(y);
//! // x + y <= 1  /\  x >= 0.75  /\  (y > 0.5 \/ x < 0)
//! let sum = ctx.add(xe.clone(), ye.clone());
//! let one = ctx.constant(int(1));
//! let c1 = ctx.le(sum, one);
//! let c2 = ctx.ge(xe.clone(), ctx.constant(rat(3, 4)));
//! let g = ctx.gt(ye, ctx.constant(rat(1, 2)));
//! let l = ctx.lt(xe, ctx.constant(int(0)));
//! let c3 = ctx.or(vec![g, l]);
//! let f = ctx.and(vec![c1, c2, c3]);
//! let mut solver = Solver::new();
//! solver.assert(&ctx, f);
//! assert_eq!(solver.check(&ctx), SatResult::Unsat);
//! ```

pub mod atom;
pub mod cnf;
pub mod interrupt;
pub mod linexpr;
pub mod lra;
pub mod opt;
pub mod sat;
pub mod share;
pub mod solver;
pub mod term;

pub use interrupt::Interrupt;
pub use linexpr::LinExpr;
pub use opt::{maximize, maximize_scoped, MaximizeOutcome, MaximizeParams};
pub use sat::{PhaseInit, RestartSchedule, SearchConfig};
pub use share::{ClauseExchange, SharedClause};
pub use solver::{
    theory_counters, Certified, Model, SatResult, Solver, SolverStats, TheoryCounters,
};
pub use term::{Context, RealVar, Term};
