//! End-to-end certificate tests: every `Unsat` verdict the solver produces
//! must come with a certificate the independent checker accepts, every `Sat`
//! verdict must survive an exact-rational model audit, and corrupting a real
//! solver-produced certificate must be detected.
#![cfg(feature = "proofs")]

use ccmatic_num::{int, SmallRng};
use ccmatic_proof::{check, CheckError, ProofStep, UnsatCertificate};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver, Term};

/// A random formula AST over two real variables (same shapes as the scope
/// differential tests).
#[derive(Debug, Clone)]
enum F {
    Atom { a: i64, b: i64, c: i64, rel: u8 },
    Not(Box<F>),
    And(Vec<F>),
    Or(Vec<F>),
}

fn gen_formula(rng: &mut SmallRng, depth: u32) -> F {
    if depth == 0 || rng.gen_bool(0.45) {
        return F::Atom {
            a: rng.gen_range_i64(-2, 3),
            b: rng.gen_range_i64(-2, 3),
            c: rng.gen_range_i64(-4, 5),
            rel: rng.gen_range_i64(0, 4) as u8,
        };
    }
    match rng.gen_range_i64(0, 3) {
        0 => F::Not(Box::new(gen_formula(rng, depth - 1))),
        1 => F::And((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
        _ => F::Or((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
    }
}

fn encode(ctx: &mut Context, f: &F, x: ccmatic_smt::RealVar, y: ccmatic_smt::RealVar) -> Term {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = LinExpr::term(x, int(*a)) + LinExpr::term(y, int(*b));
            let rhs = LinExpr::constant(int(*c));
            match rel {
                0 => ctx.le(lhs, rhs),
                1 => ctx.lt(lhs, rhs),
                2 => ctx.ge(lhs, rhs),
                _ => ctx.gt(lhs, rhs),
            }
        }
        F::Not(g) => {
            let t = encode(ctx, g, x, y);
            ctx.not(t)
        }
        F::And(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.and(ts)
        }
        F::Or(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.or(ts)
        }
    }
}

/// Fresh certified solver over the conjunction of `parts`; on `Unsat` the
/// certificate must exist and replay cleanly.
fn certified_verdict(ctx: &Context, parts: &[Term]) -> SatResult {
    let mut s = Solver::new();
    s.enable_proofs();
    for &t in parts {
        s.assert(ctx, t);
    }
    let out = s.check_certified(ctx);
    match out.result {
        SatResult::Unsat => {
            let cert = out.certificate.expect("unsat verdict must carry a certificate");
            check(&cert).unwrap_or_else(|e| {
                panic!("checker rejected a solver-produced certificate: {e}\n{}", cert.to_text())
            });
            let stats = s.stats();
            assert!(stats.proof_clauses > 0 && stats.proof_bytes > 0, "stats must report log size");
        }
        SatResult::Sat => {
            assert_eq!(out.model_ok, Some(true), "model failed the exact-rational audit");
        }
        SatResult::Unknown => panic!("unbudgeted check returned Unknown"),
    }
    out.result
}

#[test]
fn random_unsat_instances_yield_accepted_certificates() {
    let mut rng = SmallRng::seed_from_u64(0xCE27);
    let (mut sat_seen, mut unsat_seen) = (0u32, 0u32);
    for _ in 0..60 {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let parts: Vec<Term> = (0..rng.gen_range_usize(1, 4))
            .map(|_| {
                let f = gen_formula(&mut rng, 2);
                encode(&mut ctx, &f, x, y)
            })
            .collect();
        match certified_verdict(&ctx, &parts) {
            SatResult::Sat => sat_seen += 1,
            SatResult::Unsat => unsat_seen += 1,
            SatResult::Unknown => unreachable!(),
        }
    }
    // The generator must actually exercise both verdicts.
    assert!(sat_seen > 5 && unsat_seen > 5, "skewed sample: {sat_seen} sat, {unsat_seen} unsat");
}

#[test]
fn scoped_probes_yield_accepted_certificates() {
    // CEGIS shape: one long-lived certified solver, scoped probes on top.
    // Certificates from later probes must replay even though earlier probes
    // left learned clauses and deletions in the log.
    let mut rng = SmallRng::seed_from_u64(0x5C07E5);
    for round in 0..15 {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let mut s = Solver::new();
        s.enable_proofs();
        let base_f = gen_formula(&mut rng, 2);
        let base_t = encode(&mut ctx, &base_f, x, y);
        s.assert(&ctx, base_t);
        for probe_idx in 0..5 {
            let probe_f = gen_formula(&mut rng, 2);
            let probe_t = encode(&mut ctx, &probe_f, x, y);
            s.push();
            s.assert(&ctx, probe_t);
            let out = s.check_certified(&ctx);
            match out.result {
                SatResult::Unsat => {
                    let cert = out.certificate.expect("unsat probe must carry a certificate");
                    check(&cert).unwrap_or_else(|e| {
                        panic!(
                            "round {round} probe {probe_idx}: checker rejected: {e}\n{}",
                            cert.to_text()
                        )
                    });
                }
                SatResult::Sat => assert_eq!(out.model_ok, Some(true)),
                SatResult::Unknown => panic!("unbudgeted check returned Unknown"),
            }
            s.pop();
        }
    }
}

/// A small deterministic UNSAT instance whose certificate contains both
/// theory lemmas and RUP steps: x ≥ 1 ∧ (x ≤ 0 ∨ x + y ≤ 0) ∧ y ≥ x.
fn solver_produced_certificate() -> UnsatCertificate {
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let ge1 = ctx.ge(ctx.var(x), ctx.constant(int(1)));
    let le0 = ctx.le(ctx.var(x), ctx.constant(int(0)));
    let sum0 = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(0)));
    let disj = ctx.or(vec![le0, sum0]);
    let yx = ctx.ge(ctx.var(y), ctx.var(x));
    let mut s = Solver::new();
    s.enable_proofs();
    s.assert(&ctx, ge1);
    s.assert(&ctx, disj);
    s.assert(&ctx, yx);
    let out = s.check_certified(&ctx);
    assert_eq!(out.result, SatResult::Unsat);
    out.certificate.expect("certificate")
}

#[test]
fn mutated_certificates_are_rejected() {
    let pristine = solver_produced_certificate();
    check(&pristine).expect("pristine certificate replays");
    assert!(
        pristine.steps.iter().any(|s| matches!(s, ProofStep::Theory { .. })),
        "instance must exercise theory lemmas"
    );

    // Corruption class 1: drop a clause the refutation depends on. Dropping
    // any single input clause must break replay — the instance is minimal in
    // the sense that every asserted constraint participates.
    let mut rejected = 0;
    for (i, step) in pristine.steps.iter().enumerate() {
        if matches!(step, ProofStep::Input { .. }) {
            let mut cert = pristine.clone();
            cert.steps.remove(i);
            if check(&cert).is_err() {
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "no dropped-input corruption was detected");

    // Corruption class 2: perturb a Farkas coefficient. Scaling one
    // multiplier breaks either cancellation or the sign of the constant.
    let mut cert = pristine.clone();
    let mut perturbed = false;
    for step in &mut cert.steps {
        if let ProofStep::Theory { farkas, .. } = step {
            if let Some(entry) = farkas.first_mut() {
                entry.1 = &entry.1 + &int(7);
                perturbed = true;
                break;
            }
        }
    }
    assert!(perturbed);
    assert!(
        matches!(
            check(&cert),
            Err(CheckError::FarkasVarsDontCancel { .. }) | Err(CheckError::FarkasNotNegative(_))
        ),
        "perturbed Farkas coefficient was not detected"
    );

    // Corruption class 3: reorder a deletion to before the clause exists.
    let mut cert = pristine.clone();
    if let Some(pos) = cert.steps.iter().position(|s| matches!(s, ProofStep::Delete { .. })) {
        let d = cert.steps.remove(pos);
        cert.steps.insert(0, d);
        assert!(matches!(check(&cert), Err(CheckError::UnknownDelete(_))));
    } else {
        // No deletions in this log: synthesize the same class by deleting a
        // clause before it is introduced.
        let id = cert
            .steps
            .iter()
            .find_map(|s| match s {
                ProofStep::Input { id, .. } => Some(*id),
                _ => None,
            })
            .expect("log has input clauses");
        cert.steps.insert(0, ProofStep::Delete { id });
        assert!(matches!(check(&cert), Err(CheckError::UnknownDelete(_))));
    }

    // Corruption class 4: strip the atom definitions; Farkas steps become
    // uncheckable.
    let mut cert = pristine.clone();
    cert.steps.retain(|s| !matches!(s, ProofStep::Atom { .. }));
    assert!(matches!(check(&cert), Err(CheckError::UnknownAtom { .. })));

    // Corruption class 5: drop the closing empty clause.
    let mut cert = pristine;
    while matches!(cert.steps.last(), Some(ProofStep::Rup { lits, .. }) if lits.is_empty()) {
        cert.steps.pop();
    }
    assert_eq!(check(&cert), Err(CheckError::NoEmptyClause));
}

#[test]
fn uncertified_solver_has_no_certificate_but_same_verdicts() {
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let lo = ctx.ge(ctx.var(x), ctx.constant(int(2)));
    let hi = ctx.lt(ctx.var(x), ctx.constant(int(2)));
    let mut s = Solver::new();
    assert!(!s.proofs_enabled());
    s.assert(&ctx, lo);
    s.assert(&ctx, hi);
    let out = s.check_certified(&ctx);
    assert_eq!(out.result, SatResult::Unsat);
    assert!(out.certificate.is_none());
    assert_eq!(s.stats().proof_clauses, 0);
}
