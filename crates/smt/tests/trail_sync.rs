//! Differential tests for trail-synchronized incremental theory solving.
//!
//! The trail-sync bridge (simplex bounds asserted/undone in lockstep with
//! the SAT trail) and theory propagation (implied atom literals with lazy
//! Farkas explanations) are pure performance features: every verdict must
//! match the legacy reset-and-reassert path bit for bit, certificates must
//! keep replaying through the independent checker, and a corrupted
//! propagation explanation must be rejected by that checker.

use ccmatic_num::{int, rat, Rat, SmallRng};
use ccmatic_proof::ProofStep;
use ccmatic_smt::{Context, LinExpr, SatResult, Solver, Term};

/// A randomly generated formula AST we can both encode and evaluate
/// (same shape as the grid-oracle suite in `random_qflra.rs`).
#[derive(Debug, Clone)]
enum F {
    Atom { a: i64, b: i64, c: i64, rel: u8 }, // a·x + b·y REL c, rel in 0..4
    Not(Box<F>),
    And(Vec<F>),
    Or(Vec<F>),
}

fn gen_formula(rng: &mut SmallRng, depth: u32) -> F {
    if depth == 0 || rng.gen_bool(0.45) {
        return F::Atom {
            a: rng.gen_range_i64(-2, 3),
            b: rng.gen_range_i64(-2, 3),
            c: rng.gen_range_i64(-4, 5),
            rel: rng.gen_range_i64(0, 4) as u8,
        };
    }
    match rng.gen_range_i64(0, 3) {
        0 => F::Not(Box::new(gen_formula(rng, depth - 1))),
        1 => F::And((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
        _ => F::Or((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
    }
}

fn encode(ctx: &mut Context, f: &F, x: ccmatic_smt::RealVar, y: ccmatic_smt::RealVar) -> Term {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = LinExpr::term(x, int(*a)) + LinExpr::term(y, int(*b));
            let rhs = LinExpr::constant(int(*c));
            match rel {
                0 => ctx.le(lhs, rhs),
                1 => ctx.lt(lhs, rhs),
                2 => ctx.ge(lhs, rhs),
                _ => ctx.gt(lhs, rhs),
            }
        }
        F::Not(g) => {
            let t = encode(ctx, g, x, y);
            ctx.not(t)
        }
        F::And(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.and(ts)
        }
        F::Or(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.or(ts)
        }
    }
}

fn eval(f: &F, x: &Rat, y: &Rat) -> bool {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = &(x * &int(*a)) + &(y * &int(*b));
            let rhs = int(*c);
            match rel {
                0 => lhs <= rhs,
                1 => lhs < rhs,
                2 => lhs >= rhs,
                _ => lhs > rhs,
            }
        }
        F::Not(g) => !eval(g, x, y),
        F::And(gs) => gs.iter().all(|g| eval(g, x, y)),
        F::Or(gs) => gs.iter().any(|g| eval(g, x, y)),
    }
}

/// Solve one formula under a given (sync, propagation) configuration and
/// return the verdict, exact-auditing any model against the formula.
fn solve(f: &F, sync: bool, propagate: bool) -> SatResult {
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let t = encode(&mut ctx, f, x, y);
    let mut solver = Solver::new();
    solver.set_theory_sync(sync);
    solver.set_theory_propagation(propagate);
    solver.assert(&ctx, t);
    let res = solver.check(&ctx);
    if res == SatResult::Sat {
        let m = solver.model().unwrap();
        let (xv, yv) = (m.real(x), m.real(y));
        assert!(
            eval(f, &xv, &yv),
            "model (x={xv}, y={yv}) does not satisfy {f:?} (sync={sync}, prop={propagate})"
        );
    }
    res
}

#[test]
fn random_formulas_agree_across_sync_and_propagation_modes() {
    let mut rng = SmallRng::seed_from_u64(20260808);
    let mut sat = 0;
    let mut unsat = 0;
    for round in 0..150 {
        let f = gen_formula(&mut rng, 3);
        let reference = solve(&f, false, false); // legacy reset-and-reassert
        let sync_prop = solve(&f, true, true); // default configuration
        let sync_only = solve(&f, true, false);
        assert_eq!(reference, sync_prop, "round {round}: sync+prop diverged on {f:?}");
        assert_eq!(reference, sync_only, "round {round}: sync-only diverged on {f:?}");
        match reference {
            SatResult::Sat => sat += 1,
            SatResult::Unsat => unsat += 1,
            SatResult::Unknown => panic!("round {round}: unexpected Unknown (no budget set)"),
        }
    }
    // Guard against a degenerate generator that only exercises one path.
    assert!(sat > 20, "only {sat} sat instances");
    assert!(unsat > 5, "only {unsat} unsat instances");
}

/// An unsat instance built so theory propagation must fire: `x ≤ 0` fixes
/// the (weaker / sibling) atoms `x ≥ 1` and `x ≥ 2` false, which unit-forces
/// the `y` atoms into the contradiction `y ≤ 0 ∧ y ≥ 1`.
fn propagation_unsat(ctx: &mut Context) -> Term {
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let x_low = ctx.le(ctx.var(x), ctx.constant(int(0)));
    let x_ge1 = ctx.ge(ctx.var(x), ctx.constant(int(1)));
    let x_ge2 = ctx.ge(ctx.var(x), ctx.constant(int(2)));
    let y_low = ctx.le(ctx.var(y), ctx.constant(int(0)));
    let y_high = ctx.ge(ctx.var(y), ctx.constant(int(1)));
    let c1 = ctx.or(vec![x_ge1, y_low]);
    let c2 = ctx.or(vec![x_ge2, y_high]);
    ctx.and(vec![x_low, c1, c2])
}

#[test]
fn certified_unsat_with_propagation_replays_clean() {
    let mut ctx = Context::new();
    let t = propagation_unsat(&mut ctx);
    let mut solver = Solver::new();
    solver.enable_proofs();
    solver.assert(&ctx, t);
    let out = solver.check_certified(&ctx);
    assert_eq!(out.result, SatResult::Unsat);
    let stats = solver.stats();
    assert!(stats.theory_props > 0, "propagation never fired: {stats:?}");
    assert!(stats.bounds_asserted > 0);
    let cert = out.certificate.expect("unsat must carry a certificate");
    // The propagation lemmas are in the log as theory steps with their
    // lazily generated Farkas explanations; the independent checker must
    // accept the whole refutation.
    let has_theory_step = cert
        .steps
        .iter()
        .any(|s| matches!(s, ProofStep::Theory { farkas, .. } if !farkas.is_empty()));
    assert!(has_theory_step, "no Farkas-witnessed theory lemma in the certificate");
    ccmatic_proof::check(&cert).expect("certificate must replay through the checker");
}

#[test]
fn corrupted_propagation_explanation_is_rejected() {
    let mut ctx = Context::new();
    let t = propagation_unsat(&mut ctx);
    let mut solver = Solver::new();
    solver.enable_proofs();
    solver.assert(&ctx, t);
    let out = solver.check_certified(&ctx);
    assert_eq!(out.result, SatResult::Unsat);
    let cert = out.certificate.expect("unsat must carry a certificate");
    ccmatic_proof::check(&cert).expect("uncorrupted certificate must replay");

    // Corrupt every theory step's Farkas witness in turn; each mutant must
    // be rejected (a negated coefficient can no longer witness
    // infeasibility of a conjunction of ≤/< rows).
    let mut corrupted = 0;
    for (i, step) in cert.steps.iter().enumerate() {
        let ProofStep::Theory { farkas, .. } = step else { continue };
        if farkas.is_empty() {
            continue;
        }
        let mut bad = cert.clone();
        let ProofStep::Theory { farkas, .. } = &mut bad.steps[i] else { unreachable!() };
        farkas[0].1 = -farkas[0].1.clone();
        assert!(
            ccmatic_proof::check(&bad).is_err(),
            "checker accepted a corrupted Farkas witness in step {i}"
        );
        corrupted += 1;
    }
    assert!(corrupted > 0, "no theory steps to corrupt — propagation produced no lemmas?");
}

#[test]
fn incremental_scopes_agree_across_sync_modes() {
    // Push/pop interleaved with checks: the synced-bounds cursor must
    // survive scope churn. Mirror every operation on a no-sync solver and
    // compare verdicts at each step.
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let base = {
        let le = ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(10)));
        let ge = ctx.ge(ctx.var(x), ctx.constant(int(0)));
        ctx.and(vec![le, ge])
    };
    let mut synced = Solver::new();
    synced.set_theory_sync(true);
    let mut legacy = Solver::new();
    legacy.set_theory_sync(false);
    for s in [&mut synced, &mut legacy] {
        s.assert(&ctx, base);
    }
    assert_eq!(synced.check(&ctx), legacy.check(&ctx));

    for k in 0..6i64 {
        let scoped = {
            let lo = ctx.ge(ctx.var(y), ctx.constant(int(k)));
            let hi = ctx.le(ctx.var(y), ctx.constant(rat(2 * k + 1, 2)));
            let cap = ctx.ge(ctx.var(x), ctx.constant(int(11 - k)));
            let either = ctx.or(vec![hi, cap]);
            ctx.and(vec![lo, either])
        };
        for s in [&mut synced, &mut legacy] {
            s.push();
            s.assert(&ctx, scoped);
        }
        assert_eq!(synced.check(&ctx), legacy.check(&ctx), "diverged in scope {k}");
        for s in [&mut synced, &mut legacy] {
            s.pop();
        }
        assert_eq!(synced.check(&ctx), legacy.check(&ctx), "diverged after pop {k}");
    }
}
