//! Randomized differential testing of the full DPLL(T) pipeline.
//!
//! Random Boolean combinations of small linear atoms over a 2-D rational
//! grid are checked against a brute-force oracle: if any grid point
//! satisfies the formula, the solver must report Sat (completeness on grid
//! witnesses); whenever the solver reports Sat, its model must actually
//! satisfy the formula (soundness, checked exactly).

use ccmatic_num::{int, rat, Rat, SmallRng};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver, Term};

/// A randomly generated formula AST we can both encode and evaluate.
#[derive(Debug, Clone)]
enum F {
    Atom { a: i64, b: i64, c: i64, rel: u8 }, // a·x + b·y REL c, rel in 0..4 (≤,<,≥,>)
    Not(Box<F>),
    And(Vec<F>),
    Or(Vec<F>),
}

fn gen_formula(rng: &mut SmallRng, depth: u32) -> F {
    if depth == 0 || rng.gen_bool(0.45) {
        return F::Atom {
            a: rng.gen_range_i64(-2, 3),
            b: rng.gen_range_i64(-2, 3),
            c: rng.gen_range_i64(-4, 5),
            rel: rng.gen_range_i64(0, 4) as u8,
        };
    }
    match rng.gen_range_i64(0, 3) {
        0 => F::Not(Box::new(gen_formula(rng, depth - 1))),
        1 => F::And((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
        _ => F::Or((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
    }
}

fn encode(ctx: &mut Context, f: &F, x: ccmatic_smt::RealVar, y: ccmatic_smt::RealVar) -> Term {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = LinExpr::term(x, int(*a)) + LinExpr::term(y, int(*b));
            let rhs = LinExpr::constant(int(*c));
            match rel {
                0 => ctx.le(lhs, rhs),
                1 => ctx.lt(lhs, rhs),
                2 => ctx.ge(lhs, rhs),
                _ => ctx.gt(lhs, rhs),
            }
        }
        F::Not(g) => {
            let t = encode(ctx, g, x, y);
            ctx.not(t)
        }
        F::And(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.and(ts)
        }
        F::Or(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.or(ts)
        }
    }
}

fn eval(f: &F, x: &Rat, y: &Rat) -> bool {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = &(x * &int(*a)) + &(y * &int(*b));
            let rhs = int(*c);
            match rel {
                0 => lhs <= rhs,
                1 => lhs < rhs,
                2 => lhs >= rhs,
                _ => lhs > rhs,
            }
        }
        F::Not(g) => !eval(g, x, y),
        F::And(gs) => gs.iter().all(|g| eval(g, x, y)),
        F::Or(gs) => gs.iter().any(|g| eval(g, x, y)),
    }
}

#[test]
fn random_formulas_vs_grid_oracle() {
    let mut rng = SmallRng::seed_from_u64(20220930);
    let mut sat_count = 0;
    let mut unsat_count = 0;
    for round in 0..120 {
        let f = gen_formula(&mut rng, 3);
        // Grid oracle: x, y ∈ {-3, -2.75, …, 3} (quarter steps).
        let mut grid_sat = false;
        'grid: for xi in -12..=12i64 {
            for yi in -12..=12i64 {
                if eval(&f, &rat(xi, 4), &rat(yi, 4)) {
                    grid_sat = true;
                    break 'grid;
                }
            }
        }
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let t = encode(&mut ctx, &f, x, y);
        let mut solver = Solver::new();
        solver.assert(&ctx, t);
        match solver.check(&ctx) {
            SatResult::Sat => {
                sat_count += 1;
                let m = solver.model().unwrap();
                let (xv, yv) = (m.real(x), m.real(y));
                assert!(
                    eval(&f, &xv, &yv),
                    "round {round}: model (x={xv}, y={yv}) does not satisfy {f:?}"
                );
            }
            SatResult::Unsat => {
                unsat_count += 1;
                assert!(
                    !grid_sat,
                    "round {round}: solver said Unsat but the grid has a witness for {f:?}"
                );
            }
            SatResult::Unknown => panic!("round {round}: unexpected Unknown (no budget set)"),
        }
    }
    // The generator should produce a healthy mix; guard against a degenerate
    // test that only ever exercises one path.
    assert!(sat_count > 20, "only {sat_count} sat instances");
    assert!(unsat_count > 5, "only {unsat_count} unsat instances");
}

#[test]
fn deep_nesting_stress() {
    // Alternating chain: (((x > 0 ∧ x < 1) ∨ y > 5) ∧ …) with 40 levels.
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let mut acc = ctx.gt(ctx.var(x), ctx.constant(int(0)));
    for i in 1..40 {
        let bound = ctx.lt(ctx.var(x), ctx.constant(int(i)));
        acc = if i % 2 == 0 { ctx.or(vec![acc, bound]) } else { ctx.and(vec![acc, bound]) };
    }
    let mut solver = Solver::new();
    solver.assert(&ctx, acc);
    assert_eq!(solver.check(&ctx), SatResult::Sat);
}

#[test]
fn unsat_core_like_conflict_layering() {
    // A system that is unsat only through a 4-atom combination:
    // x + y ≥ 10, x ≤ 2, y ≤ 2 is unsat; adding disjunctions around it must
    // still be caught.
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let s = ctx.ge(ctx.var(x) + ctx.var(y), ctx.constant(int(10)));
    let bx = ctx.le(ctx.var(x), ctx.constant(int(2)));
    let by = ctx.le(ctx.var(y), ctx.constant(int(2)));
    let esc_x = ctx.lt(ctx.var(x), ctx.constant(int(-100)));
    let choice = ctx.or(vec![bx, esc_x]);
    let mut solver = Solver::new();
    solver.assert(&ctx, s);
    solver.assert(&ctx, choice);
    solver.assert(&ctx, by);
    // x < -100 branch: x + y ≥ 10 needs y ≥ 110 > 2 — unsat both ways.
    assert_eq!(solver.check(&ctx), SatResult::Unsat);
}
