//! Differential testing of assertion scopes.
//!
//! The contract: a solver that does `push; assert S; check; pop` must answer
//! every subsequent query exactly as a fresh solver that never saw `S`, and
//! the scoped check itself must agree with a fresh solver over base ∧ S.
//! We verify both on hand-picked layerings and on random small QF-LRA
//! formulas, interleaving scoped probes with base-level growth the way the
//! CEGIS verifier does.

use ccmatic_num::{int, Rat, SmallRng};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver, Term};

/// A random formula AST over two real variables (same shape as the
/// `random_qflra` oracle test).
#[derive(Debug, Clone)]
enum F {
    Atom { a: i64, b: i64, c: i64, rel: u8 },
    Not(Box<F>),
    And(Vec<F>),
    Or(Vec<F>),
}

fn gen_formula(rng: &mut SmallRng, depth: u32) -> F {
    if depth == 0 || rng.gen_bool(0.45) {
        return F::Atom {
            a: rng.gen_range_i64(-2, 3),
            b: rng.gen_range_i64(-2, 3),
            c: rng.gen_range_i64(-4, 5),
            rel: rng.gen_range_i64(0, 4) as u8,
        };
    }
    match rng.gen_range_i64(0, 3) {
        0 => F::Not(Box::new(gen_formula(rng, depth - 1))),
        1 => F::And((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
        _ => F::Or((0..rng.gen_range_usize(2, 4)).map(|_| gen_formula(rng, depth - 1)).collect()),
    }
}

fn encode(ctx: &mut Context, f: &F, x: ccmatic_smt::RealVar, y: ccmatic_smt::RealVar) -> Term {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = LinExpr::term(x, int(*a)) + LinExpr::term(y, int(*b));
            let rhs = LinExpr::constant(int(*c));
            match rel {
                0 => ctx.le(lhs, rhs),
                1 => ctx.lt(lhs, rhs),
                2 => ctx.ge(lhs, rhs),
                _ => ctx.gt(lhs, rhs),
            }
        }
        F::Not(g) => {
            let t = encode(ctx, g, x, y);
            ctx.not(t)
        }
        F::And(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.and(ts)
        }
        F::Or(gs) => {
            let ts: Vec<Term> = gs.iter().map(|g| encode(ctx, g, x, y)).collect();
            ctx.or(ts)
        }
    }
}

fn eval(f: &F, x: &Rat, y: &Rat) -> bool {
    match f {
        F::Atom { a, b, c, rel } => {
            let lhs = &(x * &int(*a)) + &(y * &int(*b));
            let rhs = int(*c);
            match rel {
                0 => lhs <= rhs,
                1 => lhs < rhs,
                2 => lhs >= rhs,
                _ => lhs > rhs,
            }
        }
        F::Not(g) => !eval(g, x, y),
        F::And(gs) => gs.iter().all(|g| eval(g, x, y)),
        F::Or(gs) => gs.iter().any(|g| eval(g, x, y)),
    }
}

/// Check the conjunction of `parts` with a fresh solver.
fn fresh_check(ctx: &Context, parts: &[Term]) -> SatResult {
    let mut s = Solver::new();
    for &t in parts {
        s.assert(ctx, t);
    }
    s.check(ctx)
}

#[test]
fn scoped_probe_matches_fresh_solver_handpicked() {
    let mut ctx = Context::new();
    let x = ctx.real_var("x");
    let y = ctx.real_var("y");
    let base = vec![
        ctx.ge(ctx.var(x), ctx.constant(int(0))),
        ctx.le(ctx.var(x) + ctx.var(y), ctx.constant(int(10))),
    ];
    let probes = vec![
        ctx.ge(ctx.var(y), ctx.constant(int(20))), // unsat with base
        ctx.ge(ctx.var(y), ctx.constant(int(5))),  // sat
        ctx.lt(ctx.var(x), ctx.constant(int(0))),  // unsat (contradicts base)
        ctx.eq(ctx.var(y), ctx.var(x) + ctx.constant(int(3))), // sat
    ];

    let mut inc = Solver::new();
    for &t in &base {
        inc.assert(&ctx, t);
    }
    for &p in &probes {
        inc.push();
        inc.assert(&ctx, p);
        let got = inc.check(&ctx);
        inc.pop();
        let mut parts = base.clone();
        parts.push(p);
        assert_eq!(got, fresh_check(&ctx, &parts), "probe {p:?} diverged from fresh solver");
        // The popped solver must still agree with the bare base.
        assert_eq!(inc.check(&ctx), fresh_check(&ctx, &base));
    }
}

#[test]
fn scoped_probes_match_fresh_solver_on_random_formulas() {
    let mut rng = SmallRng::seed_from_u64(777);
    for round in 0..40 {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let base_f = gen_formula(&mut rng, 2);
        let base_t = encode(&mut ctx, &base_f, x, y);

        let mut inc = Solver::new();
        inc.assert(&ctx, base_t);
        let base_verdict = inc.check(&ctx);
        assert_eq!(base_verdict, fresh_check(&ctx, &[base_t]), "round {round}: base diverged");

        // Several scoped probes against the same base, so learned clauses
        // from earlier probes are live when later ones run.
        for probe_idx in 0..4 {
            let probe_f = gen_formula(&mut rng, 2);
            let probe_t = encode(&mut ctx, &probe_f, x, y);
            inc.push();
            inc.assert(&ctx, probe_t);
            let got = inc.check(&ctx);
            if got == SatResult::Sat {
                let m = inc.model().unwrap();
                let (xv, yv) = (m.real(x), m.real(y));
                assert!(
                    eval(&base_f, &xv, &yv) && eval(&probe_f, &xv, &yv),
                    "round {round} probe {probe_idx}: scoped model is not a real model"
                );
            }
            inc.pop();
            assert_eq!(
                got,
                fresh_check(&ctx, &[base_t, probe_t]),
                "round {round} probe {probe_idx}: scoped verdict diverged from fresh solver"
            );
        }

        // After all pops the solver still answers the bare base correctly.
        assert_eq!(inc.check(&ctx), base_verdict, "round {round}: base verdict drifted");
    }
}

#[test]
fn base_growth_interleaved_with_scopes() {
    // CEGIS shape: the base accumulates blocking constraints between scoped
    // probes. Every intermediate answer must match a fresh solver.
    let mut rng = SmallRng::seed_from_u64(4242);
    for round in 0..25 {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let mut base_parts: Vec<Term> = Vec::new();
        let mut inc = Solver::new();
        for step in 0..3 {
            let grow_f = gen_formula(&mut rng, 1);
            let grow_t = encode(&mut ctx, &grow_f, x, y);
            inc.assert(&ctx, grow_t);
            base_parts.push(grow_t);

            let probe_f = gen_formula(&mut rng, 2);
            let probe_t = encode(&mut ctx, &probe_f, x, y);
            inc.push();
            inc.assert(&ctx, probe_t);
            let got = inc.check(&ctx);
            inc.pop();

            let mut parts = base_parts.clone();
            parts.push(probe_t);
            assert_eq!(
                got,
                fresh_check(&ctx, &parts),
                "round {round} step {step}: scoped verdict diverged"
            );
            assert_eq!(
                inc.check(&ctx),
                fresh_check(&ctx, &base_parts),
                "round {round} step {step}: base verdict diverged after pop"
            );
        }
    }
}

#[test]
fn nested_scope_probes_match_fresh() {
    let mut rng = SmallRng::seed_from_u64(31337);
    for round in 0..20 {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let y = ctx.real_var("y");
        let f0 = gen_formula(&mut rng, 2);
        let f1 = gen_formula(&mut rng, 2);
        let f2 = gen_formula(&mut rng, 1);
        let t0 = encode(&mut ctx, &f0, x, y);
        let t1 = encode(&mut ctx, &f1, x, y);
        let t2 = encode(&mut ctx, &f2, x, y);

        let mut inc = Solver::new();
        inc.assert(&ctx, t0);
        inc.push();
        inc.assert(&ctx, t1);
        let v01 = inc.check(&ctx);
        inc.push();
        inc.assert(&ctx, t2);
        let v012 = inc.check(&ctx);
        inc.pop();
        let v01_again = inc.check(&ctx);
        inc.pop();
        let v0 = inc.check(&ctx);

        assert_eq!(v01, fresh_check(&ctx, &[t0, t1]), "round {round}: ⟨0,1⟩");
        assert_eq!(v012, fresh_check(&ctx, &[t0, t1, t2]), "round {round}: ⟨0,1,2⟩");
        assert_eq!(v01_again, v01, "round {round}: inner pop corrupted middle scope");
        assert_eq!(v0, fresh_check(&ctx, &[t0]), "round {round}: base after full unwind");
    }
}
