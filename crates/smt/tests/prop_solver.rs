//! Property-based tests of the SMT solver with *constructed* ground truth:
//! instances that are feasible or infeasible by construction, so soundness
//! and completeness are checked without an oracle solver.

use ccmatic_num::{int, rat, Rat};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver};
use proptest::prelude::*;

/// Strategy: a random point x* in Q³ with quarter-grid coordinates.
fn point() -> impl Strategy<Value = Vec<Rat>> {
    proptest::collection::vec((-24i64..24).prop_map(|n| rat(n, 4)), 3)
}

/// Strategy: random constraint rows (integer coefficients).
fn rows(n: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::vec(proptest::collection::vec(-3i64..4, 3), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasible by construction: every constraint is `a·x ≤ a·x* + slack`
    /// with slack ≥ 0, so x* is a witness. The solver must say Sat and its
    /// model must satisfy every constraint.
    #[test]
    fn feasible_by_construction(xstar in point(), coeffs in rows(6), slacks in proptest::collection::vec(0i64..8, 6)) {
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        for (row, slack) in coeffs.iter().zip(&slacks) {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(*slack);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        prop_assert_eq!(solver.check(&ctx), SatResult::Sat);
        let m = solver.model().unwrap();
        for (row, slack) in coeffs.iter().zip(&slacks) {
            let mut lhs = Rat::zero();
            let mut bound = Rat::from(*slack);
            for (i, &c) in row.iter().enumerate() {
                lhs += &(&int(c) * &m.real(vars[i]));
                bound += &(&int(c) * &xstar[i]);
            }
            prop_assert!(lhs <= bound, "model violates a constraint");
        }
    }

    /// Infeasible by construction: inject the contradictory pair
    /// `e ≤ b ∧ e ≥ b + 1` among arbitrary satisfiable noise. The solver
    /// must say Unsat no matter the noise.
    #[test]
    fn infeasible_by_construction(
        xstar in point(),
        noise in rows(4),
        pair_row in proptest::collection::vec(-3i64..4, 3),
        b in -10i64..10,
    ) {
        // Skip the degenerate all-zero contradiction row (0 ≤ b ∧ 0 ≥ b+1
        // is still unsat, but canonicalization folds it — also fine; keep it).
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        // Satisfiable noise around x*.
        for row in &noise {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(1i64);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        // The contradiction.
        let mut e = LinExpr::zero();
        for (i, &c) in pair_row.iter().enumerate() {
            e = e + LinExpr::term(vars[i], int(c));
        }
        let le = ctx.le(e.clone(), LinExpr::constant(int(b)));
        let ge = ctx.ge(e, LinExpr::constant(int(b + 1)));
        solver.assert(&ctx, le);
        solver.assert(&ctx, ge);
        prop_assert_eq!(solver.check(&ctx), SatResult::Unsat);
    }

    /// Disjunction completeness: `⋁ᵢ (x = kᵢ)` over distinct constants is
    /// always satisfiable, and the model picks one of the kᵢ.
    #[test]
    fn disjunction_of_points(ks in proptest::collection::btree_set(-20i64..20, 1..6)) {
        let ks: Vec<i64> = ks.into_iter().collect();
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let arms: Vec<_> = ks
            .iter()
            .map(|&k| ctx.eq(LinExpr::var(x), LinExpr::constant(int(k))))
            .collect();
        let f = ctx.or(arms);
        let mut solver = Solver::new();
        solver.assert(&ctx, f);
        prop_assert_eq!(solver.check(&ctx), SatResult::Sat);
        let v = solver.model().unwrap().real(x);
        prop_assert!(ks.iter().any(|&k| v == int(k)), "model {v} not among the points");
    }

    /// Incremental consistency: checking twice, or adding an already-implied
    /// constraint, never changes a Sat verdict to Unsat.
    #[test]
    fn incremental_monotone_consistency(xstar in point(), coeffs in rows(3)) {
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        for row in &coeffs {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(2i64);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        prop_assert_eq!(solver.check(&ctx), SatResult::Sat);
        // Re-check: same verdict.
        prop_assert_eq!(solver.check(&ctx), SatResult::Sat);
        // Add a tautology and check again.
        let x0 = ctx.le(LinExpr::var(vars[0]), LinExpr::var(vars[0]) + LinExpr::constant(int(1)));
        solver.assert(&ctx, x0);
        prop_assert_eq!(solver.check(&ctx), SatResult::Sat);
    }

    /// Negation soundness: for any conjunction of atoms over one variable,
    /// F and ¬F can't both be satisfiable *with the same model value*.
    #[test]
    fn negation_exclusive_on_models(bounds in proptest::collection::vec((-10i64..10, 0u8..4), 1..5)) {
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let atoms: Vec<_> = bounds
            .iter()
            .map(|&(b, kind)| {
                let lhs = LinExpr::var(x);
                let rhs = LinExpr::constant(int(b));
                match kind {
                    0 => ctx.le(lhs, rhs),
                    1 => ctx.lt(lhs, rhs),
                    2 => ctx.ge(lhs, rhs),
                    _ => ctx.gt(lhs, rhs),
                }
            })
            .collect();
        let f = ctx.and(atoms);
        let mut s1 = Solver::new();
        s1.assert(&ctx, f);
        if s1.check(&ctx) == SatResult::Sat {
            let v = s1.model().unwrap().real(x);
            // v must satisfy every bound literally.
            for &(b, kind) in &bounds {
                let ok = match kind {
                    0 => v <= int(b),
                    1 => v < int(b),
                    2 => v >= int(b),
                    _ => v > int(b),
                };
                prop_assert!(ok, "model {v} violates bound ({b}, kind {kind})");
            }
        }
    }
}
