//! Randomized tests of the SMT solver with *constructed* ground truth:
//! instances that are feasible or infeasible by construction, so soundness
//! and completeness are checked without an oracle solver. (Loop-based with
//! a seeded local PRNG — no external property-testing crate is available in
//! this build environment.)

use ccmatic_num::{int, rat, Rat, SmallRng};
use ccmatic_smt::{Context, LinExpr, SatResult, Solver};

const CASES: usize = 64;

/// A random point x* in Q³ with quarter-grid coordinates.
fn point(rng: &mut SmallRng) -> Vec<Rat> {
    (0..3).map(|_| rat(rng.gen_range_i64(-24, 24), 4)).collect()
}

/// Random constraint rows (integer coefficients in [-3, 3]).
fn rows(rng: &mut SmallRng, n: usize) -> Vec<Vec<i64>> {
    (0..n).map(|_| (0..3).map(|_| rng.gen_range_i64(-3, 4)).collect()).collect()
}

/// Feasible by construction: every constraint is `a·x ≤ a·x* + slack`
/// with slack ≥ 0, so x* is a witness. The solver must say Sat and its
/// model must satisfy every constraint.
#[test]
fn feasible_by_construction() {
    let mut rng = SmallRng::seed_from_u64(101);
    for _ in 0..CASES {
        let xstar = point(&mut rng);
        let coeffs = rows(&mut rng, 6);
        let slacks: Vec<i64> = (0..6).map(|_| rng.gen_range_i64(0, 8)).collect();
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        for (row, slack) in coeffs.iter().zip(&slacks) {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(*slack);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        assert_eq!(solver.check(&ctx), SatResult::Sat);
        let m = solver.model().unwrap();
        for (row, slack) in coeffs.iter().zip(&slacks) {
            let mut lhs = Rat::zero();
            let mut bound = Rat::from(*slack);
            for (i, &c) in row.iter().enumerate() {
                lhs += &(&int(c) * &m.real(vars[i]));
                bound += &(&int(c) * &xstar[i]);
            }
            assert!(lhs <= bound, "model violates a constraint");
        }
    }
}

/// Infeasible by construction: inject the contradictory pair
/// `e ≤ b ∧ e ≥ b + 1` among arbitrary satisfiable noise. The solver
/// must say Unsat no matter the noise.
#[test]
fn infeasible_by_construction() {
    let mut rng = SmallRng::seed_from_u64(102);
    for _ in 0..CASES {
        let xstar = point(&mut rng);
        let noise = rows(&mut rng, 4);
        let pair_row: Vec<i64> = (0..3).map(|_| rng.gen_range_i64(-3, 4)).collect();
        let b = rng.gen_range_i64(-10, 10);
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        // Satisfiable noise around x*.
        for row in &noise {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(1i64);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        // The contradiction (the all-zero row folds to `0 ≤ b ∧ 0 ≥ b+1`,
        // which is still unsat — also fine).
        let mut e = LinExpr::zero();
        for (i, &c) in pair_row.iter().enumerate() {
            e = e + LinExpr::term(vars[i], int(c));
        }
        let le = ctx.le(e.clone(), LinExpr::constant(int(b)));
        let ge = ctx.ge(e, LinExpr::constant(int(b + 1)));
        solver.assert(&ctx, le);
        solver.assert(&ctx, ge);
        assert_eq!(solver.check(&ctx), SatResult::Unsat);
    }
}

/// Disjunction completeness: `⋁ᵢ (x = kᵢ)` over distinct constants is
/// always satisfiable, and the model picks one of the kᵢ.
#[test]
fn disjunction_of_points() {
    let mut rng = SmallRng::seed_from_u64(103);
    for _ in 0..CASES {
        let mut ks: Vec<i64> =
            (0..rng.gen_range_usize(1, 6)).map(|_| rng.gen_range_i64(-20, 20)).collect();
        ks.sort_unstable();
        ks.dedup();
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let arms: Vec<_> =
            ks.iter().map(|&k| ctx.eq(LinExpr::var(x), LinExpr::constant(int(k)))).collect();
        let f = ctx.or(arms);
        let mut solver = Solver::new();
        solver.assert(&ctx, f);
        assert_eq!(solver.check(&ctx), SatResult::Sat);
        let v = solver.model().unwrap().real(x);
        assert!(ks.iter().any(|&k| v == int(k)), "model {v} not among the points");
    }
}

/// Incremental consistency: checking twice, or adding an already-implied
/// constraint, never changes a Sat verdict to Unsat.
#[test]
fn incremental_monotone_consistency() {
    let mut rng = SmallRng::seed_from_u64(104);
    for _ in 0..CASES {
        let xstar = point(&mut rng);
        let coeffs = rows(&mut rng, 3);
        let mut ctx = Context::new();
        let vars: Vec<_> = (0..3).map(|i| ctx.real_var(format!("x{i}"))).collect();
        let mut solver = Solver::new();
        for row in &coeffs {
            let mut lhs = LinExpr::zero();
            let mut bound = Rat::from(2i64);
            for (i, &c) in row.iter().enumerate() {
                lhs = lhs + LinExpr::term(vars[i], int(c));
                bound += &(&int(c) * &xstar[i]);
            }
            let t = ctx.le(lhs, LinExpr::constant(bound));
            solver.assert(&ctx, t);
        }
        assert_eq!(solver.check(&ctx), SatResult::Sat);
        // Re-check: same verdict.
        assert_eq!(solver.check(&ctx), SatResult::Sat);
        // Add a tautology and check again.
        let x0 = ctx.le(LinExpr::var(vars[0]), LinExpr::var(vars[0]) + LinExpr::constant(int(1)));
        solver.assert(&ctx, x0);
        assert_eq!(solver.check(&ctx), SatResult::Sat);
    }
}

/// Model soundness for conjunctions of one-variable atoms: whenever the
/// solver reports Sat, its model value satisfies every bound literally.
#[test]
fn negation_exclusive_on_models() {
    let mut rng = SmallRng::seed_from_u64(105);
    for _ in 0..CASES {
        let bounds: Vec<(i64, u8)> = (0..rng.gen_range_usize(1, 5))
            .map(|_| (rng.gen_range_i64(-10, 10), rng.gen_range_i64(0, 4) as u8))
            .collect();
        let mut ctx = Context::new();
        let x = ctx.real_var("x");
        let atoms: Vec<_> = bounds
            .iter()
            .map(|&(b, kind)| {
                let lhs = LinExpr::var(x);
                let rhs = LinExpr::constant(int(b));
                match kind {
                    0 => ctx.le(lhs, rhs),
                    1 => ctx.lt(lhs, rhs),
                    2 => ctx.ge(lhs, rhs),
                    _ => ctx.gt(lhs, rhs),
                }
            })
            .collect();
        let f = ctx.and(atoms);
        let mut s1 = Solver::new();
        s1.assert(&ctx, f);
        if s1.check(&ctx) == SatResult::Sat {
            let v = s1.model().unwrap().real(x);
            // v must satisfy every bound literally.
            for &(b, kind) in &bounds {
                let ok = match kind {
                    0 => v <= int(b),
                    1 => v < int(b),
                    2 => v >= int(b),
                    _ => v > int(b),
                };
                assert!(ok, "model {v} violates bound ({b}, kind {kind})");
            }
        }
    }
}
