//! Adaptive-bitrate (ABR) streaming verifier — the paper's §5
//! generalization.
//!
//! The paper reports: *"We were able to reuse CCAC's environment model and
//! encode video quality/stall in terms of playback buffer to build a
//! verifier for ABR."* This crate is that verifier. It reuses the same
//! adversarial-bandwidth idea as the congestion-control model (per-step
//! delivery chosen by the solver inside a bounded band, the analogue of the
//! token-bucket + jitter pair) and layers playback-buffer dynamics on top:
//!
//! * one time step = one chunk duration (normalized to 1 s);
//! * the player runs a *threshold rule*: fetch the high bitrate when the
//!   buffer is at or above a threshold θ, else the low bitrate;
//! * a chunk at bitrate `r` needs `r` bytes; per-step delivery `δ(t)` is
//!   adversarial in `[bw_min, bw_max]`;
//! * the buffer gains `δ(t)/r(t)` seconds of video and drains 1 s of
//!   playback per step. Division by the (binary) bitrate choice is encoded
//!   exactly with the same conditional-linearization trick the CCmatic
//!   generator uses for coefficient products.
//!
//! The desired property mirrors the CCA one in structure (stall-freedom in
//! place of bounded delay, video quality in place of utilization, and a
//! buffer-growth escape hatch in place of the cwnd-direction disjuncts):
//!
//! ```text
//! (∀t. buffer(t) ≥ 0)  ∧  (#high-quality chunks ≥ q_min  ∨  buffer(T) > buffer(0))
//! ```
//!
//! `verify` reports either a proof (no bandwidth trace within the band can
//! stall the player or starve quality) or a concrete adversarial bandwidth
//! schedule.

use ccmatic_num::Rat;
use ccmatic_smt::{Context, LinExpr, RealVar, SatResult, Solver, Term};
use std::fmt;

/// Parameters of the ABR verification query.
#[derive(Clone, Debug)]
pub struct AbrConfig {
    /// Number of chunks (= steps) in the window.
    pub horizon: usize,
    /// Adversarial per-step delivery band, in bytes per chunk duration.
    pub bw_min: Rat,
    /// Upper end of the delivery band.
    pub bw_max: Rat,
    /// Low-rung bitrate (bytes per chunk).
    pub r_low: Rat,
    /// High-rung bitrate (bytes per chunk).
    pub r_high: Rat,
    /// Playback buffer at the window start, in seconds.
    pub init_buffer: Rat,
    /// The rule's switch-up threshold θ: fetch high when `buffer ≥ θ`.
    pub threshold: Rat,
    /// Minimum number of high-rung chunks for the quality disjunct.
    pub min_high_chunks: usize,
}

impl Default for AbrConfig {
    fn default() -> Self {
        AbrConfig {
            horizon: 8,
            bw_min: Rat::from(2i64),
            bw_max: Rat::from(3i64),
            r_low: Rat::one(),
            r_high: Rat::from(2i64),
            init_buffer: Rat::from(2i64),
            threshold: Rat::from(2i64),
            min_high_chunks: 1,
        }
    }
}

/// A concrete adversarial schedule breaking the rule.
#[derive(Clone, Debug)]
pub struct AbrTrace {
    /// Per-step delivered bytes.
    pub delivered: Vec<Rat>,
    /// Buffer level before each step.
    pub buffer: Vec<Rat>,
    /// Whether the rule chose the high rung each step.
    pub chose_high: Vec<bool>,
}

impl fmt::Display for AbrTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>4} {:>10} {:>10} {:>6}", "t", "buffer", "delivered", "rung")?;
        for t in 0..self.delivered.len() {
            writeln!(
                f,
                "{:>4} {:>10} {:>10} {:>6}",
                t,
                format!("{:.3}", self.buffer[t].to_f64()),
                format!("{:.3}", self.delivered[t].to_f64()),
                if self.chose_high[t] { "high" } else { "low" },
            )?;
        }
        write!(f, "final buffer {:.3}", self.buffer.last().map(|b| b.to_f64()).unwrap_or(0.0))
    }
}

struct AbrVars {
    delivered: Vec<RealVar>,
    buffer: Vec<RealVar>,
    /// Boolean choice terms (true = high rung).
    choice: Vec<Term>,
    choice_vars: Vec<ccmatic_smt::term::BoolVar>,
}

fn encode(ctx: &mut Context, cfg: &AbrConfig) -> (AbrVars, Term) {
    let n = cfg.horizon;
    let delivered: Vec<RealVar> = (0..n).map(|t| ctx.real_var(format!("δ[{t}]"))).collect();
    let buffer: Vec<RealVar> = (0..=n).map(|t| ctx.real_var(format!("buf[{t}]"))).collect();
    let mut choice = Vec::with_capacity(n);
    let mut choice_vars = Vec::with_capacity(n);
    let mut cs: Vec<Term> = Vec::new();

    cs.push(ctx.eq(LinExpr::var(buffer[0]), LinExpr::constant(cfg.init_buffer.clone())));

    for t in 0..n {
        // Adversarial delivery band (the network's freedom, mirroring the
        // CCAC token band).
        cs.push(ctx.ge(LinExpr::var(delivered[t]), LinExpr::constant(cfg.bw_min.clone())));
        cs.push(ctx.le(LinExpr::var(delivered[t]), LinExpr::constant(cfg.bw_max.clone())));

        // Rule: high ⟺ buffer ≥ θ.
        let b = ctx.bool_var(format!("high[{t}]"));
        let ccmatic_smt::term::TermData::BoolVar(bv) = ctx.data(b).clone() else {
            unreachable!("bool_var returns a BoolVar term")
        };
        let above = ctx.ge(LinExpr::var(buffer[t]), LinExpr::constant(cfg.threshold.clone()));
        let rule = ctx.iff(b, above);
        cs.push(rule);

        // Buffer update: buf(t+1) = buf(t) + δ(t)/r(t) − 1, with the
        // division linearized per branch of the binary choice.
        let gain_high = LinExpr::term(delivered[t], cfg.r_high.recip());
        let gain_low = LinExpr::term(delivered[t], cfg.r_low.recip());
        let next = LinExpr::var(buffer[t + 1]);
        let base = LinExpr::var(buffer[t]) - LinExpr::constant(Rat::one());
        let eq_high = ctx.eq(next.clone(), base.clone() + gain_high);
        let eq_low = ctx.eq(next, base + gain_low);
        let bind_high = ctx.implies(b, eq_high);
        let nb = ctx.not(b);
        let bind_low = ctx.implies(nb, eq_low);
        cs.push(bind_high);
        cs.push(bind_low);

        choice.push(b);
        choice_vars.push(bv);
    }

    (AbrVars { delivered, buffer, choice, choice_vars }, ctx.and(cs))
}

/// The desired property: stall-freedom, plus quality or buffer growth.
/// Returns `(definitions, property)`: the indicator-variable definitions
/// must be asserted unconditionally (they are part of the model, not of the
/// negated property).
fn desired(ctx: &mut Context, cfg: &AbrConfig, vars: &AbrVars) -> (Term, Term) {
    let n = cfg.horizon;
    // No stall: buffer never dips below zero.
    let mut no_stall = Vec::with_capacity(n + 1);
    for t in 0..=n {
        no_stall.push(ctx.ge(LinExpr::var(vars.buffer[t]), LinExpr::zero()));
    }
    let no_stall = ctx.and(no_stall);

    // Quality: at least `min_high_chunks` high-rung fetches. Encoded by
    // summing indicator variables tied to the Boolean choices.
    let mut indicator_sum = LinExpr::zero();
    let mut binds = Vec::new();
    for (t, &b) in vars.choice.iter().enumerate() {
        let ind = ctx.real_var(format!("ind[{t}]"));
        let one = ctx.eq(LinExpr::var(ind), LinExpr::constant(Rat::one()));
        let zero = ctx.eq(LinExpr::var(ind), LinExpr::zero());
        let b_then = ctx.implies(b, one);
        let nb = ctx.not(b);
        let b_else = ctx.implies(nb, zero);
        binds.push(b_then);
        binds.push(b_else);
        indicator_sum = indicator_sum + LinExpr::var(ind);
    }
    let quality = ctx.ge(indicator_sum, LinExpr::constant(Rat::from(cfg.min_high_chunks as i64)));
    let growth = ctx.gt(LinExpr::var(vars.buffer[cfg.horizon]), LinExpr::var(vars.buffer[0]));
    let quality_or_growth = ctx.or(vec![quality, growth]);
    let binds = ctx.and(binds);
    let prop = ctx.and(vec![no_stall, quality_or_growth]);
    (binds, prop)
}

/// Verify the threshold rule of `cfg` against every bandwidth schedule in
/// the band. `Ok(())` is a proof; `Err` is a concrete breaking schedule.
pub fn verify(cfg: &AbrConfig) -> Result<(), AbrTrace> {
    let mut ctx = Context::new();
    let (vars, model_cs) = encode(&mut ctx, cfg);
    let (definitions, prop) = desired(&mut ctx, cfg, &vars);
    let bad = ctx.not(prop);
    let mut solver = Solver::new();
    solver.assert(&ctx, model_cs);
    solver.assert(&ctx, definitions);
    solver.assert(&ctx, bad);
    match solver.check(&ctx) {
        SatResult::Unsat => Ok(()),
        SatResult::Sat => {
            let m = solver.model().unwrap();
            Err(AbrTrace {
                delivered: vars.delivered.iter().map(|&v| m.real(v)).collect(),
                buffer: vars.buffer.iter().map(|&v| m.real(v)).collect(),
                chose_high: vars.choice_vars.iter().map(|&b| m.bool_var(b)).collect(),
            })
        }
        SatResult::Unknown => unreachable!("no conflict budget configured"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};

    #[test]
    fn ample_bandwidth_certifies_rule() {
        // bw_min ≥ r_high: even all-high fetching gains buffer; no stall and
        // quality is easy.
        let cfg = AbrConfig {
            bw_min: int(2),
            bw_max: int(3),
            r_low: int(1),
            r_high: int(2),
            threshold: int(2),
            init_buffer: int(2),
            min_high_chunks: 1,
            horizon: 6,
        };
        assert!(verify(&cfg).is_ok(), "rule must be safe when bw_min ≥ r_high");
    }

    #[test]
    fn starved_band_produces_stall_counterexample() {
        // bw_max < r_low: every schedule drains the buffer; stall guaranteed
        // once the window is long enough.
        let cfg = AbrConfig {
            bw_min: rat(1, 4),
            bw_max: rat(1, 2),
            r_low: int(1),
            r_high: int(2),
            threshold: int(2),
            init_buffer: int(2),
            min_high_chunks: 0,
            horizon: 8,
        };
        let trace = verify(&cfg).expect_err("starved band must break the rule");
        // The counterexample must actually exhibit a negative buffer.
        assert!(
            trace.buffer.iter().any(|b| b.is_negative()),
            "counterexample should show a stall: {trace}"
        );
        // And respect the bandwidth band.
        for d in &trace.delivered {
            assert!(d >= &rat(1, 4) && d <= &rat(1, 2));
        }
    }

    #[test]
    fn aggressive_threshold_is_refuted_marginal_band() {
        // Band sits between the rungs (can sustain low, not high). A
        // threshold of 0 (always fetch high) must stall; the verifier finds
        // the schedule.
        let cfg = AbrConfig {
            bw_min: int(1),
            bw_max: rat(3, 2),
            r_low: int(1),
            r_high: int(2),
            threshold: int(0),
            init_buffer: int(1),
            min_high_chunks: 0,
            horizon: 8,
        };
        assert!(verify(&cfg).is_err(), "always-high under marginal bandwidth must stall");
    }

    #[test]
    fn conservative_threshold_survives_marginal_band() {
        // Same marginal band, but a high threshold: the rule only upgrades
        // with lots of buffer headroom and downgrades before stalling.
        let cfg = AbrConfig {
            bw_min: int(1),
            bw_max: rat(3, 2),
            r_low: int(1),
            r_high: int(2),
            threshold: int(6),
            init_buffer: int(2),
            min_high_chunks: 0,
            horizon: 6,
        };
        assert!(
            verify(&cfg).is_ok(),
            "conservative threshold must be safe: low rung is sustainable"
        );
    }

    #[test]
    fn quality_floor_can_be_unattainable() {
        // Bandwidth sustains only the low rung, and the property demands a
        // high chunk without the growth escape: counterexample expected
        // (adversary keeps the buffer below θ so the rule never upgrades).
        let cfg = AbrConfig {
            bw_min: int(1),
            bw_max: int(1),
            r_low: int(1),
            r_high: int(2),
            threshold: int(4),
            init_buffer: int(2),
            min_high_chunks: 1,
            horizon: 6,
        };
        let trace = verify(&cfg).expect_err("quality floor unattainable at low bandwidth");
        assert!(trace.chose_high.iter().all(|&h| !h), "rule never upgrades: {trace}");
    }
}
