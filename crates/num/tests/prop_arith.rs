//! Randomized property tests for the exact-arithmetic substrate.
//!
//! These compare BigInt/Rat operations against i128 reference arithmetic on
//! ranges where i128 cannot overflow, and check algebraic laws on ranges
//! where it can. Each property runs a few hundred seeded-deterministic
//! cases (no external property-testing crate: the registry is unreachable
//! in this build environment).

use ccmatic_num::{BigInt, DeltaRat, Rat, SmallRng};

const CASES: usize = 256;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

fn any_i64(rng: &mut SmallRng) -> i64 {
    rng.next_u64() as i64
}

fn any_i128(rng: &mut SmallRng) -> i128 {
    ((rng.next_u64() as i128) << 64) | rng.next_u64() as i128
}

#[test]
fn add_sub_mul_match_i128() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        let b = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        assert_eq!(&bi(a) + &bi(b), bi(a + b));
        assert_eq!(&bi(a) - &bi(b), bi(a - b));
        let am = rng.gen_range_i64(-1_000_000_000, 1_000_000_000) as i128;
        let bm = rng.gen_range_i64(-1_000_000_000, 1_000_000_000) as i128;
        assert_eq!(&bi(am) * &bi(bm), bi(am * bm));
    }
}

#[test]
fn divmod_matches_i128() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        let b = rng.gen_range_i64(-1_000_000, 1_000_000) as i128;
        if b == 0 {
            continue;
        }
        let (q, r) = bi(a).divmod(&bi(b));
        assert_eq!(q, bi(a / b));
        assert_eq!(r, bi(a % b));
    }
}

#[test]
fn divmod_reconstructs() {
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b) = (any_i64(&mut rng), any_i64(&mut rng));
        if b == 0 {
            continue;
        }
        let (a, b) = (BigInt::from(a), BigInt::from(b));
        let (q, r) = a.divmod(&b);
        assert_eq!(&(&q * &b) + &r, a.clone());
        assert!(r.abs() < b.abs());
    }
}

#[test]
fn ring_laws_hold_on_full_i64_range() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..CASES {
        let a = BigInt::from(any_i64(&mut rng));
        let b = BigInt::from(any_i64(&mut rng));
        let c = BigInt::from(any_i64(&mut rng));
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c), "associativity");
        assert_eq!(&a + &b, &b + &a, "commutativity");
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c), "distributivity");
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..CASES {
        let a = BigInt::from(any_i64(&mut rng));
        let b = BigInt::from(any_i64(&mut rng));
        let g = a.gcd(&b);
        if !g.is_zero() {
            assert!(a.divmod(&g).1.is_zero());
            assert!(b.divmod(&g).1.is_zero());
        } else {
            assert!(a.is_zero() && b.is_zero());
        }
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..CASES {
        let a = any_i128(&mut rng);
        let v = BigInt::from(a);
        let s = v.to_string();
        assert_eq!(BigInt::from_decimal(&s).unwrap(), v);
        assert_eq!(s, a.to_string());
    }
}

#[test]
fn ordering_matches_i128() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..CASES {
        let (a, b) = (any_i128(&mut rng), any_i128(&mut rng));
        assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }
}

fn small_rat(rng: &mut SmallRng) -> Rat {
    Rat::new(BigInt::from(rng.gen_range_i64(-1000, 1000)), BigInt::from(rng.gen_range_i64(1, 100)))
}

#[test]
fn rat_field_laws() {
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..CASES {
        let a = small_rat(&mut rng);
        let b = small_rat(&mut rng);
        let c = small_rat(&mut rng);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        assert!((&a - &a).is_zero());
        if !a.is_zero() {
            assert_eq!(&a * &a.recip(), Rat::one());
        }
    }
}

#[test]
fn rat_ordering_consistent_with_f64() {
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..CASES {
        let an = rng.gen_range_i64(-1000, 1000);
        let ad = rng.gen_range_i64(1, 100);
        let bn = rng.gen_range_i64(-1000, 1000);
        let bd = rng.gen_range_i64(1, 100);
        let a = Rat::new(BigInt::from(an), BigInt::from(ad));
        let b = Rat::new(BigInt::from(bn), BigInt::from(bd));
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            assert_eq!(a < b, fa < fb);
        }
    }
}

#[test]
fn rat_floor_ceil_bracket() {
    let mut rng = SmallRng::seed_from_u64(10);
    for _ in 0..CASES {
        let a = Rat::new(
            BigInt::from(rng.gen_range_i64(-10_000, 10_000)),
            BigInt::from(rng.gen_range_i64(1, 100)),
        );
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        assert!(fl <= a && a <= ce);
        assert!(&ce - &fl <= Rat::one());
    }
}

fn small_delta(rng: &mut SmallRng) -> DeltaRat {
    DeltaRat::new(Rat::from(rng.gen_range_i64(-100, 100)), Rat::from(rng.gen_range_i64(-5, 5)))
}

#[test]
fn delta_order_is_total_and_translation_invariant() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..CASES {
        let a = small_delta(&mut rng);
        let b = small_delta(&mut rng);
        let t = DeltaRat::new(
            Rat::from(rng.gen_range_i64(-50, 50)),
            Rat::from(rng.gen_range_i64(-3, 3)),
        );
        assert_eq!((&a + &t).cmp(&(&b + &t)), a.cmp(&b));
    }
}

// --- differential suite: small-value fast path vs always-bignum reference ---
//
// The fast path (inline i64 + i128 intermediates) and the limb path (the
// `ref_*` hooks, which force limb arithmetic regardless of representation)
// must produce bit-identical values — same canonical representation, so
// plain `==` is the strongest possible check. The two random drivers below
// together perform well over 10^5 compared operations, with the value
// generators biased toward the overflow boundary (i64::MIN, near-i64::MAX
// products, ±2^62, √i64::MAX neighbourhoods) where promotions happen.

/// i64 values biased toward the promotion boundary.
fn boundary_i64(rng: &mut SmallRng) -> i64 {
    const SQRT_MAX: i64 = 3_037_000_499; // ⌊√i64::MAX⌋: products near ±2^63
    const SPECIALS: [i64; 14] = [
        0,
        1,
        -1,
        2,
        -2,
        i64::MAX,
        i64::MIN,
        i64::MAX - 1,
        i64::MIN + 1,
        1 << 62,
        -(1 << 62),
        SQRT_MAX,
        -SQRT_MAX,
        SQRT_MAX + 1,
    ];
    match rng.gen_range_usize(0, 4) {
        0 => SPECIALS[rng.gen_range_usize(0, SPECIALS.len())],
        1 => rng.next_u64() as i64,
        2 => rng.gen_range_i64(-1000, 1000),
        _ => SQRT_MAX.saturating_add(rng.gen_range_i64(-4, 5)),
    }
}

/// BigInts spanning inline, just-promoted, and multi-limb values.
fn mixed_bigint(rng: &mut SmallRng) -> BigInt {
    match rng.gen_range_usize(0, 3) {
        0 => BigInt::from(boundary_i64(rng)),
        1 => BigInt::from(any_i128(rng)),
        _ => &BigInt::from(boundary_i64(rng)) * &BigInt::from(boundary_i64(rng)),
    }
}

#[test]
fn differential_bigint_fast_path_vs_limb_reference() {
    let mut rng = SmallRng::seed_from_u64(20);
    let mut ops = 0u64;
    for _ in 0..12_000 {
        let a = mixed_bigint(&mut rng);
        let b = mixed_bigint(&mut rng);
        assert_eq!(&a + &b, a.ref_add(&b), "add: {a:?} + {b:?}");
        assert_eq!(&a - &b, a.ref_sub(&b), "sub: {a:?} - {b:?}");
        assert_eq!(&a * &b, a.ref_mul(&b), "mul: {a:?} * {b:?}");
        assert_eq!(a.gcd(&b), a.ref_gcd(&b), "gcd: {a:?}, {b:?}");
        ops += 4;
        if !b.is_zero() {
            assert_eq!(a.divmod(&b), a.ref_divmod(&b), "divmod: {a:?}, {b:?}");
            ops += 1;
        }
    }
    assert!(ops >= 55_000, "differential coverage too thin: {ops} ops");
}

#[test]
fn differential_bigint_directed_boundary_cases() {
    let specials = [
        BigInt::from(0i64),
        BigInt::from(1i64),
        BigInt::from(-1i64),
        BigInt::from(i64::MAX),
        BigInt::from(i64::MIN),
        BigInt::from(i64::MIN + 1),
        BigInt::from(1i64 << 62),
        BigInt::from((i64::MAX as i128) + 1),
        BigInt::from((i64::MIN as i128) - 1),
        BigInt::from(i128::MAX),
        BigInt::from(i128::MIN),
        BigInt::from_decimal("340282366920938463426481119284349108225").unwrap(),
    ];
    for a in &specials {
        for b in &specials {
            assert_eq!(&(a + b), &a.ref_add(b));
            assert_eq!(&(a - b), &a.ref_sub(b));
            assert_eq!(&(a * b), &a.ref_mul(b));
            assert_eq!(a.gcd(b), a.ref_gcd(b));
            if !b.is_zero() {
                assert_eq!(a.divmod(b), a.ref_divmod(b));
            }
        }
    }
}

/// Rats spanning inline and promoted numerators/denominators, biased
/// toward gcd-normalization and overflow boundaries.
fn mixed_rat(rng: &mut SmallRng) -> Rat {
    let num = boundary_i64(rng);
    let den = match rng.gen_range_usize(0, 3) {
        0 => boundary_i64(rng),
        1 => rng.gen_range_i64(1, 100),
        _ => i64::MAX - rng.gen_range_i64(0, 3),
    };
    if den == 0 {
        return Rat::from(num);
    }
    Rat::new(BigInt::from(num), BigInt::from(den))
}

#[test]
fn differential_rat_fast_path_vs_limb_reference() {
    let mut rng = SmallRng::seed_from_u64(21);
    let mut ops = 0u64;
    for _ in 0..12_000 {
        let a = mixed_rat(&mut rng);
        let b = mixed_rat(&mut rng);
        assert_eq!(&a + &b, a.ref_add(&b), "add: {a:?} + {b:?}");
        assert_eq!(&a - &b, a.ref_sub(&b), "sub: {a:?} - {b:?}");
        assert_eq!(&a * &b, a.ref_mul(&b), "mul: {a:?} * {b:?}");
        assert_eq!(a.cmp(&b), a.ref_cmp(&b), "cmp: {a:?} vs {b:?}");
        ops += 4;
        if !b.is_zero() {
            assert_eq!(&a / &b, a.ref_div(&b), "div: {a:?} / {b:?}");
            ops += 1;
        }
    }
    assert!(ops >= 55_000, "differential coverage too thin: {ops} ops");
}

#[test]
fn differential_rat_gcd_normalization() {
    // Construction must reduce identically on both paths, including the
    // i64::MIN sign-flip and common factors that only cancel after the
    // cross-multiplication.
    let cases: [(i64, i64); 8] = [
        (i64::MIN, i64::MIN),
        (i64::MIN, -1),
        (i64::MIN, 2),
        (i64::MAX, i64::MAX),
        (i64::MAX - 1, i64::MAX - 1),
        (3_000_000_021, -9), // gcd 3, plus a sign flip into the numerator
        (1 << 62, -(1 << 61)),
        (0, i64::MIN),
    ];
    for (n, d) in cases {
        let fast = Rat::new(BigInt::from(n), BigInt::from(d));
        let reference = Rat::ref_new(BigInt::from(n), BigInt::from(d));
        assert_eq!(fast, reference, "Rat::new({n}, {d})");
        assert!(fast.denom().is_positive());
        assert_eq!(fast.numer().gcd(fast.denom()), BigInt::one(), "not fully reduced");
    }
    // Scaling numerator and denominator by a common factor must not change
    // the value, whichever path performs the reduction.
    let mut rng = SmallRng::seed_from_u64(22);
    for _ in 0..2_000 {
        let n = rng.gen_range_i64(-1_000_000, 1_000_000);
        let d = rng.gen_range_i64(1, 1_000_000);
        let k = rng.gen_range_i64(1, 3_000_000_000);
        let scaled =
            Rat::new(&BigInt::from(n) * &BigInt::from(k), &BigInt::from(d) * &BigInt::from(k));
        assert_eq!(scaled, Rat::new(BigInt::from(n), BigInt::from(d)));
        assert_eq!(scaled, Rat::ref_new(BigInt::from(n), BigInt::from(d)));
    }
}

#[test]
fn differential_delta_rat_strict_bound_arithmetic() {
    // DeltaRat is componentwise Rat arithmetic; drive the strict-bound
    // constructors with boundary rationals and compare every component
    // against the limb-path reference.
    let mut rng = SmallRng::seed_from_u64(23);
    for _ in 0..4_000 {
        let r = mixed_rat(&mut rng);
        let s = mixed_rat(&mut rng);
        let below = DeltaRat::strictly_below(r.clone());
        let above = DeltaRat::strictly_above(s.clone());
        let sum = &below + &above;
        assert_eq!(sum.real, r.ref_add(&s));
        assert!(sum.delta.is_zero(), "-δ + δ must cancel exactly");
        let diff = &below - &above;
        assert_eq!(diff.real, r.ref_sub(&s));
        assert_eq!(diff.delta, Rat::from(-2i64));
        let k = mixed_rat(&mut rng);
        let scaled = below.scale(&k);
        assert_eq!(scaled.real, r.ref_mul(&k));
        assert_eq!(scaled.delta, Rat::from(-1i64).ref_mul(&k));
        // Strictness is preserved under order: x < r iff x ≤ r − δ.
        assert!(below < DeltaRat::from(r.clone()));
        assert!(above > DeltaRat::from(s.clone()));
    }
}

#[test]
fn fast_path_covers_small_workload() {
    // Sanity-check the observability story: a workload of small-coefficient
    // rational arithmetic (what the simplex tableau looks like) must be
    // almost entirely fast-path, and the counters must see it.
    let before = ccmatic_num::arith_snapshot();
    let mut rng = SmallRng::seed_from_u64(24);
    let mut acc = Rat::zero();
    for _ in 0..10_000 {
        let x = small_rat(&mut rng);
        let y = small_rat(&mut rng);
        acc = &(&acc + &(&x * &y)) - &x;
        if acc.numer().bits() > 40 {
            acc = small_rat(&mut rng);
        }
    }
    let stats = ccmatic_num::arith_snapshot().since(&before);
    // Other tests run concurrently in this process and add their own (big)
    // ops to the window, so only the monotone lower bound is safe here; the
    // ≥99% coverage acceptance check runs on the bench workload, where the
    // snapshot deltas are process-exclusive.
    assert!(stats.small_ops >= 30_000, "counter missed the workload: {stats:?}");
}

#[test]
fn delta_eval_preserves_order_for_small_delta() {
    let mut rng = SmallRng::seed_from_u64(12);
    for _ in 0..CASES {
        let a = small_delta(&mut rng);
        let b = small_delta(&mut rng);
        // For delta small enough, strict order over DeltaRat implies
        // non-strict order of the evaluations. (1/1000 is small enough
        // given real parts are integers and |delta coeff| <= 5.)
        let dv = Rat::new(BigInt::from(1i64), BigInt::from(1000i64));
        if a < b {
            assert!(a.eval(&dv) <= b.eval(&dv));
        }
    }
}
