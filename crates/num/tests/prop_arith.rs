//! Property-based tests for the exact-arithmetic substrate.
//!
//! These compare BigInt/Rat operations against i128 reference arithmetic on
//! ranges where i128 cannot overflow, and check algebraic laws on ranges
//! where it can.

use ccmatic_num::{BigInt, DeltaRat, Rat};
use proptest::prelude::*;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) + &bi(b), bi(a + b));
    }

    #[test]
    fn sub_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) - &bi(b), bi(a - b));
    }

    #[test]
    fn mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(&bi(a) * &bi(b), bi(a * b));
    }

    #[test]
    fn divmod_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000i128..1_000_000) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).divmod(&bi(b));
        prop_assert_eq!(q, bi(a / b));
        prop_assert_eq!(r, bi(a % b));
    }

    #[test]
    fn divmod_reconstructs(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (a, b) = (BigInt::from(a), BigInt::from(b));
        let (q, r) = a.divmod(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        // |r| < |b|
        prop_assert!(r.abs() < b.abs());
    }

    #[test]
    fn mul_associative_big(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (a, b, c) = (BigInt::from(a), BigInt::from(b), BigInt::from(c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn add_commutes_big(a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn distributive_big(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (a, b, c) = (BigInt::from(a), BigInt::from(b), BigInt::from(c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (BigInt::from(a), BigInt::from(b));
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.divmod(&g).1.is_zero());
            prop_assert!(b.divmod(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn display_parse_roundtrip(a in any::<i128>()) {
        let v = BigInt::from(a);
        let s = v.to_string();
        prop_assert_eq!(BigInt::from_decimal(&s).unwrap(), v);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }

    #[test]
    fn rat_field_laws(
        an in -1000i64..1000, ad in 1i64..100,
        bn in -1000i64..1000, bd in 1i64..100,
        cn in -1000i64..1000, cd in 1i64..100,
    ) {
        let a = Rat::new(BigInt::from(an), BigInt::from(ad));
        let b = Rat::new(BigInt::from(bn), BigInt::from(bd));
        let c = Rat::new(BigInt::from(cn), BigInt::from(cd));
        // (a + b) + c == a + (b + c)
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        // a * (b + c) == a*b + a*c
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // a - a == 0
        prop_assert!((&a - &a).is_zero());
        // a * recip(a) == 1 when a != 0
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rat::one());
        }
    }

    #[test]
    fn rat_ordering_consistent_with_f64(
        an in -1000i64..1000, ad in 1i64..100,
        bn in -1000i64..1000, bd in 1i64..100,
    ) {
        let a = Rat::new(BigInt::from(an), BigInt::from(ad));
        let b = Rat::new(BigInt::from(bn), BigInt::from(bd));
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = Rat::new(BigInt::from(an), BigInt::from(ad));
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }

    #[test]
    fn delta_order_is_total_and_translation_invariant(
        r1 in -100i64..100, d1 in -5i64..5,
        r2 in -100i64..100, d2 in -5i64..5,
        tr in -50i64..50, td in -3i64..3,
    ) {
        let a = DeltaRat::new(Rat::from(r1), Rat::from(d1));
        let b = DeltaRat::new(Rat::from(r2), Rat::from(d2));
        let t = DeltaRat::new(Rat::from(tr), Rat::from(td));
        prop_assert_eq!((&a + &t).cmp(&(&b + &t)), a.cmp(&b));
    }

    #[test]
    fn delta_eval_preserves_order_for_small_delta(
        r1 in -100i64..100, d1 in -5i64..5,
        r2 in -100i64..100, d2 in -5i64..5,
    ) {
        let a = DeltaRat::new(Rat::from(r1), Rat::from(d1));
        let b = DeltaRat::new(Rat::from(r2), Rat::from(d2));
        // For delta small enough, strict order over DeltaRat implies
        // non-strict order of the evaluations. (1/1000 is small enough
        // given real parts are integers and |delta coeff| <= 5.)
        let dv = Rat::new(BigInt::from(1i64), BigInt::from(1000i64));
        if a < b {
            prop_assert!(a.eval(&dv) <= b.eval(&dv));
        }
    }
}
