//! Randomized property tests for the exact-arithmetic substrate.
//!
//! These compare BigInt/Rat operations against i128 reference arithmetic on
//! ranges where i128 cannot overflow, and check algebraic laws on ranges
//! where it can. Each property runs a few hundred seeded-deterministic
//! cases (no external property-testing crate: the registry is unreachable
//! in this build environment).

use ccmatic_num::{BigInt, DeltaRat, Rat, SmallRng};

const CASES: usize = 256;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

fn any_i64(rng: &mut SmallRng) -> i64 {
    rng.next_u64() as i64
}

fn any_i128(rng: &mut SmallRng) -> i128 {
    ((rng.next_u64() as i128) << 64) | rng.next_u64() as i128
}

#[test]
fn add_sub_mul_match_i128() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..CASES {
        let a = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        let b = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        assert_eq!(&bi(a) + &bi(b), bi(a + b));
        assert_eq!(&bi(a) - &bi(b), bi(a - b));
        let am = rng.gen_range_i64(-1_000_000_000, 1_000_000_000) as i128;
        let bm = rng.gen_range_i64(-1_000_000_000, 1_000_000_000) as i128;
        assert_eq!(&bi(am) * &bi(bm), bi(am * bm));
    }
}

#[test]
fn divmod_matches_i128() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..CASES {
        let a = rng.gen_range_i64(-1_000_000_000_000, 1_000_000_000_000) as i128;
        let b = rng.gen_range_i64(-1_000_000, 1_000_000) as i128;
        if b == 0 {
            continue;
        }
        let (q, r) = bi(a).divmod(&bi(b));
        assert_eq!(q, bi(a / b));
        assert_eq!(r, bi(a % b));
    }
}

#[test]
fn divmod_reconstructs() {
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..CASES {
        let (a, b) = (any_i64(&mut rng), any_i64(&mut rng));
        if b == 0 {
            continue;
        }
        let (a, b) = (BigInt::from(a), BigInt::from(b));
        let (q, r) = a.divmod(&b);
        assert_eq!(&(&q * &b) + &r, a.clone());
        assert!(r.abs() < b.abs());
    }
}

#[test]
fn ring_laws_hold_on_full_i64_range() {
    let mut rng = SmallRng::seed_from_u64(4);
    for _ in 0..CASES {
        let a = BigInt::from(any_i64(&mut rng));
        let b = BigInt::from(any_i64(&mut rng));
        let c = BigInt::from(any_i64(&mut rng));
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c), "associativity");
        assert_eq!(&a + &b, &b + &a, "commutativity");
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c), "distributivity");
    }
}

#[test]
fn gcd_divides_both() {
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..CASES {
        let a = BigInt::from(any_i64(&mut rng));
        let b = BigInt::from(any_i64(&mut rng));
        let g = a.gcd(&b);
        if !g.is_zero() {
            assert!(a.divmod(&g).1.is_zero());
            assert!(b.divmod(&g).1.is_zero());
        } else {
            assert!(a.is_zero() && b.is_zero());
        }
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..CASES {
        let a = any_i128(&mut rng);
        let v = BigInt::from(a);
        let s = v.to_string();
        assert_eq!(BigInt::from_decimal(&s).unwrap(), v);
        assert_eq!(s, a.to_string());
    }
}

#[test]
fn ordering_matches_i128() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..CASES {
        let (a, b) = (any_i128(&mut rng), any_i128(&mut rng));
        assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }
}

fn small_rat(rng: &mut SmallRng) -> Rat {
    Rat::new(BigInt::from(rng.gen_range_i64(-1000, 1000)), BigInt::from(rng.gen_range_i64(1, 100)))
}

#[test]
fn rat_field_laws() {
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..CASES {
        let a = small_rat(&mut rng);
        let b = small_rat(&mut rng);
        let c = small_rat(&mut rng);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        assert!((&a - &a).is_zero());
        if !a.is_zero() {
            assert_eq!(&a * &a.recip(), Rat::one());
        }
    }
}

#[test]
fn rat_ordering_consistent_with_f64() {
    let mut rng = SmallRng::seed_from_u64(9);
    for _ in 0..CASES {
        let an = rng.gen_range_i64(-1000, 1000);
        let ad = rng.gen_range_i64(1, 100);
        let bn = rng.gen_range_i64(-1000, 1000);
        let bd = rng.gen_range_i64(1, 100);
        let a = Rat::new(BigInt::from(an), BigInt::from(ad));
        let b = Rat::new(BigInt::from(bn), BigInt::from(bd));
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            assert_eq!(a < b, fa < fb);
        }
    }
}

#[test]
fn rat_floor_ceil_bracket() {
    let mut rng = SmallRng::seed_from_u64(10);
    for _ in 0..CASES {
        let a = Rat::new(
            BigInt::from(rng.gen_range_i64(-10_000, 10_000)),
            BigInt::from(rng.gen_range_i64(1, 100)),
        );
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        assert!(fl <= a && a <= ce);
        assert!(&ce - &fl <= Rat::one());
    }
}

fn small_delta(rng: &mut SmallRng) -> DeltaRat {
    DeltaRat::new(Rat::from(rng.gen_range_i64(-100, 100)), Rat::from(rng.gen_range_i64(-5, 5)))
}

#[test]
fn delta_order_is_total_and_translation_invariant() {
    let mut rng = SmallRng::seed_from_u64(11);
    for _ in 0..CASES {
        let a = small_delta(&mut rng);
        let b = small_delta(&mut rng);
        let t = DeltaRat::new(
            Rat::from(rng.gen_range_i64(-50, 50)),
            Rat::from(rng.gen_range_i64(-3, 3)),
        );
        assert_eq!((&a + &t).cmp(&(&b + &t)), a.cmp(&b));
    }
}

#[test]
fn delta_eval_preserves_order_for_small_delta() {
    let mut rng = SmallRng::seed_from_u64(12);
    for _ in 0..CASES {
        let a = small_delta(&mut rng);
        let b = small_delta(&mut rng);
        // For delta small enough, strict order over DeltaRat implies
        // non-strict order of the evaluations. (1/1000 is small enough
        // given real parts are integers and |delta coeff| <= 5.)
        let dv = Rat::new(BigInt::from(1i64), BigInt::from(1000i64));
        if a < b {
            assert!(a.eval(&dv) <= b.eval(&dv));
        }
    }
}
