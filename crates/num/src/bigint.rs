//! Sign-magnitude arbitrary-precision integers with an inline `i64` fast
//! path.
//!
//! Values that fit a machine word — which is nearly everything the simplex
//! tableau ever holds, since coefficients start as small integers or halves
//! — are stored inline as [`Repr::Small`] and computed with checked `i64`
//! arithmetic (widening to `i128` on overflow). Only values outside the
//! `i64` range are *promoted* to the limb representation [`Repr::Big`]
//! (`u64` limbs, least significant first, no trailing zeros, `sign != 0`).
//!
//! Canonical-form invariant: a value is `Big` **iff** it does not fit an
//! `i64`. Every constructor and operation maintains this, so the derived
//! `PartialEq`/`Eq`/`Hash` remain structural equality of values and never
//! see the same number in two representations.
//!
//! Fast-path coverage is counted through [`crate::stats`]; see
//! [`crate::arith_snapshot`].

use crate::stats;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// Internal representation. `Small` covers the full `i64` range including
/// zero; `Big` is reserved for values strictly outside it.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline machine-word value.
    Small(i64),
    /// Limb representation for values outside the `i64` range.
    Big {
        /// -1 or 1 (never 0: zero is always `Small(0)`).
        sign: i8,
        /// Magnitude limbs, little-endian, no trailing zeros, non-empty.
        mag: Vec<u64>,
    },
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use ccmatic_num::BigInt;
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt(Repr);

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt(Repr::Small(0))
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt(Repr::Small(1))
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.signum() > 0
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.signum() < 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        match &self.0 {
            Repr::Small(v) => v.signum() as i8,
            Repr::Big { sign, .. } => *sign,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match &self.0 {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt(Repr::Small(a)),
                // |i64::MIN| = 2^63 does not fit an i64.
                None => BigInt(Repr::Big { sign: 1, mag: vec![1 << 63] }),
            },
            Repr::Big { mag, .. } => BigInt(Repr::Big { sign: 1, mag: mag.clone() }),
        }
    }

    /// Construct from sign and magnitude limbs, normalizing trailing zeros
    /// and demoting to the inline representation whenever the value fits.
    fn from_parts(sign: i8, mut mag: Vec<u64>) -> Self {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            return BigInt::zero();
        }
        debug_assert!(sign == 1 || sign == -1);
        if mag.len() == 1 {
            let m = mag[0];
            if sign > 0 && m <= i64::MAX as u64 {
                return BigInt(Repr::Small(m as i64));
            }
            if sign < 0 && m <= (i64::MAX as u64) + 1 {
                return BigInt(Repr::Small((-(m as i128)) as i64));
            }
        }
        BigInt(Repr::Big { sign, mag })
    }

    /// View the value as (sign, magnitude limbs) without allocating: the
    /// inline variant is presented through a one-limb stack buffer.
    fn with_parts<R>(&self, f: impl FnOnce(i8, &[u64]) -> R) -> R {
        match &self.0 {
            Repr::Small(0) => f(0, &[]),
            Repr::Small(v) => f(v.signum() as i8, &[v.unsigned_abs()]),
            Repr::Big { sign, mag } => f(*sign, mag),
        }
    }

    /// Compare magnitudes, ignoring sign.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    /// Magnitude addition: `a + b`.
    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = short.get(i).copied().unwrap_or(0);
            let (x, c1) = l.overflowing_add(s);
            let (x, c2) = x.overflowing_add(carry);
            carry = (c1 as u64) + (c2 as u64);
            out.push(x);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Magnitude subtraction: `a - b`, requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &av) in a.iter().enumerate() {
            let s = b.get(i).copied().unwrap_or(0);
            let (x, b1) = av.overflowing_sub(s);
            let (x, b2) = x.overflowing_sub(borrow);
            borrow = (b1 as u64) + (b2 as u64);
            out.push(x);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude schoolbook multiplication.
    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude division by a single limb. Returns (quotient, remainder).
    fn divmod_small(a: &[u64], d: u64) -> (Vec<u64>, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u64)
    }

    /// Magnitude long division: `a / b`, `a % b`. Requires `b != 0`.
    ///
    /// Uses simple shift-and-subtract on bits for the multi-limb case; the
    /// operand sizes in this workspace make the O(n·bits) cost irrelevant,
    /// and the algorithm is trivially auditable.
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        debug_assert!(!b.is_empty());
        match Self::cmp_mag(a, b) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if b.len() == 1 {
            let (q, r) = Self::divmod_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Bitwise long division.
        let total_bits = a.len() * 64;
        let mut quot = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        for bit in (0..total_bits).rev() {
            // rem = rem << 1 | bit(a, bit)
            Self::shl1_in_place(&mut rem);
            let abit = (a[bit / 64] >> (bit % 64)) & 1;
            if abit == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                quot[bit / 64] |= 1 << (bit % 64);
            }
        }
        while quot.last() == Some(&0) {
            quot.pop();
        }
        (quot, rem)
    }

    /// In-place magnitude left shift by one bit.
    fn shl1_in_place(v: &mut Vec<u64>) {
        let mut carry = 0u64;
        for limb in v.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            v.push(carry);
        }
    }

    /// Limb-path addition, independent of representation.
    fn add_limbs(&self, other: &BigInt) -> BigInt {
        self.with_parts(|sa, ma| {
            other.with_parts(|sb, mb| {
                if sa == 0 {
                    return BigInt::from_parts(sb, mb.to_vec());
                }
                if sb == 0 {
                    return BigInt::from_parts(sa, ma.to_vec());
                }
                if sa == sb {
                    BigInt::from_parts(sa, Self::add_mag(ma, mb))
                } else {
                    match Self::cmp_mag(ma, mb) {
                        Ordering::Equal => BigInt::zero(),
                        Ordering::Greater => BigInt::from_parts(sa, Self::sub_mag(ma, mb)),
                        Ordering::Less => BigInt::from_parts(sb, Self::sub_mag(mb, ma)),
                    }
                }
            })
        })
    }

    /// Limb-path subtraction (addition with `other`'s sign flipped).
    fn sub_limbs(&self, other: &BigInt) -> BigInt {
        self.with_parts(|sa, ma| {
            other.with_parts(|sb, mb| {
                let sb = -sb;
                if sa == 0 {
                    return BigInt::from_parts(sb, mb.to_vec());
                }
                if sb == 0 {
                    return BigInt::from_parts(sa, ma.to_vec());
                }
                if sa == sb {
                    BigInt::from_parts(sa, Self::add_mag(ma, mb))
                } else {
                    match Self::cmp_mag(ma, mb) {
                        Ordering::Equal => BigInt::zero(),
                        Ordering::Greater => BigInt::from_parts(sa, Self::sub_mag(ma, mb)),
                        Ordering::Less => BigInt::from_parts(sb, Self::sub_mag(mb, ma)),
                    }
                }
            })
        })
    }

    /// Limb-path multiplication, independent of representation.
    fn mul_limbs(&self, other: &BigInt) -> BigInt {
        self.with_parts(|sa, ma| {
            other.with_parts(|sb, mb| {
                if sa == 0 || sb == 0 {
                    BigInt::zero()
                } else {
                    BigInt::from_parts(sa * sb, Self::mul_mag(ma, mb))
                }
            })
        })
    }

    /// Limb-path truncated division, independent of representation.
    /// Requires `other != 0`.
    fn divmod_limbs(&self, other: &BigInt) -> (BigInt, BigInt) {
        self.with_parts(|sa, ma| {
            other.with_parts(|sb, mb| {
                debug_assert!(sb != 0);
                if sa == 0 {
                    return (BigInt::zero(), BigInt::zero());
                }
                let (q, r) = Self::divmod_mag(ma, mb);
                (BigInt::from_parts(sa * sb, q), BigInt::from_parts(sa, r))
            })
        })
    }

    /// Limb-path gcd via Euclid on `divmod_limbs`.
    fn gcd_limbs(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.divmod_limbs(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Truncated division and remainder (round toward zero, like Rust's `/`
    /// and `%` on primitives). The remainder has the sign of `self`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            // i128 intermediates sidestep the lone i64 overflow case,
            // i64::MIN / -1 (quotient 2^63).
            let (a, b) = (*a as i128, *b as i128);
            let (q, r) = (a / b, a % b);
            return match i64::try_from(q) {
                Ok(qs) => {
                    stats::count_small();
                    (BigInt(Repr::Small(qs)), BigInt(Repr::Small(r as i64)))
                }
                Err(_) => {
                    stats::count_promotion();
                    (BigInt::from(q), BigInt(Repr::Small(r as i64)))
                }
            };
        }
        stats::count_big();
        self.divmod_limbs(other)
    }

    /// Greatest common divisor of the absolute values (always non-negative;
    /// `gcd(0, x) = |x|`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            // gcd(i64::MIN, i64::MIN) = 2^63 does not fit an i64.
            return if a <= i64::MAX as u64 {
                stats::count_small();
                BigInt(Repr::Small(a as i64))
            } else {
                stats::count_promotion();
                BigInt(Repr::Big { sign: 1, mag: vec![a] })
            };
        }
        stats::count_big();
        self.gcd_limbs(other)
    }

    /// Least common multiple of the absolute values (always non-negative;
    /// `lcm(0, x) = 0`). Computed as `|self / gcd · other|` so the
    /// intermediate never exceeds the result.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        (&(self / &g) * other).abs()
    }

    /// Approximate conversion to `f64` (for reporting only; never used in
    /// solver decisions).
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            Repr::Small(v) => *v as f64,
            Repr::Big { sign, mag } => {
                let mut x = 0.0f64;
                for &limb in mag.iter().rev() {
                    x = x * 18446744073709551616.0 + limb as f64;
                }
                if *sign < 0 {
                    -x
                } else {
                    x
                }
            }
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.0 {
            Repr::Small(v) => Some(*v),
            // Canonical form: Big is only used outside the i64 range.
            Repr::Big { .. } => None,
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match &self.0 {
            Repr::Small(0) => 0,
            Repr::Small(v) => 64 - v.unsigned_abs().leading_zeros() as usize,
            Repr::Big { mag, .. } => {
                let top = *mag.last().expect("Big magnitude is non-empty");
                (mag.len() - 1) * 64 + (64 - top.leading_zeros() as usize)
            }
        }
    }

    /// Parse a decimal string with optional leading `-`.
    pub fn from_decimal(s: &str) -> Option<BigInt> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut mag: Vec<u64> = Vec::new();
        for b in digits.bytes() {
            // mag = mag * 10 + digit
            let mut carry = (b - b'0') as u128;
            for limb in mag.iter_mut() {
                let cur = (*limb as u128) * 10 + carry;
                *limb = cur as u64;
                carry = cur >> 64;
            }
            if carry != 0 {
                mag.push(carry as u64);
            }
        }
        Some(BigInt::from_parts(sign, mag))
    }

    /// Reference addition that always runs the limb path, regardless of
    /// representation. Differential-test hook only: results must be
    /// bit-identical to `+`.
    #[doc(hidden)]
    pub fn ref_add(&self, other: &BigInt) -> BigInt {
        self.add_limbs(other)
    }

    /// Reference subtraction on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_sub(&self, other: &BigInt) -> BigInt {
        self.sub_limbs(other)
    }

    /// Reference multiplication on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_mul(&self, other: &BigInt) -> BigInt {
        self.mul_limbs(other)
    }

    /// Reference truncated division on the limb path (differential-test
    /// hook).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[doc(hidden)]
    pub fn ref_divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        self.divmod_limbs(other)
    }

    /// Reference gcd on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_gcd(&self, other: &BigInt) -> BigInt {
        self.gcd_limbs(other)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt(Repr::Small(v))
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            BigInt(Repr::Small(v as i64))
        } else {
            BigInt(Repr::Big { sign: 1, mag: vec![v] })
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if let Ok(s) = i64::try_from(v) {
            return BigInt(Repr::Small(s));
        }
        let sign = if v > 0 { 1 } else { -1 };
        let m = v.unsigned_abs();
        BigInt::from_parts(sign, vec![m as u64, (m >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical form: a Big value lies strictly outside the i64
            // range, so its sign alone decides against any Small.
            (Repr::Small(_), Repr::Big { sign, .. }) => {
                if *sign > 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (Repr::Big { sign, .. }, Repr::Small(_)) => {
                if *sign > 0 {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (Repr::Big { sign: sa, mag: ma }, Repr::Big { sign: sb, mag: mb }) => {
                match sa.cmp(sb) {
                    Ordering::Equal => {}
                    ord => return ord,
                }
                let mag_ord = Self::cmp_mag(ma, mb);
                if *sa >= 0 {
                    mag_ord
                } else {
                    mag_ord.reverse()
                }
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt(Repr::Small(n)),
                None => BigInt(Repr::Big { sign: 1, mag: vec![1 << 63] }),
            },
            Repr::Big { sign, mag } => BigInt::from_parts(-sign, mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.clone().neg()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_add(*b) {
                Some(s) => {
                    stats::count_small();
                    BigInt(Repr::Small(s))
                }
                None => {
                    stats::count_promotion();
                    BigInt::from(*a as i128 + *b as i128)
                }
            };
        }
        stats::count_big();
        self.add_limbs(other)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_sub(*b) {
                Some(s) => {
                    stats::count_small();
                    BigInt(Repr::Small(s))
                }
                None => {
                    stats::count_promotion();
                    BigInt::from(*a as i128 - *b as i128)
                }
            };
        }
        stats::count_big();
        self.sub_limbs(other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_mul(*b) {
                Some(p) => {
                    stats::count_small();
                    BigInt(Repr::Small(p))
                }
                None => {
                    stats::count_promotion();
                    BigInt::from(*a as i128 * *b as i128)
                }
            };
        }
        stats::count_big();
        self.mul_limbs(other)
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divmod(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divmod(other).1
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);
forward_binop_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, mag) = match &self.0 {
            Repr::Small(v) => return write!(f, "{v}"),
            Repr::Big { sign, mag } => (*sign, mag),
        };
        if sign < 0 {
            write!(f, "-")?;
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = mag.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = BigInt::divmod_small(&mag, CHUNK);
            chunks.push(r);
            mag = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{:019}", c)?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    /// True iff the value uses the inline representation.
    fn is_small(v: &BigInt) -> bool {
        matches!(v.0, Repr::Small(_))
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(!BigInt::one().is_zero());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::one().to_string(), "1");
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(bi(4).lcm(&bi(6)), bi(12));
        assert_eq!(bi(-4).lcm(&bi(6)), bi(12));
        assert_eq!(bi(4).lcm(&bi(-6)), bi(12));
        assert_eq!(bi(7).lcm(&bi(7)), bi(7));
        assert_eq!(bi(0).lcm(&bi(5)), bi(0));
        assert_eq!(bi(5).lcm(&bi(0)), bi(0));
        assert_eq!(bi(1).lcm(&bi(9)), bi(9));
    }

    #[test]
    fn lcm_promotes_past_i64() {
        // lcm(2^62, 3·2^62) = 3·2^62 > i64::MAX must promote, not wrap.
        let a = bi(1i64 << 62);
        let b = &bi(3) * &bi(1i64 << 62);
        let l = a.lcm(&b);
        assert_eq!(l, b.abs());
        assert!(!is_small(&l));
        // Coprime pair whose product leaves i64.
        let p = bi(i64::MAX);
        let q = bi(i64::MAX - 1);
        assert_eq!(p.lcm(&q), &p * &q);
    }

    #[test]
    fn from_i64_roundtrip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            assert_eq!(bi(v).to_i64(), Some(v));
            assert_eq!(bi(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn i64_min_roundtrip() {
        let v = BigInt::from(i64::MIN);
        assert_eq!(v.to_string(), i64::MIN.to_string());
        assert_eq!(v.to_i64(), Some(i64::MIN));
    }

    #[test]
    fn add_small() {
        assert_eq!(&bi(2) + &bi(3), bi(5));
        assert_eq!(&bi(-2) + &bi(3), bi(1));
        assert_eq!(&bi(2) + &bi(-3), bi(-1));
        assert_eq!(&bi(-2) + &bi(-3), bi(-5));
        assert_eq!(&bi(2) + &bi(-2), bi(0));
    }

    #[test]
    fn add_carries_across_limbs() {
        let max = BigInt::from(u64::MAX);
        let sum = &max + &BigInt::one();
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(&sum - &BigInt::one(), max);
    }

    #[test]
    fn sub_small() {
        assert_eq!(&bi(10) - &bi(4), bi(6));
        assert_eq!(&bi(4) - &bi(10), bi(-6));
        assert_eq!(&bi(-4) - &bi(-10), bi(6));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&bi(6) * &bi(7), bi(42));
        assert_eq!(&bi(-6) * &bi(7), bi(-42));
        assert_eq!(&bi(-6) * &bi(-7), bi(42));
        assert_eq!(&bi(0) * &bi(7), bi(0));
    }

    #[test]
    fn mul_multi_limb() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let max = BigInt::from(u64::MAX);
        let sq = &max * &max;
        assert_eq!(sq.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn divmod_small_values() {
        let (q, r) = bi(17).divmod(&bi(5));
        assert_eq!((q, r), (bi(3), bi(2)));
        let (q, r) = bi(-17).divmod(&bi(5));
        assert_eq!((q, r), (bi(-3), bi(-2)));
        let (q, r) = bi(17).divmod(&bi(-5));
        assert_eq!((q, r), (bi(-3), bi(2)));
        let (q, r) = bi(-17).divmod(&bi(-5));
        assert_eq!((q, r), (bi(3), bi(-2)));
    }

    #[test]
    fn divmod_multi_limb() {
        let a = BigInt::from_decimal("340282366920938463426481119284349108225").unwrap();
        let b = BigInt::from_decimal("18446744073709551615").unwrap();
        let (q, r) = a.divmod(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).divmod(&bi(0));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(7).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        let big = BigInt::from_decimal("99999999999999999999999").unwrap();
        assert!(bi(i64::MAX) < big);
        assert!(-&big < bi(i64::MIN));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in
            ["0", "1", "-1", "123456789012345678901234567890", "-987654321098765432109876543210"]
        {
            let v = BigInt::from_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigInt::from_decimal("").is_none());
        assert!(BigInt::from_decimal("12a").is_none());
        assert!(BigInt::from_decimal("-").is_none());
    }

    #[test]
    fn bits_counts() {
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        let big = &BigInt::from(u64::MAX) + &BigInt::one();
        assert_eq!(big.bits(), 65);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(0).to_f64(), 0.0);
        assert_eq!(bi(42).to_f64(), 42.0);
        assert_eq!(bi(-42).to_f64(), -42.0);
        let big = BigInt::from_decimal("100000000000000000000").unwrap();
        assert!((big.to_f64() - 1e20).abs() < 1e6);
    }

    // --- canonical-form tests for the small-value representation ---

    #[test]
    fn canonical_form_at_the_i64_boundary() {
        // Values inside the i64 range must always be Small, even when they
        // arrive via limb-path constructors.
        assert!(is_small(&BigInt::from_decimal("9223372036854775807").unwrap()));
        assert!(is_small(&BigInt::from_decimal("-9223372036854775808").unwrap()));
        assert!(!is_small(&BigInt::from_decimal("9223372036854775808").unwrap()));
        assert!(!is_small(&BigInt::from_decimal("-9223372036854775809").unwrap()));
        // Structural equality across construction routes.
        assert_eq!(BigInt::from_decimal("9223372036854775807").unwrap(), bi(i64::MAX));
        assert_eq!(BigInt::from_decimal("-9223372036854775808").unwrap(), bi(i64::MIN));
    }

    #[test]
    fn demotion_after_shrinking() {
        // Grow past i64, come back: the result must be Small again so that
        // Eq/Hash stay structural.
        let max = bi(i64::MAX);
        let promoted = &max + &BigInt::one();
        assert!(!is_small(&promoted));
        assert_eq!(promoted.to_i64(), None);
        let back = &promoted - &BigInt::one();
        assert!(is_small(&back));
        assert_eq!(back, max);
    }

    #[test]
    fn negation_at_i64_min() {
        let min = bi(i64::MIN);
        let negated = -&min;
        assert_eq!(negated.to_string(), "9223372036854775808");
        assert!(!is_small(&negated));
        let round_trip = -&negated;
        assert!(is_small(&round_trip));
        assert_eq!(round_trip, min);
        assert_eq!(min.abs(), negated);
    }

    #[test]
    fn overflow_promotion_cases() {
        // i64::MIN / -1 is the only divmod case that leaves i64.
        let (q, r) = bi(i64::MIN).divmod(&bi(-1));
        assert_eq!(q.to_string(), "9223372036854775808");
        assert!(r.is_zero());
        // gcd(i64::MIN, i64::MIN) = 2^63.
        let g = bi(i64::MIN).gcd(&bi(i64::MIN));
        assert_eq!(g.to_string(), "9223372036854775808");
        // Near-max product promotes and agrees with the limb path.
        let a = bi(i64::MAX);
        let p = &a * &a;
        assert_eq!(p, a.ref_mul(&a));
        assert_eq!(p.to_string(), "85070591730234615847396907784232501249");
    }

    #[test]
    fn reference_ops_match_operators() {
        let vals =
            [bi(0), bi(1), bi(-1), bi(i64::MAX), bi(i64::MIN), &bi(i64::MAX) * &bi(i64::MAX)];
        for a in &vals {
            for b in &vals {
                assert_eq!(a.ref_add(b), a + b);
                assert_eq!(a.ref_sub(b), a - b);
                assert_eq!(a.ref_mul(b), a * b);
                assert_eq!(a.ref_gcd(b), a.gcd(b));
                if !b.is_zero() {
                    assert_eq!(a.ref_divmod(b), a.divmod(b));
                }
            }
        }
    }
}
