//! Sign-magnitude arbitrary-precision integers.
//!
//! Limbs are `u64`, least significant first. The invariant maintained by
//! every constructor and operation is: no trailing zero limbs, and
//! `sign == 0` iff the magnitude is empty.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// An arbitrary-precision signed integer.
///
/// ```
/// use ccmatic_num::BigInt;
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// -1, 0, or 1. Zero iff `mag` is empty.
    sign: i8,
    /// Magnitude limbs, little-endian, no trailing zeros.
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt { sign: 0, mag: Vec::new() }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt { sign: 1, mag: vec![1] }
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Sign of the value: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        BigInt { sign: self.sign.abs(), mag: self.mag.clone() }
    }

    /// Construct from raw parts, normalizing trailing zeros and sign.
    fn from_parts(sign: i8, mut mag: Vec<u64>) -> Self {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign == 1 || sign == -1);
            BigInt { sign, mag }
        }
    }

    /// Compare magnitudes, ignoring sign.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    /// Magnitude addition: `a + b`.
    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = short.get(i).copied().unwrap_or(0);
            let (x, c1) = l.overflowing_add(s);
            let (x, c2) = x.overflowing_add(carry);
            carry = (c1 as u64) + (c2 as u64);
            out.push(x);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Magnitude subtraction: `a - b`, requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &av) in a.iter().enumerate() {
            let s = b.get(i).copied().unwrap_or(0);
            let (x, b1) = av.overflowing_sub(s);
            let (x, b2) = x.overflowing_sub(borrow);
            borrow = (b1 as u64) + (b2 as u64);
            out.push(x);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude schoolbook multiplication.
    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Magnitude division by a single limb. Returns (quotient, remainder).
    fn divmod_small(a: &[u64], d: u64) -> (Vec<u64>, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u64)
    }

    /// Magnitude long division: `a / b`, `a % b`. Requires `b != 0`.
    ///
    /// Uses simple shift-and-subtract on bits for the multi-limb case; the
    /// operand sizes in this workspace make the O(n·bits) cost irrelevant,
    /// and the algorithm is trivially auditable.
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        debug_assert!(!b.is_empty());
        match Self::cmp_mag(a, b) {
            Ordering::Less => return (Vec::new(), a.to_vec()),
            Ordering::Equal => return (vec![1], Vec::new()),
            Ordering::Greater => {}
        }
        if b.len() == 1 {
            let (q, r) = Self::divmod_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Bitwise long division.
        let total_bits = a.len() * 64;
        let mut quot = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        for bit in (0..total_bits).rev() {
            // rem = rem << 1 | bit(a, bit)
            Self::shl1_in_place(&mut rem);
            let abit = (a[bit / 64] >> (bit % 64)) & 1;
            if abit == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                quot[bit / 64] |= 1 << (bit % 64);
            }
        }
        while quot.last() == Some(&0) {
            quot.pop();
        }
        (quot, rem)
    }

    /// In-place magnitude left shift by one bit.
    fn shl1_in_place(v: &mut Vec<u64>) {
        let mut carry = 0u64;
        for limb in v.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            v.push(carry);
        }
    }

    /// Truncated division and remainder (round toward zero, like Rust's `/`
    /// and `%` on primitives). The remainder has the sign of `self`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q, r) = Self::divmod_mag(&self.mag, &other.mag);
        let q_sign = self.sign * other.sign;
        (BigInt::from_parts(q_sign, q), BigInt::from_parts(self.sign, r))
    }

    /// Greatest common divisor of the absolute values (always non-negative;
    /// `gcd(0, x) = |x|`).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.divmod(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Approximate conversion to `f64` (for reporting only; never used in
    /// solver decisions).
    pub fn to_f64(&self) -> f64 {
        let mut x = 0.0f64;
        for &limb in self.mag.iter().rev() {
            x = x * 18446744073709551616.0 + limb as f64;
        }
        if self.sign < 0 {
            -x
        } else {
            x
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                if self.sign > 0 && m <= i64::MAX as u64 {
                    Some(m as i64)
                } else if self.sign < 0 && m <= (i64::MAX as u64) + 1 {
                    Some((-(m as i128)) as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bits(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Parse a decimal string with optional leading `-`.
    pub fn from_decimal(s: &str) -> Option<BigInt> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut mag: Vec<u64> = Vec::new();
        for b in digits.bytes() {
            // mag = mag * 10 + digit
            let mut carry = (b - b'0') as u128;
            for limb in mag.iter_mut() {
                let cur = (*limb as u128) * 10 + carry;
                *limb = cur as u64;
                carry = cur >> 64;
            }
            if carry != 0 {
                mag.push(carry as u64);
            }
        }
        Some(BigInt::from_parts(sign, mag))
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt { sign: 1, mag: vec![v as u64] },
            Ordering::Less => BigInt { sign: -1, mag: vec![v.unsigned_abs()] },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt { sign: 1, mag: vec![v] }
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v > 0 { 1 } else { -1 };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        BigInt::from_parts(sign, vec![lo, hi])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mag_ord = Self::cmp_mag(&self.mag, &other.mag);
        if self.sign >= 0 {
            mag_ord
        } else {
            mag_ord.reverse()
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: -self.sign, mag: self.mag.clone() }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        if self.sign == other.sign {
            BigInt::from_parts(self.sign, BigInt::add_mag(&self.mag, &other.mag))
        } else {
            match BigInt::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_parts(self.sign, BigInt::sub_mag(&self.mag, &other.mag))
                }
                Ordering::Less => {
                    BigInt::from_parts(other.sign, BigInt::sub_mag(&other.mag, &self.mag))
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        BigInt::from_parts(self.sign * other.sign, BigInt::mul_mag(&self.mag, &other.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.divmod(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.divmod(other).1
    }
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);
forward_binop_owned!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = BigInt::divmod_small(&mag, CHUNK);
            chunks.push(r);
            mag = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{:019}", c)?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(!BigInt::one().is_zero());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::one().to_string(), "1");
    }

    #[test]
    fn from_i64_roundtrip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            assert_eq!(bi(v).to_i64(), Some(v));
            assert_eq!(bi(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn i64_min_roundtrip() {
        let v = BigInt::from(i64::MIN);
        assert_eq!(v.to_string(), i64::MIN.to_string());
        assert_eq!(v.to_i64(), Some(i64::MIN));
    }

    #[test]
    fn add_small() {
        assert_eq!(&bi(2) + &bi(3), bi(5));
        assert_eq!(&bi(-2) + &bi(3), bi(1));
        assert_eq!(&bi(2) + &bi(-3), bi(-1));
        assert_eq!(&bi(-2) + &bi(-3), bi(-5));
        assert_eq!(&bi(2) + &bi(-2), bi(0));
    }

    #[test]
    fn add_carries_across_limbs() {
        let max = BigInt::from(u64::MAX);
        let sum = &max + &BigInt::one();
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(&sum - &BigInt::one(), max);
    }

    #[test]
    fn sub_small() {
        assert_eq!(&bi(10) - &bi(4), bi(6));
        assert_eq!(&bi(4) - &bi(10), bi(-6));
        assert_eq!(&bi(-4) - &bi(-10), bi(6));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&bi(6) * &bi(7), bi(42));
        assert_eq!(&bi(-6) * &bi(7), bi(-42));
        assert_eq!(&bi(-6) * &bi(-7), bi(42));
        assert_eq!(&bi(0) * &bi(7), bi(0));
    }

    #[test]
    fn mul_multi_limb() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let max = BigInt::from(u64::MAX);
        let sq = &max * &max;
        assert_eq!(sq.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn divmod_small_values() {
        let (q, r) = bi(17).divmod(&bi(5));
        assert_eq!((q, r), (bi(3), bi(2)));
        let (q, r) = bi(-17).divmod(&bi(5));
        assert_eq!((q, r), (bi(-3), bi(-2)));
        let (q, r) = bi(17).divmod(&bi(-5));
        assert_eq!((q, r), (bi(-3), bi(2)));
        let (q, r) = bi(-17).divmod(&bi(-5));
        assert_eq!((q, r), (bi(3), bi(-2)));
    }

    #[test]
    fn divmod_multi_limb() {
        let a = BigInt::from_decimal("340282366920938463426481119284349108225").unwrap();
        let b = BigInt::from_decimal("18446744073709551615").unwrap();
        let (q, r) = a.divmod(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).divmod(&bi(0));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        assert_eq!(bi(7).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        let big = BigInt::from_decimal("99999999999999999999999").unwrap();
        assert!(bi(i64::MAX) < big);
        assert!(-&big < bi(i64::MIN));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in
            ["0", "1", "-1", "123456789012345678901234567890", "-987654321098765432109876543210"]
        {
            let v = BigInt::from_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigInt::from_decimal("").is_none());
        assert!(BigInt::from_decimal("12a").is_none());
        assert!(BigInt::from_decimal("-").is_none());
    }

    #[test]
    fn bits_counts() {
        assert_eq!(bi(0).bits(), 0);
        assert_eq!(bi(1).bits(), 1);
        assert_eq!(bi(255).bits(), 8);
        assert_eq!(bi(256).bits(), 9);
        let big = &BigInt::from(u64::MAX) + &BigInt::one();
        assert_eq!(big.bits(), 65);
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(0).to_f64(), 0.0);
        assert_eq!(bi(42).to_f64(), 42.0);
        assert_eq!(bi(-42).to_f64(), -42.0);
        let big = BigInt::from_decimal("100000000000000000000").unwrap();
        assert!((big.to_f64() - 1e20).abs() < 1e6);
    }
}
