//! A tiny deterministic pseudo-random generator for tests and simulators.
//!
//! The workspace must build with no external crates (the build environment
//! has no registry access), so randomized tests and the jitter simulator use
//! this SplitMix64 generator instead of `rand`. SplitMix64 passes BigCrush,
//! is seedable, and is two lines of code — more than enough statistical
//! quality for shrink-free randomized testing and link-jitter schedules.

/// Deterministic 64-bit PRNG (SplitMix64, Steele et al., OOPSLA '14).
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeded generator; the same seed always yields the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        // Modulo bias is < span / 2^64 — irrelevant at test-sized spans.
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&x));
            let u = r.gen_range_usize(3, 10);
            assert!((3..10).contains(&u));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw should cover 0..10");
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} of 10000 at p=0.3");
    }
}
