//! Process-wide counters for the small-value arithmetic fast path.
//!
//! [`BigInt`](crate::BigInt) and [`Rat`](crate::Rat) carry an inline `i64`
//! representation and fall back to heap-allocated limbs only when a value
//! leaves the machine-word range. These counters make that behaviour
//! observable: benchmarks and `ccmatic --stats` report what fraction of
//! arithmetic ran on the fast path and how often a *promotion* (fast →
//! bignum fallback) occurred, so kernel-level regressions show up in the
//! committed `BENCH_*.json` files instead of silently eating the win.
//!
//! Counting strategy: promotions and limb-path operations are rare on the
//! solver workload and go straight to relaxed global atomics. Fast-path
//! operations are the hot case, so each thread accumulates them in a plain
//! thread-local cell and flushes to the global atomic every
//! [`FLUSH_EVERY`] events (and whenever [`snapshot`] is called from that
//! thread), keeping the per-op cost to a couple of cycles. A snapshot can
//! therefore lag another *live* thread by at most `FLUSH_EVERY − 1`
//! fast-path ops — noise at the 10⁵-op scales these counters are read at.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fast-path events a thread buffers locally before publishing.
const FLUSH_EVERY: u64 = 1024;

static SMALL_OPS: AtomicU64 = AtomicU64::new(0);
static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static BIG_OPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SMALL_LOCAL: Cell<u64> = const { Cell::new(0) };
}

/// Record one arithmetic operation that ran entirely on the inline-`i64`
/// fast path.
#[inline]
pub(crate) fn count_small() {
    SMALL_LOCAL.with(|c| {
        let n = c.get() + 1;
        if n >= FLUSH_EVERY {
            SMALL_OPS.fetch_add(n, Ordering::Relaxed);
            c.set(0);
        } else {
            c.set(n);
        }
    });
}

/// Record one promotion: both operands were inline but the result (or an
/// intermediate) left the `i64` range, forcing the limb representation.
#[inline]
pub(crate) fn count_promotion() {
    PROMOTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Record one operation that ran on the limb (bignum) path because at
/// least one operand was already promoted.
#[inline]
pub(crate) fn count_big() {
    BIG_OPS.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time reading of the arithmetic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArithStats {
    /// Operations completed entirely on the inline-`i64` fast path.
    pub small_ops: u64,
    /// Fast-path attempts that overflowed into the limb representation.
    pub promotions: u64,
    /// Operations on already-promoted (limb) operands.
    pub big_ops: u64,
}

impl ArithStats {
    /// Total counted operations.
    pub fn total(&self) -> u64 {
        self.small_ops + self.promotions + self.big_ops
    }

    /// Fraction of operations that stayed on the fast path (1.0 when no
    /// operations were counted).
    pub fn fast_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.small_ops as f64 / total as f64
        }
    }

    /// Counter deltas since an `earlier` snapshot (saturating, so a
    /// snapshot pair taken around a region of interest is safe even if
    /// another thread flushed in between).
    pub fn since(&self, earlier: &ArithStats) -> ArithStats {
        ArithStats {
            small_ops: self.small_ops.saturating_sub(earlier.small_ops),
            promotions: self.promotions.saturating_sub(earlier.promotions),
            big_ops: self.big_ops.saturating_sub(earlier.big_ops),
        }
    }
}

/// Read the process-wide counters, after flushing the calling thread's
/// buffered fast-path count (other live threads may still hold up to
/// `FLUSH_EVERY − 1` unflushed events each).
pub fn snapshot() -> ArithStats {
    SMALL_LOCAL.with(|c| {
        let n = c.get();
        if n > 0 {
            SMALL_OPS.fetch_add(n, Ordering::Relaxed);
            c.set(0);
        }
    });
    ArithStats {
        small_ops: SMALL_OPS.load(Ordering::Relaxed),
        promotions: PROMOTIONS.load(Ordering::Relaxed),
        big_ops: BIG_OPS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fraction_of_empty_delta_is_one() {
        let s = ArithStats::default();
        assert_eq!(s.fast_fraction(), 1.0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn since_is_saturating_and_componentwise() {
        let a = ArithStats { small_ops: 10, promotions: 2, big_ops: 1 };
        let b = ArithStats { small_ops: 25, promotions: 2, big_ops: 4 };
        let d = b.since(&a);
        assert_eq!(d, ArithStats { small_ops: 15, promotions: 0, big_ops: 3 });
        assert_eq!(a.since(&b).small_ops, 0);
    }

    #[test]
    fn snapshot_sees_counted_ops() {
        let before = snapshot();
        count_small();
        count_promotion();
        count_big();
        let after = snapshot();
        let d = after.since(&before);
        // Other tests run concurrently in this process, so only lower
        // bounds are meaningful here.
        assert!(d.small_ops >= 1);
        assert!(d.promotions >= 1);
        assert!(d.big_ops >= 1);
    }
}
