//! Normalized arbitrary-precision rationals.
//!
//! Arithmetic has a machine-word fast path: when both operands' numerators
//! and denominators fit `i64` (the common case throughout the simplex
//! tableau), cross-products are computed in `i128` — which cannot overflow,
//! since `|n|, d ≤ 2^63` bounds every product by `2^126` and every sum of
//! two products by `2^127` — and the result is reduced with a `u128`
//! Euclid gcd before being stored back as inline [`BigInt`]s. Only results
//! whose reduced numerator or denominator leaves the `i64` range touch the
//! heap-allocating bignum path.

use crate::{stats, BigInt};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) == 1`, and zero is `0/1`.
///
/// ```
/// use ccmatic_num::{rat, int};
/// assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
/// assert_eq!(rat(2, 4), rat(1, 2));
/// assert!(rat(-1, 2) < int(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigInt,
}

impl Rat {
    /// Construct `n / d`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(n: BigInt, d: BigInt) -> Self {
        assert!(!d.is_zero(), "rational with zero denominator");
        if let (Some(ns), Some(ds)) = (n.to_i64(), d.to_i64()) {
            // i128 absorbs the i64::MIN negation when flipping the sign
            // into the numerator.
            let (mut n, mut d) = (ns as i128, ds as i128);
            if d < 0 {
                n = -n;
                d = -d;
            }
            return Rat::from_i128_frac(n, d);
        }
        if n.is_zero() {
            return Rat::zero();
        }
        let g = n.gcd(&d);
        let mut num = &n / &g;
        let mut den = &d / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Build a normalized rational from `n / d` with `d > 0`, both already
    /// reduced into `i128` range (cross-products of `i64` components).
    /// Counts one fast-path op, or a promotion if the reduced value still
    /// leaves the `i64` range.
    fn from_i128_frac(n: i128, d: i128) -> Rat {
        debug_assert!(d > 0);
        if n == 0 {
            stats::count_small();
            return Rat::zero();
        }
        let g = gcd_u128(n.unsigned_abs(), d as u128) as i128;
        let (n, d) = (n / g, d / g);
        match (i64::try_from(n), i64::try_from(d)) {
            (Ok(ns), Ok(ds)) => {
                stats::count_small();
                Rat { num: BigInt::from(ns), den: BigInt::from(ds) }
            }
            _ => {
                stats::count_promotion();
                Rat { num: BigInt::from(n), den: BigInt::from(d) }
            }
        }
    }

    /// The numerator/denominator as machine words, if both fit.
    fn small_parts(&self) -> Option<(i64, i64)> {
        Some((self.num.to_i64()?, self.den.to_i64()?))
    }

    /// `true` iff both numerator and denominator fit an `i64` — the
    /// precondition for the cross-multiplying arithmetic fast path. The
    /// simplex consults this to decide when a tableau row's coefficients
    /// have left the fast path and content normalization should fold the
    /// common factor into the row scale.
    pub fn is_small(&self) -> bool {
        self.small_parts().is_some()
    }

    /// The rational 0.
    pub fn zero() -> Self {
        Rat { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rat { num: BigInt::one(), den: BigInt::one() }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is > 0.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the value is < 0.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        // Already normalized, so swapping is enough — no gcd required.
        if self.num.is_negative() {
            Rat { num: -&self.den, den: -&self.num }
        } else {
            Rat { num: self.den.clone(), den: self.num.clone() }
        }
    }

    /// Largest integer ≤ self, as a `BigInt`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer ≥ self, as a `BigInt`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_positive() {
            &q + &BigInt::one()
        } else {
            q
        }
    }

    /// Approximate `f64` value (reporting only).
    pub fn to_f64(&self) -> f64 {
        // Scale so the division stays in range for huge operands.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            self.num.to_f64() / self.den.to_f64()
        } else {
            // Shift both down; relative error is negligible for reporting.
            let shift = (nb.max(db) - 512).max(0) as usize;
            let scale = {
                let mut s = BigInt::one();
                let two = BigInt::from(2i64);
                for _ in 0..shift {
                    s = &s * &two;
                }
                s
            };
            (&self.num / &scale).to_f64() / (&self.den / &scale).to_f64()
        }
    }

    /// The midpoint `(a + b) / 2`.
    pub fn midpoint(a: &Rat, b: &Rat) -> Rat {
        (a + b) * Rat::new(BigInt::one(), BigInt::from(2i64))
    }

    /// Parse a decimal literal: `"3"`, `"-1.5"`, `"0.25"`, or a fraction
    /// `"3/4"`, `"-7/2"`.
    pub fn from_decimal_str(s: &str) -> Option<Rat> {
        if let Some((n, d)) = s.split_once('/') {
            let n = BigInt::from_decimal(n.trim())?;
            let d = BigInt::from_decimal(d.trim())?;
            if d.is_zero() {
                return None;
            }
            return Some(Rat::new(n, d));
        }
        match s.split_once('.') {
            None => BigInt::from_decimal(s).map(|n| Rat::new(n, BigInt::one())),
            Some((int_part, frac_part)) => {
                if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                let negative = int_part.starts_with('-');
                let int_val = if int_part == "-" || int_part.is_empty() {
                    BigInt::zero()
                } else {
                    BigInt::from_decimal(int_part)?
                };
                let frac_val = BigInt::from_decimal(frac_part)?;
                let mut den = BigInt::one();
                let ten = BigInt::from(10i64);
                for _ in 0..frac_part.len() {
                    den = &den * &ten;
                }
                let mag = &int_val.abs() * &den + &frac_val;
                let num = if negative { -mag } else { mag };
                Some(Rat::new(num, den))
            }
        }
    }

    /// Reference constructor that normalizes entirely on the `BigInt` limb
    /// path (differential-test hook; results must be bit-identical to
    /// [`Rat::new`]).
    #[doc(hidden)]
    pub fn ref_new(n: BigInt, d: BigInt) -> Rat {
        assert!(!d.is_zero(), "rational with zero denominator");
        if n.is_zero() {
            return Rat::zero();
        }
        let g = n.ref_gcd(&d);
        let mut num = n.ref_divmod(&g).0;
        let mut den = d.ref_divmod(&g).0;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Reference addition on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_add(&self, other: &Rat) -> Rat {
        Rat::ref_new(
            self.num.ref_mul(&other.den).ref_add(&other.num.ref_mul(&self.den)),
            self.den.ref_mul(&other.den),
        )
    }

    /// Reference subtraction on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_sub(&self, other: &Rat) -> Rat {
        Rat::ref_new(
            self.num.ref_mul(&other.den).ref_sub(&other.num.ref_mul(&self.den)),
            self.den.ref_mul(&other.den),
        )
    }

    /// Reference multiplication on the limb path (differential-test hook).
    #[doc(hidden)]
    pub fn ref_mul(&self, other: &Rat) -> Rat {
        Rat::ref_new(self.num.ref_mul(&other.num), self.den.ref_mul(&other.den))
    }

    /// Reference division on the limb path (differential-test hook).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    #[doc(hidden)]
    pub fn ref_div(&self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "rational division by zero");
        Rat::ref_new(self.num.ref_mul(&other.den), self.den.ref_mul(&other.num))
    }

    /// Reference comparison via limb-path cross-multiplication
    /// (differential-test hook).
    #[doc(hidden)]
    pub fn ref_cmp(&self, other: &Rat) -> Ordering {
        self.num.ref_mul(&other.den).cmp(&other.num.ref_mul(&self.den))
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat { num: BigInt::from(v), den: BigInt::one() }
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Self {
        Rat { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⇔  a·d vs c·b
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            stats::count_small();
            return (an as i128 * bd as i128).cmp(&(bn as i128 * ad as i128));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -&self.num, den: self.den.clone() }
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            let n = an as i128 * bd as i128 + bn as i128 * ad as i128;
            let d = ad as i128 * bd as i128;
            return Rat::from_i128_frac(n, d);
        }
        Rat::new(&self.num * &other.den + &other.num * &self.den, &self.den * &other.den)
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            let n = an as i128 * bd as i128 - bn as i128 * ad as i128;
            let d = ad as i128 * bd as i128;
            return Rat::from_i128_frac(n, d);
        }
        Rat::new(&self.num * &other.den - &other.num * &self.den, &self.den * &other.den)
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            return Rat::from_i128_frac(an as i128 * bn as i128, ad as i128 * bd as i128);
        }
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "rational division by zero");
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            let (mut n, mut d) = (an as i128 * bd as i128, ad as i128 * bn as i128);
            if d < 0 {
                n = -n;
                d = -d;
            }
            return Rat::from_i128_frac(n, d);
        }
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

/// Euclid gcd on `u128` (used only with at least one non-zero operand).
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

macro_rules! forward_binop_owned {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                (&self).$method(other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                self.$method(&other)
            }
        }
    };
}

forward_binop_owned!(Add, add);
forward_binop_owned!(Sub, sub);
forward_binop_owned!(Mul, mul);
forward_binop_owned!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({})", self)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, rat};

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), Rat::zero());
        assert!(rat(1, -2).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn is_small_tracks_the_fast_path_boundary() {
        assert!(Rat::zero().is_small());
        assert!(rat(i64::MAX, 1).is_small());
        assert!(rat(i64::MIN, 1).is_small());
        assert!(rat(1, i64::MAX).is_small());
        // 2^63 in either component leaves the fast path.
        let big = &BigInt::from(i64::MAX) + &BigInt::one();
        assert!(!Rat::new(big.clone(), BigInt::one()).is_small());
        assert!(!Rat::new(BigInt::one(), big).is_small());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), int(2));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn comparisons() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == int(1));
        assert!(rat(-3, 2) < int(-1));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(int(5).floor(), BigInt::from(5i64));
        assert_eq!(int(5).ceil(), BigInt::from(5i64));
    }

    #[test]
    fn recip() {
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rat::zero().recip();
    }

    #[test]
    fn parse_decimals() {
        assert_eq!(Rat::from_decimal_str("3").unwrap(), int(3));
        assert_eq!(Rat::from_decimal_str("-1.5").unwrap(), rat(-3, 2));
        assert_eq!(Rat::from_decimal_str("0.25").unwrap(), rat(1, 4));
        assert_eq!(Rat::from_decimal_str("3.6").unwrap(), rat(18, 5));
        assert_eq!(Rat::from_decimal_str("3/4").unwrap(), rat(3, 4));
        assert_eq!(Rat::from_decimal_str("-7/2").unwrap(), rat(-7, 2));
        assert!(Rat::from_decimal_str("1/0").is_none());
        assert!(Rat::from_decimal_str("abc").is_none());
        assert!(Rat::from_decimal_str("1.").is_none());
    }

    #[test]
    fn display() {
        assert_eq!(int(3).to_string(), "3");
        assert_eq!(rat(-3, 2).to_string(), "-3/2");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn midpoint() {
        assert_eq!(Rat::midpoint(&int(1), &int(2)), rat(3, 2));
        assert_eq!(Rat::midpoint(&rat(-1, 2), &rat(1, 2)), Rat::zero());
    }

    #[test]
    fn to_f64() {
        assert_eq!(rat(1, 2).to_f64(), 0.5);
        assert_eq!(rat(-1, 4).to_f64(), -0.25);
    }
}
