//! Exact arbitrary-precision arithmetic for the CCmatic workspace.
//!
//! The simplex-based linear-real-arithmetic theory solver in the
//! `ccmatic-smt` crate pivots on exact rational tableaux; floating point
//! would silently break soundness and fixed-width integers overflow after a
//! few dozen pivots. This crate provides the three numeric types the solver
//! needs:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integer,
//! * [`Rat`] — normalized rational built on [`BigInt`],
//! * [`DeltaRat`] — a rational extended with an infinitesimal `δ` component,
//!   used to represent strict bounds (`x < c` becomes `x ≤ c − δ`).
//!
//! The types are deliberately simple (schoolbook multiplication, Knuth-style
//! long division): formulas in this workspace have at most a few thousand
//! atoms and coefficients that start as small integers or halves, so limb
//! counts stay tiny and asymptotics never matter. Simplicity and obvious
//! correctness win (the smoltcp design rule).
//!
//! Because coefficients are small, both [`BigInt`] and [`Rat`] carry an
//! inline machine-word fast path and promote to heap-allocated limbs only
//! on overflow; [`arith_snapshot`] exposes process-wide counters
//! ([`ArithStats`]) of fast-path coverage and promotions.

mod bigint;
mod delta;
mod rational;
pub mod rng;
mod stats;

pub use bigint::BigInt;
pub use delta::DeltaRat;
pub use rational::Rat;
pub use rng::SmallRng;
pub use stats::{snapshot as arith_snapshot, ArithStats};

/// Convenience constructor: the rational `n / d`.
///
/// # Panics
/// Panics if `d == 0`.
pub fn rat(n: i64, d: i64) -> Rat {
    Rat::new(BigInt::from(n), BigInt::from(d))
}

/// Convenience constructor: the integer rational `n`.
pub fn int(n: i64) -> Rat {
    Rat::from(n)
}
