//! Delta-rationals: rationals extended with an infinitesimal component.
//!
//! The general simplex procedure for linear *real* arithmetic must handle
//! strict inequalities. The standard trick (de Moura & Bjørner, "A fast
//! linear-arithmetic solver for DPLL(T)") replaces `x < c` with
//! `x ≤ c − δ` where `δ` is a symbolic positive infinitesimal. Values are
//! then pairs `(r, k)` representing `r + k·δ`, ordered lexicographically.
//! At the end of solving, any satisfying assignment over delta-rationals can
//! be converted to a plain rational model by choosing a concrete small `δ`.

use crate::Rat;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A value `real + delta·δ` where `δ` is an infinitesimal positive quantity.
///
/// ```
/// use ccmatic_num::{DeltaRat, int};
/// let just_below_one = DeltaRat::strictly_below(int(1));
/// assert!(just_below_one < DeltaRat::from(int(1)));
/// assert!(DeltaRat::from(int(0)) < just_below_one);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DeltaRat {
    /// Standard (real) part.
    pub real: Rat,
    /// Coefficient of the infinitesimal δ.
    pub delta: Rat,
}

impl DeltaRat {
    /// The value `r + k·δ`.
    pub fn new(real: Rat, delta: Rat) -> Self {
        DeltaRat { real, delta }
    }

    /// Zero.
    pub fn zero() -> Self {
        DeltaRat { real: Rat::zero(), delta: Rat::zero() }
    }

    /// The value infinitesimally below `r` (i.e. `r − δ`), used for strict
    /// upper bounds `x < r`.
    pub fn strictly_below(r: Rat) -> Self {
        DeltaRat { real: r, delta: Rat::from(-1i64) }
    }

    /// The value infinitesimally above `r` (i.e. `r + δ`), used for strict
    /// lower bounds `x > r`.
    pub fn strictly_above(r: Rat) -> Self {
        DeltaRat { real: r, delta: Rat::one() }
    }

    /// True iff the delta component is zero (the value is a plain rational).
    pub fn is_exact(&self) -> bool {
        self.delta.is_zero()
    }

    /// Concretize with a specific positive value for δ.
    pub fn eval(&self, delta_value: &Rat) -> Rat {
        &self.real + &(&self.delta * delta_value)
    }

    /// Scale by a rational factor.
    pub fn scale(&self, k: &Rat) -> DeltaRat {
        DeltaRat { real: &self.real * k, delta: &self.delta * k }
    }
}

impl From<Rat> for DeltaRat {
    fn from(r: Rat) -> Self {
        DeltaRat { real: r, delta: Rat::zero() }
    }
}

impl From<i64> for DeltaRat {
    fn from(v: i64) -> Self {
        DeltaRat::from(Rat::from(v))
    }
}

impl PartialOrd for DeltaRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeltaRat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lexicographic: δ is smaller than any positive rational.
        self.real.cmp(&other.real).then_with(|| self.delta.cmp(&other.delta))
    }
}

impl Add for &DeltaRat {
    type Output = DeltaRat;
    fn add(self, other: &DeltaRat) -> DeltaRat {
        DeltaRat { real: &self.real + &other.real, delta: &self.delta + &other.delta }
    }
}

impl Sub for &DeltaRat {
    type Output = DeltaRat;
    fn sub(self, other: &DeltaRat) -> DeltaRat {
        DeltaRat { real: &self.real - &other.real, delta: &self.delta - &other.delta }
    }
}

impl Mul<&Rat> for &DeltaRat {
    type Output = DeltaRat;
    fn mul(self, k: &Rat) -> DeltaRat {
        self.scale(k)
    }
}

impl Neg for &DeltaRat {
    type Output = DeltaRat;
    fn neg(self) -> DeltaRat {
        DeltaRat { real: -&self.real, delta: -&self.delta }
    }
}

impl Add for DeltaRat {
    type Output = DeltaRat;
    fn add(self, other: DeltaRat) -> DeltaRat {
        &self + &other
    }
}

impl Sub for DeltaRat {
    type Output = DeltaRat;
    fn sub(self, other: DeltaRat) -> DeltaRat {
        &self - &other
    }
}

impl fmt::Display for DeltaRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delta.is_zero() {
            write!(f, "{}", self.real)
        } else if self.delta.is_positive() {
            write!(f, "{}+{}δ", self.real, self.delta)
        } else {
            write!(f, "{}{}δ", self.real, self.delta)
        }
    }
}

impl fmt::Debug for DeltaRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeltaRat({})", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, rat};

    #[test]
    fn strict_bounds_order() {
        let one = DeltaRat::from(int(1));
        let below = DeltaRat::strictly_below(int(1));
        let above = DeltaRat::strictly_above(int(1));
        assert!(below < one);
        assert!(one < above);
        assert!(below < above);
        // δ is smaller than any positive rational gap.
        assert!(DeltaRat::from(rat(999999, 1000000)) < below);
    }

    #[test]
    fn arithmetic() {
        let a = DeltaRat::new(int(1), int(2));
        let b = DeltaRat::new(int(3), int(-1));
        assert_eq!(&a + &b, DeltaRat::new(int(4), int(1)));
        assert_eq!(&a - &b, DeltaRat::new(int(-2), int(3)));
        assert_eq!(a.scale(&int(2)), DeltaRat::new(int(2), int(4)));
        assert_eq!(-&a, DeltaRat::new(int(-1), int(-2)));
    }

    #[test]
    fn eval_concretizes() {
        let v = DeltaRat::strictly_below(int(1));
        assert_eq!(v.eval(&rat(1, 100)), rat(99, 100));
        let w = DeltaRat::strictly_above(int(0));
        assert_eq!(w.eval(&rat(1, 4)), rat(1, 4));
    }

    #[test]
    fn display() {
        assert_eq!(DeltaRat::from(int(2)).to_string(), "2");
        assert_eq!(DeltaRat::strictly_above(int(2)).to_string(), "2+1δ");
        assert_eq!(DeltaRat::strictly_below(int(2)).to_string(), "2-1δ");
    }
}
