//! Variables and constraints of the network model.

use ccmatic_num::Rat;
use ccmatic_smt::{Context, LinExpr, RealVar, Term};

/// Static parameters of the modeled path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Trace length `T`: the CCA rule is enforced on `t ∈ [0, T]`.
    pub horizon: usize,
    /// History depth: variables exist for `t ∈ [−history, T]`, letting the
    /// solver pick arbitrary initial conditions. Must cover the CCA
    /// template's look-back plus one (the deepest `ack(t−i) = S(t−i−1)`
    /// sample the rule reads at `t = 0`).
    pub history: usize,
    /// Link rate `C` in BDP per Rm (1 after normalization).
    pub link_rate: Rat,
    /// Bound `D` (in Rm units) on non-congestive delay: the link may lag
    /// the token line by at most this much. The paper's experiments use 1.
    pub jitter: usize,
    /// Bottleneck buffer in BDP units. `None` (the paper's §4 scope:
    /// "lossless networks with infinite buffers") pins the loss process to
    /// zero; `Some(B)` enables CCAC's loss rule — packets are dropped only
    /// when the queue would exceed the token line by more than `B`.
    pub buffer: Option<Rat>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { horizon: 9, history: 5, link_rate: Rat::one(), jitter: 1, buffer: None }
    }
}

impl NetConfig {
    /// Total number of time indices (`t ∈ [−h, T]`).
    pub fn num_steps(&self) -> usize {
        self.horizon + self.history + 1
    }

    /// First modeled time index.
    pub fn t_min(&self) -> i64 {
        -(self.history as i64)
    }

    /// Last modeled time index.
    pub fn t_max(&self) -> i64 {
        self.horizon as i64
    }
}

/// Per-timestep SMT variables of one flow over one link.
#[derive(Clone, Debug)]
pub struct NetVars {
    cfg: NetConfig,
    a: Vec<RealVar>,
    s: Vec<RealVar>,
    w: Vec<RealVar>,
    l: Vec<RealVar>,
    cwnd: Vec<RealVar>,
}

impl NetVars {
    /// The configuration these variables were allocated for.
    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    fn idx(&self, t: i64) -> usize {
        let i = t - self.cfg.t_min();
        debug_assert!(
            (0..self.cfg.num_steps() as i64).contains(&i),
            "time index {t} out of range [{}, {}]",
            self.cfg.t_min(),
            self.cfg.t_max()
        );
        i as usize
    }

    /// Cumulative arrivals `A(t)`.
    pub fn a(&self, t: i64) -> RealVar {
        self.a[self.idx(t)]
    }

    /// Cumulative service `S(t)`.
    pub fn s(&self, t: i64) -> RealVar {
        self.s[self.idx(t)]
    }

    /// Cumulative wasted tokens `W(t)`.
    pub fn w(&self, t: i64) -> RealVar {
        self.w[self.idx(t)]
    }

    /// Cumulative lost bytes `L(t)` (identically zero in the default
    /// lossless configuration).
    pub fn l(&self, t: i64) -> RealVar {
        self.l[self.idx(t)]
    }

    /// Congestion window `cwnd(t)`.
    pub fn cwnd(&self, t: i64) -> RealVar {
        self.cwnd[self.idx(t)]
    }

    /// The sender's cumulative-ACK signal at time `t`: `ack(t) = S(t−1)`
    /// (ACKs take one propagation unit to come back).
    pub fn ack(&self, t: i64) -> LinExpr {
        LinExpr::var(self.s(t - 1))
    }

    /// Tokens accumulated by time `t`, net of waste:
    /// `C·(t+h) − W(t)` (token arrival measured from trace start).
    pub fn tokens(&self, t: i64) -> LinExpr {
        let elapsed = Rat::from(t + self.cfg.history as i64);
        LinExpr::constant(&self.cfg.link_rate * &elapsed) - LinExpr::var(self.w(t))
    }

    /// Standing queue `A(t) − L(t) − S(t)` in BDP units (the lost bytes
    /// never occupy the queue).
    pub fn queue(&self, t: i64) -> LinExpr {
        LinExpr::var(self.a(t)) - LinExpr::var(self.l(t)) - LinExpr::var(self.s(t))
    }
}

/// Allocate fresh variables for a trace of shape `cfg`.
pub fn alloc_net_vars(ctx: &mut Context, cfg: &NetConfig) -> NetVars {
    let n = cfg.num_steps();
    let t0 = cfg.t_min();
    let mut a = Vec::with_capacity(n);
    let mut s = Vec::with_capacity(n);
    let mut w = Vec::with_capacity(n);
    let mut l = Vec::with_capacity(n);
    let mut cwnd = Vec::with_capacity(n);
    for i in 0..n {
        let t = t0 + i as i64;
        a.push(ctx.real_var(format!("A[{t}]")));
        s.push(ctx.real_var(format!("S[{t}]")));
        w.push(ctx.real_var(format!("W[{t}]")));
        l.push(ctx.real_var(format!("L[{t}]")));
        cwnd.push(ctx.real_var(format!("cwnd[{t}]")));
    }
    NetVars { cfg: cfg.clone(), a, s, w, l, cwnd }
}

/// The conjunction of all *network* feasibility constraints (everything the
/// adversarial link may do), excluding the CCA/sender behaviour.
pub fn network_constraints(ctx: &mut Context, nv: &NetVars) -> Term {
    let cfg = nv.cfg().clone();
    let mut cs: Vec<Term> = Vec::new();
    let t0 = cfg.t_min();
    let t_end = cfg.t_max();

    // Anchors: service and waste both zero at trace start; the initial
    // backlog A(−h) ≥ 0 is the adversary's choice.
    let s0_zero = ctx.eq(LinExpr::var(nv.s(t0)), LinExpr::zero());
    let w0_zero = ctx.eq(LinExpr::var(nv.w(t0)), LinExpr::zero());
    let a0_nonneg = ctx.ge(LinExpr::var(nv.a(t0)), LinExpr::zero());
    cs.push(s0_zero);
    cs.push(w0_zero);
    cs.push(a0_nonneg);

    for t in t0..=t_end {
        // Monotone cumulatives.
        if t > t0 {
            let am = ctx.ge(LinExpr::var(nv.a(t)), LinExpr::var(nv.a(t - 1)));
            let sm = ctx.ge(LinExpr::var(nv.s(t)), LinExpr::var(nv.s(t - 1)));
            let wm = ctx.ge(LinExpr::var(nv.w(t)), LinExpr::var(nv.w(t - 1)));
            cs.push(am);
            cs.push(sm);
            cs.push(wm);
        }
        // Can't serve unsent (or lost) data.
        let delivered_cap = LinExpr::var(nv.a(t)) - LinExpr::var(nv.l(t));
        let no_phantom = ctx.le(LinExpr::var(nv.s(t)), delivered_cap);
        cs.push(no_phantom);
        // Token bucket cap.
        let cap = ctx.le(LinExpr::var(nv.s(t)), nv.tokens(t));
        cs.push(cap);
        // Bounded non-congestive delay: the link may lag the token line by
        // at most D steps.
        let lag = t - cfg.jitter as i64;
        if lag >= t0 {
            let elapsed = Rat::from(lag + cfg.history as i64);
            let floor = LinExpr::constant(&cfg.link_rate * &elapsed) - LinExpr::var(nv.w(lag));
            let min_service = ctx.ge(LinExpr::var(nv.s(t)), floor);
            cs.push(min_service);
        }
        // Waste only while idle.
        if t > t0 {
            let wasted = ctx.gt(LinExpr::var(nv.w(t)), LinExpr::var(nv.w(t - 1)));
            let backlog = LinExpr::var(nv.a(t)) - LinExpr::var(nv.l(t));
            let idle = ctx.le(backlog, nv.tokens(t));
            let guard = ctx.implies(wasted, idle);
            cs.push(guard);
        }
        // Loss process.
        match &cfg.buffer {
            None => {
                // Lossless scope (§4): the loss process is pinned to zero.
                cs.push(ctx.eq(LinExpr::var(nv.l(t)), LinExpr::zero()));
            }
            Some(buffer) => {
                if t == t0 {
                    cs.push(ctx.eq(LinExpr::var(nv.l(t)), LinExpr::zero()));
                } else {
                    // Monotone, and never exceeding what was sent.
                    cs.push(ctx.ge(LinExpr::var(nv.l(t)), LinExpr::var(nv.l(t - 1))));
                    cs.push(ctx.le(LinExpr::var(nv.l(t)), LinExpr::var(nv.a(t))));
                    // Buffer cap: undropped data may exceed the token line
                    // by at most the buffer (CCAC's loss rule).
                    let backlog = LinExpr::var(nv.a(t)) - LinExpr::var(nv.l(t));
                    let cap = nv.tokens(t) + LinExpr::constant(buffer.clone());
                    cs.push(ctx.le(backlog, cap.clone()));
                    // Drops only on a full buffer: if L grows, the backlog
                    // must sit exactly at the cap.
                    let dropped = ctx.gt(LinExpr::var(nv.l(t)), LinExpr::var(nv.l(t - 1)));
                    let backlog2 = LinExpr::var(nv.a(t)) - LinExpr::var(nv.l(t));
                    let full = ctx.ge(backlog2, cap);
                    let guard = ctx.implies(dropped, full);
                    cs.push(guard);
                }
            }
        }
    }
    ctx.and(cs)
}

/// The aggressive cwnd-limited sender rule, enforced on `t ∈ [0, T]`:
/// `A(t) = max(A(t−1), S(t−1) + cwnd(t))`.
pub fn sender_constraints(ctx: &mut Context, nv: &NetVars) -> Term {
    let mut cs: Vec<Term> = Vec::new();
    for t in 0..=nv.cfg().t_max() {
        let prev_a = LinExpr::var(nv.a(t - 1));
        let window = LinExpr::var(nv.s(t - 1)) + LinExpr::var(nv.cwnd(t));
        let at = LinExpr::var(nv.a(t));
        let ge1 = ctx.ge(at.clone(), prev_a.clone());
        let ge2 = ctx.ge(at.clone(), window.clone());
        let le1 = ctx.le(at.clone(), prev_a);
        let le2 = ctx.le(at, window);
        let tight = ctx.or(vec![le1, le2]);
        cs.push(ge1);
        cs.push(ge2);
        cs.push(tight);
    }
    ctx.and(cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmatic_num::{int, rat};
    use ccmatic_smt::{SatResult, Solver};

    fn tiny_cfg() -> NetConfig {
        NetConfig { horizon: 4, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    #[test]
    fn config_index_ranges() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.t_min(), -5);
        assert_eq!(cfg.t_max(), 9);
        assert_eq!(cfg.num_steps(), 15);
    }

    #[test]
    fn network_alone_is_satisfiable() {
        let mut ctx = Context::new();
        let cfg = tiny_cfg();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        assert_eq!(s.check(&ctx), SatResult::Sat);
    }

    #[test]
    fn service_cannot_exceed_tokens() {
        let mut ctx = Context::new();
        let cfg = tiny_cfg();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        // Try to force S(T) above C·(T+h): must be unsat.
        let too_much = ctx.gt(
            LinExpr::var(nv.s(cfg.t_max())),
            LinExpr::constant(int(cfg.t_max() + cfg.history as i64)),
        );
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, too_much);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn service_floor_holds_when_backlogged() {
        // With a large standing backlog (A huge) and no waste possible
        // (backlog keeps the queue nonempty), service at T must be at least
        // C·(T+h−D) − W, and W cannot grow; so S(T) ≥ C·(T+h−D) − W(−h) = C·(T+h−1).
        let mut ctx = Context::new();
        let cfg = tiny_cfg();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let backlog = ctx.ge(LinExpr::var(nv.a(cfg.t_min())), LinExpr::constant(int(1000)));
        let total = cfg.t_max() + cfg.history as i64 - cfg.jitter as i64;
        let starved = ctx.lt(LinExpr::var(nv.s(cfg.t_max())), LinExpr::constant(int(total)));
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, backlog);
        s.assert(&ctx, starved);
        assert_eq!(s.check(&ctx), SatResult::Unsat, "link must serve a backlogged sender");
    }

    #[test]
    fn waste_requires_idle() {
        // Demand that waste grows while the sender has a standing queue
        // above the token line: must be unsat.
        let mut ctx = Context::new();
        let cfg = tiny_cfg();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let t = 1i64;
        let wasted = ctx.gt(LinExpr::var(nv.w(t)), LinExpr::var(nv.w(t - 1)));
        let busy = ctx.gt(LinExpr::var(nv.a(t)), nv.tokens(t));
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, wasted);
        s.assert(&ctx, busy);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn lossless_scope_pins_losses_to_zero() {
        let mut ctx = Context::new();
        let cfg = tiny_cfg(); // buffer: None
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let lossy = ctx.gt(LinExpr::var(nv.l(1)), LinExpr::zero());
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, lossy);
        assert_eq!(s.check(&ctx), SatResult::Unsat, "L must be 0 in the lossless scope");
    }

    #[test]
    fn finite_buffer_bounds_backlog() {
        // With a 2-BDP buffer, the undropped backlog can never exceed the
        // token line by more than 2.
        let mut ctx = Context::new();
        let cfg = NetConfig { buffer: Some(int(2)), ..tiny_cfg() };
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let t = 2i64;
        let backlog = LinExpr::var(nv.a(t)) - LinExpr::var(nv.l(t));
        let over = ctx.gt(backlog, nv.tokens(t) + LinExpr::constant(int(2)));
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, over);
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }

    #[test]
    fn finite_buffer_admits_loss_traces() {
        // An aggressive enough sender can be made to lose data: a trace
        // with L(T) > 0 exists once A outruns tokens + buffer.
        let mut ctx = Context::new();
        let cfg = NetConfig { buffer: Some(int(1)), ..tiny_cfg() };
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let lossy = ctx.gt(LinExpr::var(nv.l(cfg.t_max())), LinExpr::zero());
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, lossy);
        assert_eq!(s.check(&ctx), SatResult::Sat, "losses must be expressible");
        // And the witness respects the drop-only-when-full rule.
        let m = s.model().unwrap();
        let trace = crate::trace::Trace::from_model(m, &nv);
        for t in (cfg.t_min() + 1)..=cfg.t_max() {
            if trace.l_at(t) > trace.l_at(t - 1) {
                let tokens = &(&cfg.link_rate * &Rat::from(t + cfg.history as i64)) - trace.w_at(t);
                let backlog = trace.a_at(t) - trace.l_at(t);
                assert!(backlog >= &tokens + &int(1), "drop at t={t} without a full buffer");
            }
        }
    }

    #[test]
    fn sender_rule_fills_window() {
        // With cwnd pinned to 2 and an otherwise free network, the sender
        // must keep inflight = A(t) − S(t−1) exactly 2 whenever it sends.
        let mut ctx = Context::new();
        let cfg = tiny_cfg();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let snd = sender_constraints(&mut ctx, &nv);
        let mut cwnd_cs = Vec::new();
        for t in 0..=cfg.t_max() {
            cwnd_cs.push(ctx.eq(LinExpr::var(nv.cwnd(t)), LinExpr::constant(int(2))));
        }
        let cwnd_fixed = ctx.and(cwnd_cs);
        // Pin the whole (adversary-chosen) history to zero arrivals so the
        // induction over the enforced window starts from a clean state.
        let mut history_pins = Vec::new();
        for t in cfg.t_min()..0 {
            history_pins.push(ctx.eq(LinExpr::var(nv.a(t)), LinExpr::zero()));
        }
        let no_backlog = ctx.and(history_pins);
        // Inflight above the window is impossible.
        let t_probe = 2i64;
        let overfull = ctx.gt(
            LinExpr::var(nv.a(t_probe)),
            LinExpr::var(nv.s(t_probe - 1)) + LinExpr::constant(rat(21, 10)),
        );
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, snd);
        s.assert(&ctx, cwnd_fixed);
        s.assert(&ctx, no_backlog);
        s.assert(&ctx, overfull);
        // A(t) = max(A(t−1), S(t−1)+2) and A never exceeded the window in
        // history (A(−h)=0), so inflight can exceed 2 only via A(t−1), which
        // inductively is bounded by S(t−2)+2 ≤ S(t−1)+2.
        assert_eq!(s.check(&ctx), SatResult::Unsat);
    }
}
