//! Concrete counterexample traces extracted from solver models.

use crate::model::NetVars;
use ccmatic_num::Rat;
use ccmatic_smt::Model;
use std::fmt;

/// A fully concrete execution trace of the network model.
///
/// Index 0 of every vector corresponds to `t = t_min = −h`; use
/// [`Trace::get`] helpers for time-indexed access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// First time index (−h).
    pub t_min: i64,
    /// Last time index (T).
    pub t_max: i64,
    /// Cumulative arrivals per step.
    pub a: Vec<Rat>,
    /// Cumulative service per step.
    pub s: Vec<Rat>,
    /// Cumulative wasted tokens per step.
    pub w: Vec<Rat>,
    /// Cumulative lost bytes per step (all zero in the lossless scope).
    pub l: Vec<Rat>,
    /// Congestion window per step.
    pub cwnd: Vec<Rat>,
}

impl Trace {
    /// Extract the trace values from a satisfying model.
    pub fn from_model(model: &Model, nv: &NetVars) -> Trace {
        let cfg = nv.cfg();
        let range = cfg.t_min()..=cfg.t_max();
        Trace {
            t_min: cfg.t_min(),
            t_max: cfg.t_max(),
            a: range.clone().map(|t| model.real(nv.a(t))).collect(),
            s: range.clone().map(|t| model.real(nv.s(t))).collect(),
            w: range.clone().map(|t| model.real(nv.w(t))).collect(),
            l: range.clone().map(|t| model.real(nv.l(t))).collect(),
            cwnd: range.map(|t| model.real(nv.cwnd(t))).collect(),
        }
    }

    fn idx(&self, t: i64) -> usize {
        assert!((self.t_min..=self.t_max).contains(&t), "time {t} out of trace range");
        (t - self.t_min) as usize
    }

    /// `A(t)`.
    pub fn a_at(&self, t: i64) -> &Rat {
        &self.a[self.idx(t)]
    }

    /// `S(t)`.
    pub fn s_at(&self, t: i64) -> &Rat {
        &self.s[self.idx(t)]
    }

    /// `W(t)`.
    pub fn w_at(&self, t: i64) -> &Rat {
        &self.w[self.idx(t)]
    }

    /// `L(t)`.
    pub fn l_at(&self, t: i64) -> &Rat {
        &self.l[self.idx(t)]
    }

    /// `cwnd(t)`.
    pub fn cwnd_at(&self, t: i64) -> &Rat {
        &self.cwnd[self.idx(t)]
    }

    /// Standing queue `A(t) − L(t) − S(t)`.
    pub fn queue_at(&self, t: i64) -> Rat {
        &(self.a_at(t) - self.l_at(t)) - self.s_at(t)
    }

    /// Whether waste increased at step `t` (i.e. `W(t) > W(t−1)`).
    pub fn waste_increased(&self, t: i64) -> bool {
        t > self.t_min && self.w_at(t) > self.w_at(t - 1)
    }

    /// Link utilization over the enforced window `[0, T]`:
    /// `(S(T) − S(0)) / (C·T)`, assuming `C = 1`.
    pub fn utilization(&self) -> Rat {
        let span = Rat::from(self.t_max);
        if span.is_zero() {
            return Rat::zero();
        }
        &(self.s_at(self.t_max) - self.s_at(0)) / &span
    }

    /// Maximum standing queue over `[0, T]`.
    pub fn max_queue(&self) -> Rat {
        (0..=self.t_max).map(|t| self.queue_at(t)).max().unwrap_or_else(Rat::zero)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "t", "A", "S", "W", "cwnd", "queue"
        )?;
        for t in self.t_min..=self.t_max {
            writeln!(
                f,
                "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}{}",
                t,
                fmt_rat(self.a_at(t)),
                fmt_rat(self.s_at(t)),
                fmt_rat(self.w_at(t)),
                fmt_rat(self.cwnd_at(t)),
                fmt_rat(&self.queue_at(t)),
                if t == -1 { "  ── window start ──" } else { "" },
            )?;
        }
        write!(
            f,
            "utilization {:.3}, max queue {:.3}",
            self.utilization().to_f64(),
            self.max_queue().to_f64()
        )
    }
}

fn fmt_rat(r: &Rat) -> String {
    if r.is_integer() {
        r.to_string()
    } else {
        format!("{:.3}", r.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{alloc_net_vars, network_constraints, NetConfig};
    use ccmatic_num::int;
    use ccmatic_smt::{Context, SatResult, Solver};

    #[test]
    fn trace_extraction_roundtrip() {
        let cfg =
            NetConfig { horizon: 3, history: 1, link_rate: Rat::one(), jitter: 1, buffer: None };
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let trace = Trace::from_model(s.model().unwrap(), &nv);
        assert_eq!(trace.t_min, -1);
        assert_eq!(trace.t_max, 3);
        // Extracted trace satisfies the constraints it was solved under.
        for t in trace.t_min..=trace.t_max {
            assert!(trace.s_at(t) <= trace.a_at(t), "S ≤ A violated at {t}");
            let tokens = &int(t + cfg.history as i64) - trace.w_at(t);
            assert!(trace.s_at(t) <= &tokens, "token bucket violated at {t}");
            if t > trace.t_min {
                assert!(trace.s_at(t) >= trace.s_at(t - 1), "S monotone");
                assert!(trace.a_at(t) >= trace.a_at(t - 1), "A monotone");
                assert!(trace.w_at(t) >= trace.w_at(t - 1), "W monotone");
            }
        }
        // Display renders without panicking and mentions the window marker.
        let shown = trace.to_string();
        assert!(shown.contains("window start"));
    }
}
