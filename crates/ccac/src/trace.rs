//! Concrete counterexample traces extracted from solver models.

use crate::model::NetVars;
use ccmatic_num::Rat;
use ccmatic_smt::Model;
use std::fmt;

/// A fully concrete execution trace of the network model.
///
/// Index 0 of every vector corresponds to `t = t_min = −h`; use
/// [`Trace::get`] helpers for time-indexed access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// First time index (−h).
    pub t_min: i64,
    /// Last time index (T).
    pub t_max: i64,
    /// Cumulative arrivals per step.
    pub a: Vec<Rat>,
    /// Cumulative service per step.
    pub s: Vec<Rat>,
    /// Cumulative wasted tokens per step.
    pub w: Vec<Rat>,
    /// Cumulative lost bytes per step (all zero in the lossless scope).
    pub l: Vec<Rat>,
    /// Congestion window per step.
    pub cwnd: Vec<Rat>,
}

impl Trace {
    /// Extract the trace values from a satisfying model.
    pub fn from_model(model: &Model, nv: &NetVars) -> Trace {
        let cfg = nv.cfg();
        let range = cfg.t_min()..=cfg.t_max();
        Trace {
            t_min: cfg.t_min(),
            t_max: cfg.t_max(),
            a: range.clone().map(|t| model.real(nv.a(t))).collect(),
            s: range.clone().map(|t| model.real(nv.s(t))).collect(),
            w: range.clone().map(|t| model.real(nv.w(t))).collect(),
            l: range.clone().map(|t| model.real(nv.l(t))).collect(),
            cwnd: range.map(|t| model.real(nv.cwnd(t))).collect(),
        }
    }

    fn idx(&self, t: i64) -> usize {
        assert!((self.t_min..=self.t_max).contains(&t), "time {t} out of trace range");
        (t - self.t_min) as usize
    }

    /// `A(t)`.
    pub fn a_at(&self, t: i64) -> &Rat {
        &self.a[self.idx(t)]
    }

    /// `S(t)`.
    pub fn s_at(&self, t: i64) -> &Rat {
        &self.s[self.idx(t)]
    }

    /// `W(t)`.
    pub fn w_at(&self, t: i64) -> &Rat {
        &self.w[self.idx(t)]
    }

    /// `L(t)`.
    pub fn l_at(&self, t: i64) -> &Rat {
        &self.l[self.idx(t)]
    }

    /// `cwnd(t)`.
    pub fn cwnd_at(&self, t: i64) -> &Rat {
        &self.cwnd[self.idx(t)]
    }

    /// Standing queue `A(t) − L(t) − S(t)`.
    pub fn queue_at(&self, t: i64) -> Rat {
        &(self.a_at(t) - self.l_at(t)) - self.s_at(t)
    }

    /// Whether waste increased at step `t` (i.e. `W(t) > W(t−1)`).
    pub fn waste_increased(&self, t: i64) -> bool {
        t > self.t_min && self.w_at(t) > self.w_at(t - 1)
    }

    /// Link utilization over the enforced window `[0, T]`:
    /// `(S(T) − S(0)) / (C·T)`, assuming `C = 1`.
    pub fn utilization(&self) -> Rat {
        let span = Rat::from(self.t_max);
        if span.is_zero() {
            return Rat::zero();
        }
        &(self.s_at(self.t_max) - self.s_at(0)) / &span
    }

    /// Maximum standing queue over `[0, T]`.
    pub fn max_queue(&self) -> Rat {
        (0..=self.t_max).map(|t| self.queue_at(t)).max().unwrap_or_else(Rat::zero)
    }

    /// Rewrite the waste schedule over `[0, T]` to the *minimal* one the
    /// service schedule admits, leaving `A`, `S`, `L`, `cwnd` and the
    /// pre-history waste untouched.
    ///
    /// Solver models are free to pick any `W` inside the feasible band, so
    /// two probes of the same verification query routinely return traces
    /// that differ only in arbitrary waste slack — which defeats trace
    /// subsumption (`W` domination is part of its premise). Canonicalizing
    /// to the unique minimum makes equal-`S` traces comparable again.
    ///
    /// For `u ≥ 0` the binding lower bounds on `W(u)` are waste
    /// monotonicity from `W(−1)` and the bounded-delay service floor
    /// `S(v+D) ≥ C·(v+h) − W(v)` for every `v ≤ u` with `v+D ≤ T`
    /// (`h = −t_min`, `D` = jitter); their running maximum
    ///
    /// `W′(u) = max(W(−1), max_{0 ≤ v ≤ u, v+D ≤ T} C·(v+h) − S(v+D))`
    ///
    /// is therefore itself feasible for the fixed `S`: it is monotone, meets
    /// every service floor by construction, and stays under the token-bucket
    /// cap `C·(u+h) − S(u)` because each term is `≤ W(v) ≤ W(u)`, which the
    /// original model kept under the cap. That last inequality also gives
    /// `W′ ≤ W` pointwise, so at every shared waste point the feasibility
    /// ceiling `C·(t+h) − W(t)` only rises. The waste-only-while-idle guard
    /// binds the *arrival* column, which replay re-derives per candidate and
    /// re-checks at every waste point, so any candidate replay accepts on
    /// the canonical trace has a genuine witness — refutations through it
    /// stay sound.
    ///
    /// The kill set is *not* a superset of the original's, though: where the
    /// model wasted earlier than the floors force, `W′` steps up later,
    /// creating waste points the original trace did not have — and each
    /// waste point adds an arrival-ceiling check to replay feasibility. In
    /// particular the candidate that *generated* the trace may no longer be
    /// refuted by the canonical form. Callers asserting a learned constraint
    /// must therefore re-check refutation of that candidate and keep the
    /// original trace when it fails (see `GenAdapter::learn`), or CEGIS can
    /// livelock re-proposing it.
    ///
    /// Two deliberate scope limits keep this sound: lossy traces are left
    /// alone (the loss rule pins the backlog to the token line exactly at
    /// drop points, so `W` is not free there), and the pre-history waste is
    /// preserved (its idle guard constrains the trace's *fixed* pre-history
    /// arrivals, which replay never re-checks).
    pub fn canonicalize_waste(&mut self, link_rate: &Rat, jitter: usize) {
        if self.l.iter().any(|l| !l.is_zero()) {
            return;
        }
        let h = -self.t_min;
        let d = jitter as i64;
        let mut floor = if self.t_min < 0 { self.w_at(-1).clone() } else { Rat::zero() };
        for u in 0..=self.t_max {
            if u + d <= self.t_max {
                let line = link_rate * &Rat::from(u + h);
                let need = &line - self.s_at(u + d);
                if need > floor {
                    floor = need;
                }
            }
            let i = self.idx(u);
            debug_assert!(
                floor <= self.w[i],
                "canonical waste exceeds the model's at t={u}: the source \
                 trace violates the bounded-delay service floor"
            );
            self.w[i] = floor.clone();
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "t", "A", "S", "W", "cwnd", "queue"
        )?;
        for t in self.t_min..=self.t_max {
            writeln!(
                f,
                "{:>4} {:>10} {:>10} {:>10} {:>10} {:>10}{}",
                t,
                fmt_rat(self.a_at(t)),
                fmt_rat(self.s_at(t)),
                fmt_rat(self.w_at(t)),
                fmt_rat(self.cwnd_at(t)),
                fmt_rat(&self.queue_at(t)),
                if t == -1 { "  ── window start ──" } else { "" },
            )?;
        }
        write!(
            f,
            "utilization {:.3}, max queue {:.3}",
            self.utilization().to_f64(),
            self.max_queue().to_f64()
        )
    }
}

fn fmt_rat(r: &Rat) -> String {
    if r.is_integer() {
        r.to_string()
    } else {
        format!("{:.3}", r.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{alloc_net_vars, network_constraints, NetConfig};
    use ccmatic_num::int;
    use ccmatic_smt::{Context, LinExpr, SatResult, Solver};

    #[test]
    fn trace_extraction_roundtrip() {
        let cfg =
            NetConfig { horizon: 3, history: 1, link_rate: Rat::one(), jitter: 1, buffer: None };
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let trace = Trace::from_model(s.model().unwrap(), &nv);
        assert_eq!(trace.t_min, -1);
        assert_eq!(trace.t_max, 3);
        // Extracted trace satisfies the constraints it was solved under.
        for t in trace.t_min..=trace.t_max {
            assert!(trace.s_at(t) <= trace.a_at(t), "S ≤ A violated at {t}");
            let tokens = &int(t + cfg.history as i64) - trace.w_at(t);
            assert!(trace.s_at(t) <= &tokens, "token bucket violated at {t}");
            if t > trace.t_min {
                assert!(trace.s_at(t) >= trace.s_at(t - 1), "S monotone");
                assert!(trace.a_at(t) >= trace.a_at(t - 1), "A monotone");
                assert!(trace.w_at(t) >= trace.w_at(t - 1), "W monotone");
            }
        }
        // Display renders without panicking and mentions the window marker.
        let shown = trace.to_string();
        assert!(shown.contains("window start"));
    }

    #[test]
    fn waste_canonicalization_is_minimal_sound_and_convergent() {
        let cfg =
            NetConfig { horizon: 6, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None };
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        // Force nonzero waste so canonicalization has real slack to strip.
        let wasted = ctx.ge(LinExpr::var(nv.w(cfg.t_max())), LinExpr::constant(int(2)));
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, wasted);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let original = Trace::from_model(s.model().unwrap(), &nv);

        let mut canon = original.clone();
        canon.canonicalize_waste(&cfg.link_rate, cfg.jitter);
        let h = cfg.history as i64;
        for t in 0..=canon.t_max {
            // Never more waste than the model chose, still monotone.
            assert!(canon.w_at(t) <= original.w_at(t), "W grew at {t}");
            assert!(canon.w_at(t) >= canon.w_at(t - 1), "W monotone at {t}");
            // The untouched service column still obeys the token bucket.
            let tokens = &int(t + h) - canon.w_at(t);
            assert!(canon.s_at(t) <= &tokens, "token bucket violated at {t}");
            // … and the bounded-delay service floor.
            let lag = t - cfg.jitter as i64;
            if lag >= canon.t_min {
                let floor = &int(lag + h) - canon.w_at(lag);
                assert!(canon.s_at(t) >= &floor, "service floor violated at {t}");
            }
        }
        // Only the enforced-window waste changes.
        for t in canon.t_min..0 {
            assert_eq!(canon.w_at(t), original.w_at(t), "pre-history waste touched at {t}");
        }
        assert_eq!(canon.a, original.a);
        assert_eq!(canon.s, original.s);
        assert_eq!(canon.l, original.l);
        assert_eq!(canon.cwnd, original.cwnd);

        // Idempotent: a canonical trace is a fixed point.
        let mut again = canon.clone();
        again.canonicalize_waste(&cfg.link_rate, cfg.jitter);
        assert_eq!(again.w, canon.w);

        // Traces differing only in waste slack converge to the same
        // schedule — the property that lets serial subsumption fire.
        let mut padded = original.clone();
        for t in 0..=padded.t_max {
            let i = padded.idx(t);
            padded.w[i] = original.w_at(t) + &int(1);
        }
        padded.canonicalize_waste(&cfg.link_rate, cfg.jitter);
        assert_eq!(padded.w, canon.w);

        // Lossy traces are left alone: the loss rule pins W there.
        let mut lossy = original.clone();
        let last = lossy.idx(lossy.t_max);
        lossy.l[last] = int(1);
        let before = lossy.w.clone();
        lossy.canonicalize_waste(&cfg.link_rate, cfg.jitter);
        assert_eq!(lossy.w, before);
    }
}
