//! A CCAC-style network model, encoded as SMT constraints.
//!
//! This crate re-derives the network-calculus link model of CCAC
//! (Arun et al., *Toward Formally Verifying Congestion Control Behavior*,
//! SIGCOMM '21), which the CCmatic paper uses as its verifier. The model
//! admits every behaviour a real path can exhibit within two rules — a
//! token-bucket service cap and a bounded non-congestive delay — and is
//! therefore *adversarial*: a property proven over all traces of this model
//! holds under ACK aggregation, jitter, token-bucket policers, and similar
//! sub-RTT phenomena.
//!
//! # The model
//!
//! Time is discretized in units of the propagation delay `Rm` (one RTT at
//! zero queueing). A trace spans `t ∈ [−h, T]`: the `h` *history* steps
//! give the solver freedom to pick arbitrary initial conditions (CCAC's
//! trick for reasoning about steady state with finite traces), and the
//! congestion-control rule is enforced on `t ∈ [0, T]`.
//!
//! Per time step the model tracks cumulative quantities (all in units of
//! BDP = `C·Rm`, with the link rate `C` normalized to 1 by default):
//!
//! * `A(t)` — bytes the sender has put on the wire ("arrivals"),
//! * `S(t)` — bytes the link has served ("service"),
//! * `W(t)` — service tokens the link has *wasted* while idle,
//! * `cwnd(t)` — the congestion window chosen by the CCA.
//!
//! Constraints (see [`network_constraints`]):
//!
//! * monotonicity of `A`, `S`, `W`; anchors `S(−h) = W(−h) = 0`;
//! * no serving unsent data: `S(t) ≤ A(t)`;
//! * token bucket: `S(t) ≤ C·(t+h) − W(t)`;
//! * bounded non-congestive delay (jitter `D`):
//!   `S(t) ≥ C·(t+h−D) − W(t−D)`;
//! * waste only when idle: `W(t) > W(t−1) ⟹ A(t) ≤ C·(t+h) − W(t)`.
//!
//! The sender is aggressive and cwnd-limited ([`sender_constraints`]):
//! `A(t) = max(A(t−1), S(t−1) + cwnd(t))`, with the ACK signal delayed one
//! propagation unit: `ack(t) = S(t−1)`.
//!
//! # Desired property
//!
//! [`desired_property`] encodes the paper's induction-friendly relaxation
//! of "high utilization AND bounded delay" (§3.1.1):
//!
//! ```text
//! (S(T)−S(0) ≥ thresh_U·C·T  ∨  cwnd(T) > cwnd(0))
//! ∧ (∀t. queue(t) ≤ thresh_D  ∨  queue(T) < queue(0)  ∨  cwnd(T) < cwnd(0))
//! ```
//!
//! where `queue(t) = A(t) − S(t)` is the standing queue in BDP units (at
//! `C = 1`, numerically equal to queueing delay in RTTs). The disjuncts
//! make the property provable by induction on trace windows: a CCA may
//! momentarily miss a target as long as it moves in the right direction.
//! Deviations from the paper's exact encoding (it compares `ack`
//! cumulatives; we compare `S`, which differs by a constant offset) are
//! documented in DESIGN.md.

pub mod model;
pub mod property;
pub mod trace;
pub mod validate;

pub use model::{alloc_net_vars, network_constraints, sender_constraints, NetConfig, NetVars};
pub use property::{desired_property, DesiredParts, Thresholds};
pub use trace::Trace;
pub use validate::{check_sender_rule, check_trace};
