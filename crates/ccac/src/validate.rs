//! Native (non-SMT) feasibility checking of concrete traces.
//!
//! [`check_trace`] re-states every constraint of
//! [`network_constraints`](crate::model) as an exact rational check over a
//! concrete [`Trace`], and [`check_sender_rule`] does the same for
//! [`sender_constraints`](crate::model). They share no solver code, so a
//! trace accepted here *and* produced outside the SMT pipeline (e.g. lifted
//! from the simulator) is an independent witness that the model admits it —
//! the foundation of the fuzzer's model-gap detector: a concrete,
//! network-feasible trace violating the objective that the verifier's
//! UNSAT verdict claims cannot exist exposes a bug in the encoding.

use crate::model::NetConfig;
use crate::trace::Trace;
use ccmatic_num::Rat;

/// Check every *network* constraint (the adversarial link's feasibility
/// band) against a concrete trace. Returns the first violated constraint,
/// described in the model's own vocabulary.
pub fn check_trace(trace: &Trace, cfg: &NetConfig) -> Result<(), String> {
    if trace.t_min != cfg.t_min() || trace.t_max != cfg.t_max() {
        return Err(format!(
            "trace shape [{}, {}] does not match net [{}, {}]",
            trace.t_min,
            trace.t_max,
            cfg.t_min(),
            cfg.t_max()
        ));
    }
    let t0 = cfg.t_min();
    let t_end = cfg.t_max();
    let h = cfg.history as i64;
    let rate = &cfg.link_rate;
    let tokens = |t: i64| -> Rat { &(rate * &Rat::from(t + h)) - trace.w_at(t) };

    // Anchors.
    if !trace.s_at(t0).is_zero() {
        return Err(format!("S({t0}) = {} ≠ 0", trace.s_at(t0)));
    }
    if !trace.w_at(t0).is_zero() {
        return Err(format!("W({t0}) = {} ≠ 0", trace.w_at(t0)));
    }
    if trace.a_at(t0).is_negative() {
        return Err(format!("A({t0}) = {} < 0", trace.a_at(t0)));
    }

    for t in t0..=t_end {
        // Monotone cumulatives.
        if t > t0 {
            for (name, col) in [("A", &trace.a), ("S", &trace.s), ("W", &trace.w)] {
                let i = (t - t0) as usize;
                if col[i] < col[i - 1] {
                    return Err(format!("{name} not monotone at t={t}"));
                }
            }
        }
        // Can't serve unsent (or lost) data.
        let delivered_cap = trace.a_at(t) - trace.l_at(t);
        if trace.s_at(t) > &delivered_cap {
            return Err(format!("S({t}) = {} > A−L = {delivered_cap}", trace.s_at(t)));
        }
        // Token bucket cap.
        let cap = tokens(t);
        if trace.s_at(t) > &cap {
            return Err(format!("S({t}) = {} > tokens {cap}", trace.s_at(t)));
        }
        // Bounded non-congestive delay.
        let lag = t - cfg.jitter as i64;
        if lag >= t0 {
            let floor = &(rate * &Rat::from(lag + h)) - trace.w_at(lag);
            if trace.s_at(t) < &floor {
                return Err(format!("S({t}) = {} < service floor {floor}", trace.s_at(t)));
            }
        }
        // Waste only while idle.
        if trace.waste_increased(t) {
            let backlog = trace.a_at(t) - trace.l_at(t);
            if backlog > cap {
                return Err(format!(
                    "W grew at t={t} while backlogged (A−L = {backlog} > tokens {cap})"
                ));
            }
        }
        // Loss process.
        match &cfg.buffer {
            None => {
                if !trace.l_at(t).is_zero() {
                    return Err(format!("L({t}) = {} ≠ 0 in the lossless scope", trace.l_at(t)));
                }
            }
            Some(buffer) => {
                if t == t0 {
                    if !trace.l_at(t).is_zero() {
                        return Err(format!("L({t0}) = {} ≠ 0", trace.l_at(t)));
                    }
                } else {
                    if trace.l_at(t) < trace.l_at(t - 1) {
                        return Err(format!("L not monotone at t={t}"));
                    }
                    if trace.l_at(t) > trace.a_at(t) {
                        return Err(format!("L({t}) exceeds arrivals"));
                    }
                    let backlog = trace.a_at(t) - trace.l_at(t);
                    let cap_b = &cap + buffer;
                    if backlog > cap_b {
                        return Err(format!("backlog {backlog} over buffer cap {cap_b} at t={t}"));
                    }
                    if trace.l_at(t) > trace.l_at(t - 1) && backlog < cap_b {
                        return Err(format!("drop at t={t} without a full buffer"));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Check the aggressive cwnd-limited sender rule
/// `A(t) = max(A(t−1), S(t−1) + cwnd(t))` on the enforced window
/// `t ∈ [0, T]` against the trace's recorded arrival/cwnd columns.
pub fn check_sender_rule(trace: &Trace) -> Result<(), String> {
    for t in 0..=trace.t_max {
        let window = trace.s_at(t - 1) + trace.cwnd_at(t);
        let expected = trace.a_at(t - 1).clone().max(window);
        if trace.a_at(t) != &expected {
            return Err(format!(
                "A({t}) = {} ≠ max(A({}) = {}, S({}) + cwnd({t}) = {})",
                trace.a_at(t),
                t - 1,
                trace.a_at(t - 1),
                t - 1,
                expected
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{alloc_net_vars, network_constraints, sender_constraints};
    use ccmatic_num::int;
    use ccmatic_smt::{Context, SatResult, Solver};

    fn cfg() -> NetConfig {
        NetConfig { horizon: 5, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    /// Every model the SMT solver accepts must pass the native checker —
    /// the two encodings of the same constraints agree on the accept side.
    #[test]
    fn smt_models_pass_the_native_checker() {
        let cfg = cfg();
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let snd = sender_constraints(&mut ctx, &nv);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, snd);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let trace = Trace::from_model(s.model().unwrap(), &nv);
        check_trace(&trace, &cfg).expect("SMT-feasible trace rejected natively");
        check_sender_rule(&trace).expect("SMT sender rule rejected natively");
    }

    #[test]
    fn violations_are_caught_and_named() {
        let cfg = cfg();
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        assert_eq!(s.check(&ctx), SatResult::Sat);
        let good = Trace::from_model(s.model().unwrap(), &nv);

        // Token-bucket violation.
        let mut bad = good.clone();
        let i = bad.s.len() - 1;
        bad.s[i] = int(1000);
        let err = check_trace(&bad, &cfg).unwrap_err();
        assert!(err.contains("tokens") || err.contains("A−L"), "got: {err}");

        // Service anchor violation.
        let mut bad = good.clone();
        bad.s[0] = int(1);
        assert!(check_trace(&bad, &cfg).is_err());

        // Waste while backlogged.
        let mut bad = good.clone();
        let last = bad.w.len() - 1;
        bad.a[last] = int(1000); // huge backlog …
        bad.w[last] = &bad.w[last - 1] + &int(1); // … yet waste grows
        assert!(check_trace(&bad, &cfg).is_err());

        // Shape mismatch.
        let other = NetConfig { horizon: 7, ..cfg.clone() };
        assert!(check_trace(&good, &other).is_err());
    }
}
