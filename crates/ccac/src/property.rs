//! The desired-property encoding (the paper's §3.1.1 relaxation).

use crate::model::NetVars;
use ccmatic_num::Rat;
use ccmatic_smt::{Context, LinExpr, Term};

/// Performance targets for the synthesized CCA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Minimum fraction of link capacity the CCA must use in steady state
    /// (`thresh_U`; the paper starts at 0.5).
    pub util: Rat,
    /// Maximum standing queue in BDP units ≡ queueing delay in RTTs at
    /// `C = 1` (`thresh_D`; the paper starts at 4).
    pub delay: Rat,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds { util: Rat::new(1i64.into(), 2i64.into()), delay: Rat::from(4i64) }
    }
}

/// The individual disjuncts of the desired property, exposed so tools can
/// report *which* clause a counterexample violates.
#[derive(Clone, Copy, Debug)]
pub struct DesiredParts {
    /// `S(T) − S(0) ≥ thresh_U · C · T`.
    pub util_ok: Term,
    /// `cwnd(T) > cwnd(0)` — the CCA is ramping up.
    pub cwnd_up: Term,
    /// `∀ t ∈ [0,T]. queue(t) ≤ thresh_D`.
    pub queue_ok: Term,
    /// `queue(T) < queue(0)` — the backlog is draining.
    pub queue_down: Term,
    /// `cwnd(T) < cwnd(0)` — the CCA is backing off.
    pub cwnd_down: Term,
    /// The full property:
    /// `(util_ok ∨ cwnd_up) ∧ (queue_ok ∨ queue_down ∨ cwnd_down)`.
    pub desired: Term,
}

/// Encode the relaxed steady-state property over a trace.
///
/// The relaxation follows the paper: on a finite window with arbitrary
/// initial conditions, the best any CCA can do is either meet the target or
/// move toward it; mathematical induction over consecutive windows then
/// yields the steady-state guarantee (see the paper's §3.1.1 and DESIGN.md
/// for the induction argument specialized to this encoding).
pub fn desired_property(ctx: &mut Context, nv: &NetVars, th: &Thresholds) -> DesiredParts {
    let cfg = nv.cfg().clone();
    let t_end = cfg.t_max();

    // Utilization over the enforced window.
    let work = LinExpr::var(nv.s(t_end)) - LinExpr::var(nv.s(0));
    let target = &(&th.util * &cfg.link_rate) * &Rat::from(t_end);
    let util_ok = ctx.ge(work, LinExpr::constant(target));

    let cwnd_up = ctx.gt(LinExpr::var(nv.cwnd(t_end)), LinExpr::var(nv.cwnd(0)));
    let cwnd_down = ctx.lt(LinExpr::var(nv.cwnd(t_end)), LinExpr::var(nv.cwnd(0)));

    let mut queue_cs = Vec::new();
    for t in 0..=t_end {
        queue_cs.push(ctx.le(nv.queue(t), LinExpr::constant(th.delay.clone())));
    }
    let queue_ok = ctx.and(queue_cs);
    let queue_down = ctx.lt(nv.queue(t_end), nv.queue(0));

    let rampup_or_util = ctx.or(vec![util_ok, cwnd_up]);
    let bounded_or_draining = ctx.or(vec![queue_ok, queue_down, cwnd_down]);
    let desired = ctx.and(vec![rampup_or_util, bounded_or_draining]);

    DesiredParts { util_ok, cwnd_up, queue_ok, queue_down, cwnd_down, desired }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{alloc_net_vars, network_constraints, sender_constraints, NetConfig};
    use ccmatic_num::int;
    use ccmatic_smt::{SatResult, Solver};

    #[test]
    fn ideal_full_rate_trace_satisfies_property() {
        // Pin an ideal trace: no waste, service at line rate, cwnd = 2,
        // no initial backlog. The property must hold (so ¬desired is unsat
        // together with the pinned trace).
        let cfg =
            NetConfig { horizon: 6, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None };
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let snd = sender_constraints(&mut ctx, &nv);
        let mut pins = Vec::new();
        for t in cfg.t_min()..=cfg.t_max() {
            // S(t) = t + h (full rate), W(t) = 0.
            pins.push(
                ctx.eq(LinExpr::var(nv.s(t)), LinExpr::constant(int(t + cfg.history as i64))),
            );
            pins.push(ctx.eq(LinExpr::var(nv.w(t)), LinExpr::zero()));
            pins.push(ctx.eq(LinExpr::var(nv.cwnd(t)), LinExpr::constant(int(2))));
        }
        // History arrivals consistent with the window: A(t) = S(t−1) + 2 for
        // history steps too (t−1 ≥ t_min).
        for t in (cfg.t_min() + 1)..0 {
            pins.push(
                ctx.eq(
                    LinExpr::var(nv.a(t)),
                    LinExpr::var(nv.s(t - 1)) + LinExpr::constant(int(2)),
                ),
            );
        }
        pins.push(ctx.eq(LinExpr::var(nv.a(cfg.t_min())), LinExpr::constant(int(2))));
        let pinned = ctx.and(pins);
        let parts = desired_property(&mut ctx, &nv, &Thresholds::default());
        let not_desired = ctx.not(parts.desired);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, snd);
        s.assert(&ctx, pinned);
        s.assert(&ctx, not_desired);
        assert_eq!(
            s.check(&ctx),
            SatResult::Unsat,
            "ideal full-rate trace must satisfy the desired property"
        );
    }

    #[test]
    fn starved_flat_cwnd_trace_violates_property() {
        // cwnd pinned to 0.1 with zero initial backlog: utilization ~10% and
        // cwnd flat → property violated, so ¬desired ∧ trace is SAT.
        let cfg =
            NetConfig { horizon: 6, history: 2, link_rate: Rat::one(), jitter: 1, buffer: None };
        let mut ctx = Context::new();
        let nv = alloc_net_vars(&mut ctx, &cfg);
        let net = network_constraints(&mut ctx, &nv);
        let snd = sender_constraints(&mut ctx, &nv);
        let mut pins = Vec::new();
        for t in cfg.t_min()..=cfg.t_max() {
            pins.push(ctx.eq(
                LinExpr::var(nv.cwnd(t)),
                LinExpr::constant(Rat::new(1i64.into(), 10i64.into())),
            ));
        }
        pins.push(ctx.eq(LinExpr::var(nv.a(cfg.t_min())), LinExpr::zero()));
        let pinned = ctx.and(pins);
        let parts = desired_property(&mut ctx, &nv, &Thresholds::default());
        let not_desired = ctx.not(parts.desired);
        let mut s = Solver::new();
        s.assert(&ctx, net);
        s.assert(&ctx, snd);
        s.assert(&ctx, pinned);
        s.assert(&ctx, not_desired);
        assert_eq!(
            s.check(&ctx),
            SatResult::Sat,
            "a starving constant-cwnd trace must violate the desired property"
        );
    }
}
