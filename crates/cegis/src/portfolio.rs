//! Deterministic lockstep portfolio engine with work-stealing candidate
//! shards.
//!
//! The template space is partitioned into *shards* (in `ccmatic`, blocks of
//! candidate coefficient assignments selected by blocking-clause prefixes).
//! Workers pull shards from a shared queue — every shard beyond a worker's
//! first is a *steal* — and run the CEGIS loop inside their shard, one
//! candidate attempt per engine round. Between rounds the coordinator
//! broadcasts every newly discovered counterexample to every other worker's
//! replay cache and drives the bounded clause exchange, so diversified
//! workers prune each other's search spaces.
//!
//! # Determinism
//!
//! Fixed seeds must give bit-identical outcomes even though workers race on
//! wall-clock. Three rules make the engine's observable behavior a pure
//! function of the worker implementations:
//!
//! 1. **Barriers.** Rounds are synchronous: every participating worker runs
//!    exactly one [`PortfolioWorker::step`] per round, and the coordinator
//!    merges the round's reports in worker-index order. Counterexample
//!    broadcast and clause-exchange visibility advance only at barriers.
//! 2. **Min-shard solutions.** When solutions appear, the one from the
//!    lowest shard wins; lower shards keep running until they resolve, so
//!    the winner does not depend on which worker happened to finish first.
//! 3. **Deterministic discard.** A solution at shard `s` cancels (mid-step,
//!    via a shared [`AtomicBool`]) only workers on shards strictly above `s`.
//!    Whether such a sibling noticed the cancel or managed to finish its
//!    step is racy — so the coordinator computes the round's winning shard
//!    *before* merging and discards every report from a higher shard
//!    unmerged (counted in [`Stats::speculative_wasted`]). Cancelled
//!    workers are retired: they receive no further rounds and publish no
//!    further clauses, so nothing racy ever feeds back into the run.
//!
//! Budgets are checked at barriers. If the iteration or wall budget fires
//! while a (re-verified) solution is already known, the solution is
//! returned — it is sound regardless of what the unexplored lower shards
//! might contain.

use crate::{Budget, Outcome, Stats};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Sentinel in the shard-of-worker table for "no shard assigned".
const UNASSIGNED: usize = usize::MAX;

/// How one [`PortfolioWorker::step`] ended.
#[derive(Debug)]
pub enum StepOutcome<C> {
    /// The worker's verifier certified this candidate (within the current
    /// shard).
    Solution(C),
    /// The candidate was refuted — by a cached counterexample replay or a
    /// fresh verifier counterexample — and the worker learned from it.
    Refuted,
    /// The current shard holds no further candidates consistent with
    /// everything learned: the shard is exhausted (a completeness claim
    /// local to the shard).
    Exhausted,
    /// The deadline or the cancel flag fired before the step resolved; no
    /// claim is made about the shard.
    Interrupted,
}

/// Result of one candidate attempt, with counters for the coordinator to
/// merge (discarded reports are never merged, so workers need not worry
/// about racy counters on the cancel path).
#[derive(Debug)]
pub struct StepReport<C, X> {
    /// How the attempt ended.
    pub outcome: StepOutcome<C>,
    /// Counterexamples discovered by this step, for broadcast to sibling
    /// replay caches. Replay kills of already-known traces go here as an
    /// empty list — siblings already have them.
    pub new_cexs: Vec<X>,
    /// Verifier invocations made by this step (0 for a replay kill).
    pub verifier_calls: u64,
    /// Candidates killed by the concrete replay prefilter this step.
    pub replay_hits: u64,
    /// Time inside the generator (propose + learn).
    pub generator_time: Duration,
    /// Time inside the verifier.
    pub verifier_time: Duration,
}

impl<C, X> StepReport<C, X> {
    /// A report with the given outcome and all counters zero.
    pub fn bare(outcome: StepOutcome<C>) -> Self {
        StepReport {
            outcome,
            new_cexs: Vec::new(),
            verifier_calls: 0,
            replay_hits: 0,
            generator_time: Duration::ZERO,
            verifier_time: Duration::ZERO,
        }
    }
}

/// One diversified CEGIS worker driven by [`run_portfolio`].
///
/// A worker owns its generator + verifier pair (in `ccmatic`, a warm
/// incremental SMT solver each). The engine guarantees `enter_shard` /
/// `exit_shard` bracket every shard, `cache_cex` and `exchange` happen
/// between steps, and at most one method runs at a time.
pub trait PortfolioWorker {
    /// The kind of artifact being synthesized.
    type Candidate: Send;
    /// The kind of counterexample broadcast between workers.
    type Cex: Clone + PartialEq + Send;

    /// Restrict the candidate space to shard `shard` (e.g. push an SMT
    /// scope asserting the shard's coefficient prefix).
    fn enter_shard(&mut self, shard: usize);

    /// Leave the current shard, dropping everything learned inside it.
    fn exit_shard(&mut self);

    /// Add a sibling's counterexample to the replay cache. May be called
    /// with duplicates of traces this worker already knows.
    fn cache_cex(&mut self, cex: Self::Cex);

    /// Run one clause-exchange round: publish eligible learned clauses and
    /// import siblings' publications. Returns `(exported, imported)`
    /// counts. The default is a no-op for domains without clause sharing.
    fn exchange(&mut self, round: u64) -> (u64, u64) {
        let _ = round;
        (0, 0)
    }

    /// Attempt one candidate: propose, replay-prefilter against the cache,
    /// verify. Must return [`StepOutcome::Interrupted`] promptly once
    /// `cancel` is raised or `deadline` passes.
    fn step(
        &mut self,
        deadline: Option<Instant>,
        cancel: &Arc<AtomicBool>,
    ) -> StepReport<Self::Candidate, Self::Cex>;
}

/// Per-worker counters, reported alongside the aggregate [`Stats`] (these
/// back the per-worker metadata in the benchmark tables).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Merged (non-discarded) steps this worker ran.
    pub iterations: u64,
    /// Verifier invocations across merged steps.
    pub verifier_calls: u64,
    /// Replay-prefilter kills across merged steps.
    pub replay_hits: u64,
    /// Shards this worker pulled from the queue beyond its first.
    pub shards_stolen: u64,
    /// Learned clauses this worker published to the exchange.
    pub shared_clauses_exported: u64,
    /// Sibling clauses this worker imported from the exchange.
    pub shared_clauses_imported: u64,
}

/// Result of [`run_portfolio`]: the outcome, aggregate counters, and the
/// per-worker breakdown.
#[derive(Debug)]
pub struct PortfolioResult<C> {
    /// Why the run stopped.
    pub outcome: Outcome<C>,
    /// Aggregate counters across all workers.
    pub stats: Stats,
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

/// A worker's mailbox message for one round.
enum Cmd<X> {
    Round { round: u64, shard: usize, cexs: Vec<X> },
    Finish,
}

/// A worker's answer for one round.
struct Report<C, X> {
    worker: usize,
    shard: usize,
    exported: u64,
    imported: u64,
    step: StepReport<C, X>,
}

/// Run the CEGIS portfolio over `num_shards` shards under `budget`.
///
/// Shards are assigned to workers in ascending order from a shared queue;
/// [`Outcome::NoSolution`] is claimed only when every shard was exhausted.
/// `num_shards == 0` means an empty candidate space and returns
/// [`Outcome::NoSolution`] immediately.
///
/// # Panics
/// Panics if `workers` is empty, or if a worker thread panics.
pub fn run_portfolio<W: PortfolioWorker + Send>(
    workers: &mut [W],
    num_shards: usize,
    budget: &Budget,
) -> PortfolioResult<W::Candidate> {
    let n = workers.len();
    assert!(n > 0, "portfolio needs at least one worker");
    let start = Instant::now();
    let deadline = start.checked_add(budget.max_wall);

    let shard_of: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(UNASSIGNED)).collect();
    let cancels: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let shard_of = &shard_of;
    let cancels = &cancels;

    thread::scope(|scope| {
        let (report_tx, report_rx) = mpsc::channel::<Report<W::Candidate, W::Cex>>();
        let mut cmd_txs = Vec::with_capacity(n);
        for (idx, worker) in workers.iter_mut().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<W::Cex>>();
            cmd_txs.push(cmd_tx);
            let report_tx = report_tx.clone();
            scope.spawn(move || {
                let mut current: Option<usize> = None;
                while let Ok(cmd) = cmd_rx.recv() {
                    let Cmd::Round { round, shard, cexs } = cmd else { break };
                    if current != Some(shard) {
                        if current.is_some() {
                            worker.exit_shard();
                        }
                        worker.enter_shard(shard);
                        current = Some(shard);
                    }
                    for cex in cexs {
                        worker.cache_cex(cex);
                    }
                    let (exported, imported) = worker.exchange(round);
                    let step = worker.step(deadline, &cancels[idx]);
                    if matches!(step.outcome, StepOutcome::Solution(_)) {
                        // Mid-round cancel: only siblings on strictly
                        // higher shards, whose reports the coordinator
                        // discards by rule — see the module docs.
                        for (j, sj) in shard_of.iter().enumerate() {
                            let s = sj.load(Ordering::SeqCst);
                            if j != idx && s != UNASSIGNED && s > shard {
                                cancels[j].store(true, Ordering::SeqCst);
                            }
                        }
                    }
                    if matches!(step.outcome, StepOutcome::Solution(_) | StepOutcome::Exhausted) {
                        worker.exit_shard();
                        current = None;
                    }
                    if report_tx
                        .send(Report { worker: idx, shard, exported, imported, step })
                        .is_err()
                    {
                        break;
                    }
                }
                if current.is_some() {
                    worker.exit_shard();
                }
            });
        }

        let mut queue: VecDeque<usize> = (0..num_shards).collect();
        let mut assigned: Vec<Option<usize>> = vec![None; n];
        let mut had_shard = vec![false; n];
        let mut wstats = vec![WorkerStats::default(); n];
        let mut all_cexs: Vec<(usize, W::Cex)> = Vec::new();
        let mut cursors = vec![0usize; n];
        let mut best: Option<(usize, W::Candidate)> = None;
        let mut speculative_wasted = 0u64;
        let mut incomplete = false;
        let mut total_iterations = 0u64;
        let mut round: u64 = 0;
        let mut budget_hit = false;
        let mut gen_time = Duration::ZERO;
        let mut ver_time = Duration::ZERO;

        loop {
            if total_iterations >= budget.max_iterations || start.elapsed() >= budget.max_wall {
                budget_hit = true;
                break;
            }
            if best.is_none() {
                for i in 0..n {
                    if assigned[i].is_none() {
                        if let Some(s) = queue.pop_front() {
                            if had_shard[i] {
                                wstats[i].shards_stolen += 1;
                            }
                            had_shard[i] = true;
                            assigned[i] = Some(s);
                            shard_of[i].store(s, Ordering::SeqCst);
                        }
                    }
                }
            }
            let participants: Vec<usize> = (0..n).filter(|&i| assigned[i].is_some()).collect();
            if participants.is_empty() {
                break;
            }
            round += 1;
            for &i in &participants {
                let cexs: Vec<W::Cex> = all_cexs[cursors[i]..]
                    .iter()
                    .filter(|(origin, _)| *origin != i)
                    .map(|(_, x)| x.clone())
                    .collect();
                cursors[i] = all_cexs.len();
                let shard = assigned[i].expect("participant has a shard");
                assert!(
                    cmd_txs[i].send(Cmd::Round { round, shard, cexs }).is_ok(),
                    "portfolio worker {i} exited unexpectedly"
                );
            }
            let mut reports: Vec<Option<Report<W::Candidate, W::Cex>>> =
                (0..n).map(|_| None).collect();
            for _ in 0..participants.len() {
                let rep = report_rx.recv().expect("portfolio worker dropped its report channel");
                let slot = rep.worker;
                reports[slot] = Some(rep);
            }
            // Establish the round's winning shard BEFORE merging, so whether
            // a cancelled higher-shard sibling finished its step never
            // influences what gets merged.
            let mut round_best = best.as_ref().map(|(s, _)| *s);
            for rep in reports.iter().flatten() {
                if matches!(rep.step.outcome, StepOutcome::Solution(_)) {
                    round_best = Some(round_best.map_or(rep.shard, |b| b.min(rep.shard)));
                }
            }
            for i in 0..n {
                let Some(rep) = reports[i].take() else { continue };
                if round_best.is_some_and(|b| rep.shard > b) {
                    speculative_wasted += 1;
                    assigned[i] = None;
                    shard_of[i].store(UNASSIGNED, Ordering::SeqCst);
                    continue;
                }
                let ws = &mut wstats[i];
                ws.iterations += 1;
                total_iterations += 1;
                ws.verifier_calls += rep.step.verifier_calls;
                ws.replay_hits += rep.step.replay_hits;
                ws.shared_clauses_exported += rep.exported;
                ws.shared_clauses_imported += rep.imported;
                gen_time += rep.step.generator_time;
                ver_time += rep.step.verifier_time;
                for cex in rep.step.new_cexs {
                    if !all_cexs.iter().any(|(_, x)| *x == cex) {
                        all_cexs.push((i, cex));
                    }
                }
                match rep.step.outcome {
                    StepOutcome::Solution(c) => {
                        assigned[i] = None;
                        shard_of[i].store(UNASSIGNED, Ordering::SeqCst);
                        queue.clear();
                        best = Some((rep.shard, c));
                    }
                    StepOutcome::Exhausted => {
                        assigned[i] = None;
                        shard_of[i].store(UNASSIGNED, Ordering::SeqCst);
                    }
                    StepOutcome::Refuted => {}
                    StepOutcome::Interrupted => {
                        // Deadline fired mid-step (cancel-interrupts land in
                        // the discard branch above). The worker keeps its
                        // shard; the wall check at the top ends the run.
                        incomplete = true;
                    }
                }
            }
        }

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        drop(cmd_txs);

        let outcome = match best {
            Some((_, c)) => Outcome::Solution(c),
            None if budget_hit || incomplete => Outcome::BudgetExhausted,
            None => Outcome::NoSolution,
        };
        let mut stats = Stats {
            speculative_wasted,
            generator_time: gen_time,
            verifier_time: ver_time,
            wall: start.elapsed(),
            ..Stats::default()
        };
        for ws in &wstats {
            stats.iterations += ws.iterations;
            stats.verifier_calls += ws.verifier_calls;
            stats.replay_hits += ws.replay_hits;
            stats.shards_stolen += ws.shards_stolen;
            stats.shared_clauses_exported += ws.shared_clauses_exported;
            stats.shared_clauses_imported += ws.shared_clauses_imported;
        }
        PortfolioResult { outcome, stats, workers: wstats }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy domain (same as the serial engine's tests): synthesize an
    /// integer in [0, 100] that is ≥ a hidden threshold. Shards are
    /// ascending chunks of the domain; a counterexample `x` concretely
    /// refutes every candidate `c <= x`.
    struct ToyWorker {
        hidden: i64,
        /// When set, failures report the *largest* failing value
        /// (the worst-case-counterexample analogue).
        worst_case: bool,
        shards: Vec<Vec<i64>>,
        remaining: Vec<i64>,
        cached: Vec<i64>,
        step_sleep: Duration,
    }

    impl ToyWorker {
        fn fleet(n: usize, hidden: i64, worst_case: bool) -> Vec<ToyWorker> {
            let shards: Vec<Vec<i64>> =
                (0..=100).collect::<Vec<i64>>().chunks(21).map(<[i64]>::to_vec).collect();
            (0..n)
                .map(|_| ToyWorker {
                    hidden,
                    worst_case,
                    shards: shards.clone(),
                    remaining: Vec::new(),
                    cached: Vec::new(),
                    step_sleep: Duration::ZERO,
                })
                .collect()
        }
    }

    impl PortfolioWorker for ToyWorker {
        type Candidate = i64;
        type Cex = i64;

        fn enter_shard(&mut self, shard: usize) {
            self.remaining = self.shards[shard].clone();
        }

        fn exit_shard(&mut self) {
            self.remaining.clear();
        }

        fn cache_cex(&mut self, cex: i64) {
            if !self.cached.contains(&cex) {
                self.cached.push(cex);
            }
        }

        fn step(
            &mut self,
            deadline: Option<Instant>,
            cancel: &Arc<AtomicBool>,
        ) -> StepReport<i64, i64> {
            if cancel.load(Ordering::SeqCst) || deadline.is_some_and(|d| Instant::now() >= d) {
                return StepReport::bare(StepOutcome::Interrupted);
            }
            if !self.step_sleep.is_zero() {
                thread::sleep(self.step_sleep);
            }
            let Some(&c) = self.remaining.first() else {
                return StepReport::bare(StepOutcome::Exhausted);
            };
            // Concrete replay prefilter over broadcast counterexamples.
            if let Some(&x) = self.cached.iter().find(|&&x| c <= x) {
                self.remaining.retain(|&v| v > x);
                let mut rep = StepReport::bare(StepOutcome::Refuted);
                rep.replay_hits = 1;
                return rep;
            }
            if c >= self.hidden {
                let mut rep = StepReport::bare(StepOutcome::Solution(c));
                rep.verifier_calls = 1;
                return rep;
            }
            let cex = if self.worst_case { self.hidden - 1 } else { c };
            self.remaining.retain(|&v| v > cex);
            self.cache_cex(cex);
            let mut rep = StepReport::bare(StepOutcome::Refuted);
            rep.verifier_calls = 1;
            rep.new_cexs = vec![cex];
            rep
        }
    }

    #[test]
    fn agrees_with_serial_semantics_across_worker_counts() {
        // Pruning only ever removes values ≤ some failing value < hidden,
        // so the min-shard rule always lands on `hidden` itself — the same
        // answer the serial engine finds.
        for &hidden in &[0i64, 17, 99] {
            for n in [1usize, 2, 4] {
                let mut workers = ToyWorker::fleet(n, hidden, false);
                let r = run_portfolio(&mut workers, 5, &Budget::default());
                match r.outcome {
                    Outcome::Solution(c) => assert_eq!(c, hidden, "hidden={hidden} n={n}"),
                    other => panic!("hidden={hidden} n={n}: expected solution, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn lowest_shard_solution_wins() {
        // hidden = 0: every shard's first candidate passes, so with 4
        // workers round 1 produces several solutions at once. The shard-0
        // answer must win and the higher-shard reports must be discarded.
        let mut workers = ToyWorker::fleet(4, 0, false);
        let r = run_portfolio(&mut workers, 5, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 0),
            other => panic!("expected solution, got {other:?}"),
        }
        assert_eq!(r.stats.speculative_wasted, 3, "three sibling solutions discarded");
        assert_eq!(r.stats.iterations, 1, "only the winning step is merged");
    }

    #[test]
    fn exhausting_every_shard_proves_no_solution() {
        for n in [1usize, 2, 4] {
            let mut workers = ToyWorker::fleet(n, 1000, false);
            let r = run_portfolio(&mut workers, 5, &Budget::default());
            assert!(
                matches!(r.outcome, Outcome::NoSolution),
                "n={n}: expected NoSolution, got {:?}",
                r.outcome
            );
            let stolen: u64 = r.workers.iter().map(|w| w.shards_stolen).sum();
            assert_eq!(stolen, 5 - n as u64, "all shards beyond the initial grab are steals");
        }
    }

    #[test]
    fn empty_shard_space_is_no_solution() {
        let mut workers = ToyWorker::fleet(2, 50, false);
        let r = run_portfolio(&mut workers, 0, &Budget::default());
        assert!(matches!(r.outcome, Outcome::NoSolution));
        assert_eq!(r.stats.iterations, 0);
    }

    #[test]
    fn iteration_budget_bounds_total_work() {
        let budget = Budget { max_iterations: 5, max_wall: Duration::from_secs(3600) };
        let mut workers = ToyWorker::fleet(4, 1000, false);
        let r = run_portfolio(&mut workers, 5, &budget);
        assert!(matches!(r.outcome, Outcome::BudgetExhausted));
        // The check sits at the round barrier, so at most one extra round
        // (4 workers) can land past the limit.
        assert!(r.stats.iterations >= 5 && r.stats.iterations < 5 + 4, "{}", r.stats.iterations);
    }

    #[test]
    fn wall_budget_ends_slow_runs() {
        let budget = Budget { max_iterations: u64::MAX, max_wall: Duration::from_millis(50) };
        let mut workers = ToyWorker::fleet(2, 1000, false);
        for w in &mut workers {
            w.step_sleep = Duration::from_millis(20);
        }
        let r = run_portfolio(&mut workers, 5, &budget);
        assert!(matches!(r.outcome, Outcome::BudgetExhausted));
        assert!(r.stats.wall >= Duration::from_millis(50));
    }

    #[test]
    fn broadcast_counterexamples_prune_sibling_shards() {
        // hidden = 90 lives in the last shard. Baseline counterexamples
        // from higher shards (e.g. 63 from shard 3) concretely kill every
        // candidate in lower shards, so siblings exhaust via replay kills
        // instead of verifier calls.
        let mut workers = ToyWorker::fleet(4, 90, false);
        let r = run_portfolio(&mut workers, 5, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 90),
            other => panic!("expected solution, got {other:?}"),
        }
        assert!(r.stats.replay_hits >= 1, "broadcast cexs should fire the replay prefilter");
        let stolen: u64 = r.workers.iter().map(|w| w.shards_stolen).sum();
        assert!(stolen >= 1, "the last shard must be stolen by a freed worker");
    }

    #[test]
    fn fixed_runs_are_reproducible() {
        let fingerprint = |r: &PortfolioResult<i64>| {
            let sol = match &r.outcome {
                Outcome::Solution(c) => Some(*c),
                _ => None,
            };
            (sol, r.stats.iterations, r.stats.speculative_wasted, r.workers.clone())
        };
        let run = || {
            let mut workers = ToyWorker::fleet(4, 37, true);
            run_portfolio(&mut workers, 5, &Budget::default())
        };
        let (a, b) = (run(), run());
        assert_eq!(fingerprint(&a), fingerprint(&b), "same fleet, same merged history");
    }
}
