//! The speculative parallel CEGIS engine.
//!
//! Serial CEGIS is a strict propose→verify ping-pong, so on a multicore
//! host all but one core idles while the verifier grinds. This engine
//! speculates: each round the generator proposes a *batch* of `k` mutually
//! distinct candidates (all consistent with every counterexample committed
//! so far), a pool of worker threads verifies them concurrently, and the
//! main thread *commits* the results strictly in batch order — exactly the
//! order the serial loop would have processed them.
//!
//! Speculation is wrong whenever a lower-index batch-mate's counterexample
//! would have changed the generator's mind about a higher-index candidate.
//! Two mechanisms keep that cheap:
//!
//! * **Concrete replay prefilter** — before a worker starts (and again when
//!   the committer reaches the slot), the candidate is re-run against every
//!   *committed* counterexample trace via the caller's `replay` closure: a
//!   deterministic, SMT-free evaluation of the candidate's rule on the
//!   trace. A hit kills the candidate for pennies (`Stats::replay_hits`).
//! * **Cancellation** — every slot carries a cancel token wired down into
//!   the worker's solver ([`Verifier::verify_interruptible`]); when the
//!   committer kills a slot (replay hit) or the run ends (solution /
//!   budget), in-flight solves abort at their next propagation fixpoint.
//!   Results that complete anyway are discarded and counted in
//!   [`Stats::speculative_wasted`].
//!
//! # Determinism model
//!
//! The merge is deterministic: workers never touch the generator or the
//! committed-counterexample list; only the single committer does, in batch
//! order, and the first *committed* `Pass` (lowest batch index) wins.
//! Workers consult only the committed list for replay (their snapshot is
//! always a prefix of what the committer sees at commit time, so a worker
//! skip is always justified at commit, and the committer re-derives every
//! skip itself from the authoritative list). What is *not* bit-reproducible
//! across thread counts is counterexample content: per-worker verifiers
//! stay warm across calls, and which worker verifies which candidate
//! depends on scheduling, so a refuted candidate may yield a different
//! (equally valid) trace and steer the generator down a different — equally
//! sound — path. Verdict kinds per candidate are semantically deterministic
//! (a candidate passes or fails independent of solver state), which is what
//! the differential suite in `crates/ccmatic/tests/parallel_differential.rs`
//! pins down: outcome kinds agree across thread counts and every solution
//! re-verifies.
//!
//! # Stats invariant
//!
//! `verifier_calls == (iterations - replay_hits - empty_final_round) +
//! speculative_wasted`, where `empty_final_round` is 1 when the run ends by
//! exhaustion (the final empty proposal costs an iteration, matching the
//! serial loop) and 0 otherwise. Every committed candidate is either a
//! replay hit or consumed exactly one SMT verdict; every uncommitted SMT
//! verdict is wasted speculation.

use crate::{Budget, Generator, Outcome, RunResult, Stats, Verdict, Verifier};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shape of the speculative fan-out.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Worker threads verifying candidates concurrently. Clamped to ≥ 1.
    pub threads: usize,
    /// Candidates proposed per round. Defaults to `threads` via
    /// [`ParallelConfig::new`]; a larger batch deepens speculation (more
    /// replay kills, more wasted work), a batch of 1 degenerates to the
    /// serial loop on a worker thread.
    pub batch: usize,
}

impl ParallelConfig {
    /// `threads` workers, one proposed candidate per worker per round.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        ParallelConfig { threads, batch: threads }
    }
}

/// One speculative candidate's lifecycle, indexed by batch position.
enum Slot<X> {
    /// Queued or being verified.
    Pending,
    /// The committer killed it (replay hit) before a verdict landed.
    Dead,
    /// A worker's replay prefilter killed it against the committed list.
    Skipped,
    /// SMT verdict available, not yet committed.
    Done(Verdict<X>, Duration),
    /// The committer consumed the verdict.
    Consumed,
}

struct Job<C> {
    index: usize,
    candidate: C,
}

struct State<C, X> {
    jobs: VecDeque<Job<C>>,
    slots: Vec<Slot<X>>,
    /// Per-slot cancel tokens for the current round.
    tokens: Vec<Arc<AtomicBool>>,
    /// Every committed counterexample, append-only, written only by the
    /// committer. Workers replay candidates against a snapshot of this.
    committed: Vec<X>,
    in_flight: usize,
    shutdown: bool,
}

struct Shared<C, X> {
    state: Mutex<State<C, X>>,
    /// Workers wait here for jobs.
    work_ready: Condvar,
    /// The committer waits here for slot results and quiescence.
    result_ready: Condvar,
}

/// Run CEGIS with speculative batched verification.
///
/// `make_verifier(i)` builds worker `i`'s private verifier (verifiers keep
/// warm solver state, so each worker owns one). `replay(c, τ)` must return
/// `true` iff trace `τ` concretely refutes candidate `c` — it is the
/// SMT-free prefilter and must agree with the verifier's semantics (a
/// `false` is always safe; a wrong `true` would discard a viable
/// candidate).
pub fn run_parallel<G, V, R>(
    generator: &mut G,
    make_verifier: impl FnMut(usize) -> V,
    replay: R,
    budget: &Budget,
    cfg: &ParallelConfig,
) -> RunResult<G::Candidate>
where
    G: Generator,
    G::Candidate: Clone + Send,
    G::CounterExample: Clone + Send,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample> + Send,
    R: Fn(&G::Candidate, &G::CounterExample) -> bool + Sync,
{
    let threads = cfg.threads.max(1);
    let start = Instant::now();
    let deadline = start.checked_add(budget.max_wall);
    let mut stats = Stats::default();

    let shared: Shared<G::Candidate, G::CounterExample> = Shared {
        state: Mutex::new(State {
            jobs: VecDeque::new(),
            slots: Vec::new(),
            tokens: Vec::new(),
            committed: Vec::new(),
            in_flight: 0,
            shutdown: false,
        }),
        work_ready: Condvar::new(),
        result_ready: Condvar::new(),
    };
    let mut verifiers: Vec<V> = Vec::with_capacity(threads);
    let mut make_verifier = make_verifier;
    for i in 0..threads {
        verifiers.push(make_verifier(i));
    }

    let outcome = std::thread::scope(|scope| {
        for mut verifier in verifiers.drain(..) {
            let shared = &shared;
            let replay = &replay;
            scope.spawn(move || worker_loop(shared, &mut verifier, replay, deadline));
        }
        let result = commit_loop(generator, &shared, &replay, budget, cfg, start, &mut stats);
        // Shut the pool down and wait for in-flight solves to abort, so
        // late results are accounted before the scope joins.
        let mut st = shared.state.lock().unwrap();
        st.shutdown = true;
        st.jobs.clear();
        for token in &st.tokens {
            token.store(true, Ordering::Relaxed);
        }
        shared.work_ready.notify_all();
        while st.in_flight > 0 {
            st = shared.result_ready.wait(st).unwrap();
        }
        // Anything finished-but-uncommitted is wasted speculation.
        for slot in st.slots.iter_mut() {
            if let Slot::Done(_, dt) = slot {
                stats.verifier_calls += 1;
                stats.verifier_time += *dt;
                stats.speculative_wasted += 1;
                *slot = Slot::Consumed;
            }
        }
        drop(st);
        shared.work_ready.notify_all();
        result
    });

    stats.wall = start.elapsed();
    RunResult { outcome, stats }
}

fn worker_loop<C, X, V, R>(
    shared: &Shared<C, X>,
    verifier: &mut V,
    replay: &R,
    deadline: Option<Instant>,
) where
    C: Clone + Send,
    X: Clone + Send,
    V: Verifier<Candidate = C, CounterExample = X>,
    R: Fn(&C, &X) -> bool,
{
    loop {
        let (job, token) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown && st.jobs.is_empty() {
                    return;
                }
                if let Some(job) = st.jobs.pop_front() {
                    if matches!(st.slots[job.index], Slot::Dead) {
                        // Killed while queued; drop silently (the committer
                        // already accounted it).
                        continue;
                    }
                    // Replay against the committed list. Cheap concrete
                    // arithmetic, so holding the lock is fine and keeps the
                    // snapshot trivially a prefix of the commit-time list.
                    if st.committed.iter().any(|x| replay(&job.candidate, x)) {
                        st.slots[job.index] = Slot::Skipped;
                        shared.result_ready.notify_all();
                        continue;
                    }
                    st.in_flight += 1;
                    let token = st.tokens[job.index].clone();
                    break (job, token);
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        let t0 = Instant::now();
        let verdict = verifier.verify_interruptible(&job.candidate, deadline, Some(&token));
        let dt = t0.elapsed();
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= 1;
        st.slots[job.index] = Slot::Done(verdict, dt);
        shared.result_ready.notify_all();
    }
}

#[allow(clippy::too_many_arguments)]
fn commit_loop<G, R>(
    generator: &mut G,
    shared: &Shared<G::Candidate, G::CounterExample>,
    replay: &R,
    budget: &Budget,
    cfg: &ParallelConfig,
    start: Instant,
    stats: &mut Stats,
) -> Outcome<G::Candidate>
where
    G: Generator,
    G::Candidate: Clone + Send,
    G::CounterExample: Clone + Send,
    R: Fn(&G::Candidate, &G::CounterExample) -> bool,
{
    let deadline = start.checked_add(budget.max_wall);
    loop {
        if stats.iterations >= budget.max_iterations || start.elapsed() >= budget.max_wall {
            return Outcome::BudgetExhausted;
        }
        // Never speculate past the iteration budget.
        let k = cfg.batch.max(1).min((budget.max_iterations - stats.iterations) as usize);

        let g0 = Instant::now();
        let proposal = generator.propose_batch(k, deadline);
        stats.generator_time += g0.elapsed();
        if proposal.candidates.is_empty() {
            if proposal.interrupted {
                return Outcome::BudgetExhausted;
            }
            // The final empty proposal costs an iteration, matching the
            // serial loop's accounting.
            stats.iterations += 1;
            return Outcome::NoSolution;
        }
        let candidates = proposal.candidates;

        // Publish the round.
        {
            let mut st = shared.state.lock().unwrap();
            st.slots = (0..candidates.len()).map(|_| Slot::Pending).collect();
            st.tokens = (0..candidates.len()).map(|_| Arc::new(AtomicBool::new(false))).collect();
            for (index, candidate) in candidates.iter().enumerate() {
                st.jobs.push_back(Job { index, candidate: candidate.clone() });
            }
            shared.work_ready.notify_all();
        }

        // Commit in batch order.
        let mut round_outcome: Option<Outcome<G::Candidate>> = None;
        for (index, candidate) in candidates.iter().enumerate() {
            stats.iterations += 1;
            // Authoritative replay check against the full committed list
            // (which now includes this round's lower-index traces).
            let killed = {
                let st = shared.state.lock().unwrap();
                st.committed.iter().position(|x| replay(candidate, x))
            };
            if let Some(pos) = killed {
                stats.replay_hits += 1;
                let cex = {
                    let mut st = shared.state.lock().unwrap();
                    if matches!(st.slots[index], Slot::Pending) {
                        st.slots[index] = Slot::Dead;
                    }
                    st.tokens[index].store(true, Ordering::Relaxed);
                    st.committed[pos].clone()
                };
                // Feed the kill back so inexact generators still converge;
                // exact generators (the SMT one) deduplicate re-learns.
                let g1 = Instant::now();
                generator.learn(candidate, &cex);
                stats.generator_time += g1.elapsed();
                continue;
            }
            // Wait for this slot's verdict.
            let verdict = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    match &st.slots[index] {
                        Slot::Pending => st = shared.result_ready.wait(st).unwrap(),
                        Slot::Skipped => break None,
                        Slot::Done(..) => {
                            let slot = std::mem::replace(&mut st.slots[index], Slot::Consumed);
                            let Slot::Done(v, dt) = slot else { unreachable!() };
                            break Some((v, dt));
                        }
                        Slot::Dead | Slot::Consumed => {
                            unreachable!("committer owns kills and consumption")
                        }
                    }
                }
            };
            let Some((verdict, dt)) = verdict else {
                // The worker skipped it against a committed-list snapshot;
                // that snapshot is a prefix of what we just searched, so the
                // authoritative check above must have caught it — unless the
                // replay closure is non-deterministic. Re-derive defensively.
                let cex = {
                    let st = shared.state.lock().unwrap();
                    st.committed.iter().find(|x| replay(candidate, x)).cloned()
                };
                stats.replay_hits += 1;
                if let Some(cex) = cex {
                    let g1 = Instant::now();
                    generator.learn(candidate, &cex);
                    stats.generator_time += g1.elapsed();
                }
                continue;
            };
            stats.verifier_calls += 1;
            stats.verifier_time += dt;
            match verdict {
                Verdict::Pass => {
                    round_outcome = Some(Outcome::Solution(candidate.clone()));
                    break;
                }
                Verdict::Fail(cex) => {
                    let g1 = Instant::now();
                    generator.learn(candidate, &cex);
                    stats.generator_time += g1.elapsed();
                    let mut st = shared.state.lock().unwrap();
                    st.committed.push(cex);
                }
                Verdict::Timeout => {
                    round_outcome = Some(Outcome::BudgetExhausted);
                    break;
                }
            }
        }

        // Quiesce the round: kill leftovers, drain, account wasted work.
        let mut st = shared.state.lock().unwrap();
        st.jobs.clear();
        if round_outcome.is_some() {
            for token in &st.tokens {
                token.store(true, Ordering::Relaxed);
            }
        }
        while st.in_flight > 0 {
            st = shared.result_ready.wait(st).unwrap();
        }
        for slot in st.slots.iter_mut() {
            if let Slot::Done(_, dt) = slot {
                stats.verifier_calls += 1;
                stats.verifier_time += *dt;
                stats.speculative_wasted += 1;
                *slot = Slot::Consumed;
            }
        }
        drop(st);
        if let Some(outcome) = round_outcome {
            return outcome;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use std::sync::atomic::AtomicU64;

    /// The toy threshold domain from the crate root tests, with worst-case
    /// counterexamples so replay has teeth: a cex `x` refutes any candidate
    /// `c ≤ x`.
    struct EnumGen {
        remaining: Vec<i64>,
    }

    impl Generator for EnumGen {
        type Candidate = i64;
        type CounterExample = i64;

        fn propose(&mut self) -> Option<i64> {
            self.remaining.first().copied()
        }

        fn learn(&mut self, candidate: &i64, cex: &i64) {
            let cut = (*candidate).max(*cex);
            self.remaining.retain(|v| *v > cut);
        }

        fn propose_batch(
            &mut self,
            k: usize,
            _deadline: Option<Instant>,
        ) -> crate::BatchProposal<i64> {
            crate::BatchProposal {
                candidates: self.remaining.iter().take(k).copied().collect(),
                interrupted: false,
            }
        }
    }

    struct ThresholdVerifier {
        hidden: i64,
        calls: Arc<AtomicU64>,
    }

    impl Verifier for ThresholdVerifier {
        type Candidate = i64;
        type CounterExample = i64;

        fn verify(&mut self, candidate: &i64) -> Result<(), i64> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if *candidate >= self.hidden {
                Ok(())
            } else {
                Err(*candidate)
            }
        }
    }

    fn toy_replay(c: &i64, x: &i64) -> bool {
        c <= x
    }

    fn run_toy(hidden: i64, space: Vec<i64>, cfg: &ParallelConfig) -> (RunResult<i64>, u64) {
        let mut g = EnumGen { remaining: space };
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        let r = run_parallel(
            &mut g,
            move |_| ThresholdVerifier { hidden, calls: calls2.clone() },
            toy_replay,
            &Budget::default(),
            cfg,
        );
        (r, calls.load(Ordering::Relaxed))
    }

    fn assert_stats_invariant(r: &RunResult<i64>) {
        let empty_final = u64::from(matches!(r.outcome, Outcome::NoSolution));
        assert_eq!(
            r.stats.verifier_calls,
            r.stats.iterations - r.stats.replay_hits - empty_final + r.stats.speculative_wasted,
            "stats invariant violated: {:?}",
            r.stats
        );
    }

    #[test]
    fn parallel_finds_solution_across_thread_counts() {
        for threads in [1, 2, 4] {
            let (r, calls) = run_toy(37, (0..=100).collect(), &ParallelConfig::new(threads));
            match r.outcome {
                Outcome::Solution(c) => assert_eq!(c, 37, "threads={threads}"),
                ref other => panic!("threads={threads}: expected solution, got {other:?}"),
            }
            assert_eq!(calls, r.stats.verifier_calls, "threads={threads}");
            assert_stats_invariant(&r);
        }
    }

    #[test]
    fn parallel_proves_no_solution() {
        for threads in [1, 2, 4] {
            let (r, _) = run_toy(1000, (0..=50).collect(), &ParallelConfig::new(threads));
            assert!(matches!(r.outcome, Outcome::NoSolution), "threads={threads}: {:?}", r.outcome);
            assert_stats_invariant(&r);
        }
    }

    #[test]
    fn replay_kills_batch_mates() {
        // With batch 4 and candidates 0..3 all failing, candidate 0's cex
        // (= 0) refutes nothing above it, but learn() prunes everything ≤
        // max(candidate, cex); use a wider failing prefix so the committed
        // trace from index 0 kills indices 1..3 via replay: hidden = 100,
        // candidates 0,1,2,3 — cex from 0 is 0, replay kills nothing. So
        // craft the verifier cex as worst-case instead.
        struct WorstCase {
            hidden: i64,
        }
        impl Verifier for WorstCase {
            type Candidate = i64;
            type CounterExample = i64;
            fn verify(&mut self, candidate: &i64) -> Result<(), i64> {
                if *candidate >= self.hidden {
                    Ok(())
                } else {
                    Err(self.hidden - 1)
                }
            }
        }
        let mut g = EnumGen { remaining: (0..=40).collect() };
        let r = run_parallel(
            &mut g,
            |_| WorstCase { hidden: 37 },
            toy_replay,
            &Budget::default(),
            &ParallelConfig { threads: 2, batch: 4 },
        );
        assert!(matches!(r.outcome, Outcome::Solution(37)), "{:?}", r.outcome);
        // The worst-case cex 36 from batch index 0 must have replay-killed
        // later batch-mates.
        assert!(r.stats.replay_hits > 0, "{:?}", r.stats);
        assert_stats_invariant(&r);
    }

    #[test]
    fn iteration_budget_bounds_speculation() {
        let budget = Budget { max_iterations: 5, max_wall: Duration::from_secs(3600) };
        let mut g = EnumGen { remaining: (0..=100).collect() };
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        let r = run_parallel(
            &mut g,
            move |_| ThresholdVerifier { hidden: 1000, calls: calls2.clone() },
            toy_replay,
            &budget,
            &ParallelConfig { threads: 4, batch: 8 },
        );
        assert!(matches!(r.outcome, Outcome::BudgetExhausted), "{:?}", r.outcome);
        assert!(r.stats.iterations <= 5, "{:?}", r.stats);
        assert_stats_invariant(&r);
    }

    #[test]
    fn timeout_verdict_ends_run_as_budget() {
        // A verifier that honors cancellation/deadline by reporting Timeout.
        struct Sleepy;
        impl Verifier for Sleepy {
            type Candidate = i64;
            type CounterExample = i64;
            fn verify(&mut self, _c: &i64) -> Result<(), i64> {
                unreachable!("interruptible path only")
            }
            fn verify_interruptible(
                &mut self,
                _c: &i64,
                deadline: Option<Instant>,
                _cancel: Option<&Arc<AtomicBool>>,
            ) -> Verdict<i64> {
                if let Some(d) = deadline {
                    while Instant::now() < d {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Verdict::Timeout
            }
        }
        let budget = Budget { max_iterations: 1000, max_wall: Duration::from_millis(50) };
        let mut g = EnumGen { remaining: (0..=100).collect() };
        let t0 = Instant::now();
        let r = run_parallel(&mut g, |_| Sleepy, toy_replay, &budget, &ParallelConfig::new(2));
        assert!(matches!(r.outcome, Outcome::BudgetExhausted), "{:?}", r.outcome);
        assert!(t0.elapsed() < Duration::from_secs(5), "deadline not honored");
    }

    #[test]
    fn serial_and_parallel_agree_on_toy_domain() {
        for hidden in [0, 17, 99, 1000] {
            let mut gs = EnumGen { remaining: (0..=100).collect() };
            let calls = Arc::new(AtomicU64::new(0));
            let mut vs = ThresholdVerifier { hidden, calls: calls.clone() };
            let serial = run(&mut gs, &mut vs, &Budget::default());
            for threads in [1, 2, 4] {
                let (par, _) = run_toy(hidden, (0..=100).collect(), &ParallelConfig::new(threads));
                match (&serial.outcome, &par.outcome) {
                    (Outcome::Solution(a), Outcome::Solution(b)) => assert_eq!(a, b),
                    (Outcome::NoSolution, Outcome::NoSolution) => {}
                    (a, b) => panic!("hidden={hidden} threads={threads}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
