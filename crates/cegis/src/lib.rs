//! A domain-agnostic counterexample-guided inductive synthesis engine.
//!
//! CEGIS (Solar-Lezama et al.; Abate et al., CAV '18) solves `∃A. ∀τ. σ(A,τ)`
//! by alternating two oracles (the paper's Figure 1):
//!
//! * a [`Generator`] proposes a candidate `A*` consistent with every
//!   counterexample seen so far (checking only the finite set `X`),
//! * a [`Verifier`] searches for a trace `τ*` with `¬σ(A*, τ*)`.
//!
//! The loop ends when the verifier fails to find a counterexample (the
//! candidate is a *solution* — sound), or the generator's search space is
//! exhausted (*no solution exists* in the space — complete), or a budget
//! runs out.
//!
//! The engine is generic over candidate/counterexample types so the same
//! loop drives CCA synthesis (the `ccmatic` crate), ABR
//! verification tuning, and the unit-test toy domains below.

pub mod portfolio;

pub use portfolio::{
    run_portfolio, PortfolioResult, PortfolioWorker, StepOutcome, StepReport, WorkerStats,
};

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one batched (and possibly deadline-limited) proposal.
#[derive(Debug)]
pub struct BatchProposal<C> {
    /// Up to `k` mutually distinct candidates, each consistent with every
    /// learned counterexample. Fewer than `k` (but more than zero) means
    /// the space holds fewer than `k` remaining candidates; zero with
    /// `interrupted == false` means the space is exhausted (a completeness
    /// claim: no solution exists).
    pub candidates: Vec<C>,
    /// The deadline fired mid-search; no exhaustion claim is made. Any
    /// candidates gathered before the interrupt are still valid.
    pub interrupted: bool,
}

impl<C> BatchProposal<C> {
    /// A single-candidate (or exhausted) proposal, for generators without
    /// native batching.
    pub fn single(c: Option<C>) -> Self {
        BatchProposal { candidates: c.into_iter().collect(), interrupted: false }
    }
}

/// Proposes candidates consistent with all counterexamples learned so far.
pub trait Generator {
    /// The kind of artifact being synthesized.
    type Candidate;
    /// The kind of counterexample the verifier produces.
    type CounterExample;

    /// Produce a candidate consistent with every counterexample passed to
    /// [`Generator::learn`], or `None` if the space is exhausted (which
    /// proves no solution exists).
    fn propose(&mut self) -> Option<Self::Candidate>;

    /// Incorporate a counterexample that broke `candidate`. The engine may
    /// re-submit a counterexample it already learned (when the concrete
    /// replay prefilter kills a candidate with an old trace); generators
    /// are free to deduplicate.
    fn learn(&mut self, candidate: &Self::Candidate, cex: &Self::CounterExample);

    /// Produce up to `k` mutually distinct candidates, optionally giving up
    /// at `deadline`. The default ignores batching and the deadline and
    /// defers to [`Generator::propose`]; SMT-backed generators override it
    /// with scoped blocking clauses so one warm solver yields the whole
    /// batch.
    fn propose_batch(
        &mut self,
        k: usize,
        deadline: Option<Instant>,
    ) -> BatchProposal<Self::Candidate> {
        let _ = (k, deadline);
        BatchProposal::single(self.propose())
    }
}

/// A verifier's answer for one candidate.
#[derive(Clone, Debug)]
pub enum Verdict<X> {
    /// The candidate satisfies the specification for all traces.
    Pass,
    /// A concrete trace breaking the candidate.
    Fail(X),
    /// The deadline or cancellation fired before the verifier decided; no
    /// claim is made either way.
    Timeout,
}

/// Checks candidates against the full (usually infinite) trace space.
pub trait Verifier {
    /// Must match the generator's candidate type.
    type Candidate;
    /// Must match the generator's counterexample type.
    type CounterExample;

    /// Return `Ok(())` if the candidate satisfies the specification for all
    /// traces, or a counterexample that breaks it.
    fn verify(&mut self, candidate: &Self::Candidate) -> Result<(), Self::CounterExample>;

    /// Like [`Verifier::verify`], but giving up (with [`Verdict::Timeout`])
    /// once `deadline` passes or `cancel` is raised. The default ignores
    /// both and blocks until `verify` finishes — correct, but unable to
    /// honor a wall budget mid-query.
    fn verify_interruptible(
        &mut self,
        candidate: &Self::Candidate,
        deadline: Option<Instant>,
        cancel: Option<&Arc<AtomicBool>>,
    ) -> Verdict<Self::CounterExample> {
        let _ = (deadline, cancel);
        match self.verify(candidate) {
            Ok(()) => Verdict::Pass,
            Err(cex) => Verdict::Fail(cex),
        }
    }
}

/// Budget limits for a CEGIS run.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum generator/verifier round trips.
    pub max_iterations: u64,
    /// Wall-clock ceiling for the whole loop.
    pub max_wall: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_iterations: 10_000, max_wall: Duration::from_secs(3600) }
    }
}

/// Counters describing a finished (or aborted) run. These back the paper's
/// Table 1 (`# Itr` and `Time` columns) and its §4 scalability discussion.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Completed generator→verifier iterations.
    pub iterations: u64,
    /// Time spent inside `Generator::propose` + `learn`.
    pub generator_time: Duration,
    /// Time spent inside `Verifier::verify`.
    pub verifier_time: Duration,
    /// Number of verifier invocations (≥ iterations when the verifier is
    /// called multiple times per iteration, e.g. worst-case-counterexample
    /// binary search counts each probe via [`Stats::note_extra_verifier_calls`]).
    pub verifier_calls: u64,
    /// Candidates killed by the concrete counterexample-replay prefilter —
    /// refuted by re-running an already-learned trace against the
    /// candidate's rule directly, without an SMT call.
    pub replay_hits: u64,
    /// Portfolio step reports discarded without being merged (work on a
    /// shard overtaken by a solution in a lower shard).
    pub speculative_wasted: u64,
    /// Shards pulled from the portfolio queue beyond each worker's first.
    pub shards_stolen: u64,
    /// Learned clauses published to the portfolio clause exchange.
    pub shared_clauses_exported: u64,
    /// Sibling clauses imported from the portfolio clause exchange.
    pub shared_clauses_imported: u64,
    /// Candidates blocked by counterexample *region* generalization —
    /// replay-verified neighbors and symmetry images of a refuted candidate
    /// excluded beyond the refuted point itself.
    pub regions_pruned: u64,
    /// Learned counterexample traces dropped (or evicted) because another
    /// asserted trace subsumes them — every candidate they refute, the
    /// subsuming trace refutes too.
    pub cex_subsumed: u64,
    /// Warm-start: carried counterexample traces that still refute their
    /// original candidate at the new thresholds and were re-asserted.
    pub warm_traces_seeded: u64,
    /// Warm-start: carried traces whose refutation did not survive the
    /// threshold change and were demoted to the replay prefilter only.
    pub warm_traces_rejected: u64,
    /// Warm-start: neighbor solutions that re-verified at the new
    /// thresholds and were admitted without any generator work.
    pub warm_solutions_confirmed: u64,
    /// Persistent-cache lookups answered by a certificate re-check instead
    /// of a solve.
    pub cache_hits: u64,
    /// Wall-clock milliseconds spent re-checking cached certificates.
    pub cache_cert_ms: f64,
    /// Total wall-clock of the run.
    pub wall: Duration,
}

impl Stats {
    /// Record verifier probes beyond the engine's own bookkeeping (used by
    /// verifiers that internally binary-search).
    pub fn note_extra_verifier_calls(&mut self, n: u64) {
        self.verifier_calls += n;
    }
}

/// Why a CEGIS run stopped.
#[derive(Clone, Debug)]
pub enum Outcome<C> {
    /// The verifier certified this candidate against all traces.
    Solution(C),
    /// The generator proved no candidate in its space can work.
    NoSolution,
    /// A budget limit was hit first.
    BudgetExhausted,
}

/// Result of [`run`]: the outcome plus counters.
#[derive(Clone, Debug)]
pub struct RunResult<C> {
    /// Why the loop stopped.
    pub outcome: Outcome<C>,
    /// Counters for reporting.
    pub stats: Stats,
}

/// Events surfaced to the progress callback of [`run_with_progress`].
#[derive(Debug)]
pub enum Event<'a, C, X> {
    /// The generator proposed a candidate (iteration number included).
    Proposed(u64, &'a C),
    /// The verifier broke the candidate with this counterexample.
    Refuted(u64, &'a C, &'a X),
    /// The verifier certified the candidate.
    Certified(u64, &'a C),
}

/// Run the CEGIS loop to completion under `budget`.
pub fn run<G, V>(generator: &mut G, verifier: &mut V, budget: &Budget) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
{
    run_with_progress(generator, verifier, budget, |_| {})
}

/// Like [`run`], invoking `progress` on every loop event (used by the
/// examples to print the Figure-1 interaction live).
pub fn run_with_progress<G, V, F>(
    generator: &mut G,
    verifier: &mut V,
    budget: &Budget,
    mut progress: F,
) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
    F: FnMut(Event<'_, G::Candidate, G::CounterExample>),
{
    let start = Instant::now();
    // The deadline is threaded into both oracles so a single long proposal
    // or WCE binary search cannot blow far past `max_wall` (it used to be
    // checked only between iterations).
    let deadline = start.checked_add(budget.max_wall);
    let mut stats = Stats::default();
    loop {
        if stats.iterations >= budget.max_iterations || start.elapsed() >= budget.max_wall {
            stats.wall = start.elapsed();
            return RunResult { outcome: Outcome::BudgetExhausted, stats };
        }
        stats.iterations += 1;

        let g0 = Instant::now();
        let proposal = generator.propose_batch(1, deadline);
        stats.generator_time += g0.elapsed();
        let Some(candidate) = proposal.candidates.into_iter().next() else {
            stats.wall = start.elapsed();
            let outcome =
                if proposal.interrupted { Outcome::BudgetExhausted } else { Outcome::NoSolution };
            return RunResult { outcome, stats };
        };
        progress(Event::Proposed(stats.iterations, &candidate));

        let v0 = Instant::now();
        let verdict = verifier.verify_interruptible(&candidate, deadline, None);
        stats.verifier_time += v0.elapsed();
        stats.verifier_calls += 1;

        match verdict {
            Verdict::Pass => {
                progress(Event::Certified(stats.iterations, &candidate));
                stats.wall = start.elapsed();
                return RunResult { outcome: Outcome::Solution(candidate), stats };
            }
            Verdict::Fail(cex) => {
                progress(Event::Refuted(stats.iterations, &candidate, &cex));
                let g1 = Instant::now();
                generator.learn(&candidate, &cex);
                stats.generator_time += g1.elapsed();
            }
            Verdict::Timeout => {
                stats.wall = start.elapsed();
                return RunResult { outcome: Outcome::BudgetExhausted, stats };
            }
        }
    }
}

/// Serial CEGIS with the concrete counterexample-replay prefilter: before
/// paying for an SMT verifier call, re-run every learned trace against the
/// new candidate via `replay` (`replay(c, τ) == true` means τ concretely
/// refutes `c`). A replay kill counts as an iteration and is fed back
/// through [`Generator::learn`] with the old trace, but costs no verifier
/// call.
///
/// With an exact generator (one whose learned constraints exclude every
/// replay-refutable candidate, like the SMT generator) the prefilter never
/// fires on the serial path — it is a cross-check there, and pays off in
/// the portfolio engine where siblings propose candidates before each
/// other's counterexamples arrive. A consecutive-kill cap forces an SMT call every
/// `REPLAY_KILL_CAP` kills so inexact generators still make progress.
pub fn run_with_replay<G, V, R>(
    generator: &mut G,
    verifier: &mut V,
    replay: R,
    budget: &Budget,
) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
    G::CounterExample: Clone,
    R: Fn(&G::Candidate, &G::CounterExample) -> bool,
{
    run_with_replay_seeded(generator, verifier, replay, budget, Vec::new())
}

/// [`run_with_replay`] with the replay cache pre-populated. Each seed is a
/// counterexample carried over from a *different* problem instance (a
/// neighboring sweep point); seeds are never asserted blindly — a seed only
/// acts when `replay(candidate, seed)` re-establishes, under the *current*
/// problem's semantics, that it concretely refutes the candidate at hand,
/// so an inapplicable seed is inert rather than unsound.
pub fn run_with_replay_seeded<G, V, R>(
    generator: &mut G,
    verifier: &mut V,
    replay: R,
    budget: &Budget,
    seeds: Vec<G::CounterExample>,
) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
    G::CounterExample: Clone,
    R: Fn(&G::Candidate, &G::CounterExample) -> bool,
{
    let start = Instant::now();
    let deadline = start.checked_add(budget.max_wall);
    let mut stats = Stats::default();
    let mut learned: Vec<G::CounterExample> = seeds;
    let mut consecutive_kills = 0u32;
    loop {
        if stats.iterations >= budget.max_iterations || start.elapsed() >= budget.max_wall {
            stats.wall = start.elapsed();
            return RunResult { outcome: Outcome::BudgetExhausted, stats };
        }
        stats.iterations += 1;

        let g0 = Instant::now();
        let proposal = generator.propose_batch(1, deadline);
        stats.generator_time += g0.elapsed();
        let Some(candidate) = proposal.candidates.into_iter().next() else {
            stats.wall = start.elapsed();
            let outcome =
                if proposal.interrupted { Outcome::BudgetExhausted } else { Outcome::NoSolution };
            return RunResult { outcome, stats };
        };

        if consecutive_kills < REPLAY_KILL_CAP {
            if let Some(cex) = learned.iter().find(|x| replay(&candidate, x)) {
                stats.replay_hits += 1;
                consecutive_kills += 1;
                let cex = cex.clone();
                let g1 = Instant::now();
                generator.learn(&candidate, &cex);
                stats.generator_time += g1.elapsed();
                continue;
            }
        }
        consecutive_kills = 0;

        let v0 = Instant::now();
        let verdict = verifier.verify_interruptible(&candidate, deadline, None);
        stats.verifier_time += v0.elapsed();
        stats.verifier_calls += 1;

        match verdict {
            Verdict::Pass => {
                stats.wall = start.elapsed();
                return RunResult { outcome: Outcome::Solution(candidate), stats };
            }
            Verdict::Fail(cex) => {
                let g1 = Instant::now();
                generator.learn(&candidate, &cex);
                stats.generator_time += g1.elapsed();
                learned.push(cex);
            }
            Verdict::Timeout => {
                stats.wall = start.elapsed();
                return RunResult { outcome: Outcome::BudgetExhausted, stats };
            }
        }
    }
}

/// After this many consecutive replay kills, [`run_with_replay`] forces an
/// SMT verifier call regardless, so a generator whose `learn` is weaker
/// than the replay semantics cannot starve the loop.
const REPLAY_KILL_CAP: u32 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy domain: synthesize an integer in [0, 100] that is ≥ a hidden
    /// threshold. The generator enumerates; each counterexample is the
    /// value that failed (so the naive generator prunes one value per
    /// iteration — exactly the paper's "baseline" pathology) or a lower
    /// bound (the "range pruning" analogue).
    struct EnumGen {
        /// Values not yet excluded.
        remaining: Vec<i64>,
        /// Prune a whole prefix per counterexample (range pruning) or just
        /// the failing value (baseline).
        range_pruning: bool,
    }

    impl Generator for EnumGen {
        type Candidate = i64;
        type CounterExample = i64; // the largest value known to fail

        fn propose(&mut self) -> Option<i64> {
            self.remaining.first().copied()
        }

        fn learn(&mut self, candidate: &i64, cex: &i64) {
            if self.range_pruning {
                self.remaining.retain(|v| v > cex);
            } else {
                self.remaining.retain(|v| v != candidate);
            }
        }
    }

    struct ThresholdVerifier {
        hidden: i64,
        calls: u64,
        /// When set, return the *largest* failing value instead of the
        /// candidate itself — the toy analogue of the paper's worst-case
        /// counterexample: one cex prunes the whole failing prefix.
        worst_case: bool,
    }

    impl Verifier for ThresholdVerifier {
        type Candidate = i64;
        type CounterExample = i64;

        fn verify(&mut self, candidate: &i64) -> Result<(), i64> {
            self.calls += 1;
            if *candidate >= self.hidden {
                Ok(())
            } else if self.worst_case {
                Err(self.hidden - 1)
            } else {
                Err(*candidate)
            }
        }
    }

    #[test]
    fn finds_solution_baseline() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 37),
            other => panic!("expected solution, got {other:?}"),
        }
        assert_eq!(r.stats.iterations, 38, "baseline prunes one candidate per cex");
    }

    #[test]
    fn range_pruning_cuts_iterations() {
        // With range pruning + worst-case counterexamples, one cex removes
        // the whole failing prefix, converging in 2 iterations regardless
        // of the threshold — mirroring the paper's Table-1 effect.
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: true };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: true };
        let r = run(&mut g, &mut v, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 37),
            other => panic!("expected solution, got {other:?}"),
        }
        assert!(r.stats.iterations <= 2, "range pruning should need ≤2 iterations");
    }

    #[test]
    fn exhaustion_proves_no_solution() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 1000, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        assert!(matches!(r.outcome, Outcome::NoSolution));
        assert_eq!(r.stats.iterations, 102, "101 refutations + final empty propose");
    }

    #[test]
    fn iteration_budget_respected() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 1000, calls: 0, worst_case: false };
        let budget = Budget { max_iterations: 5, max_wall: Duration::from_secs(3600) };
        let r = run(&mut g, &mut v, &budget);
        assert!(matches!(r.outcome, Outcome::BudgetExhausted));
        assert_eq!(r.stats.iterations, 5);
    }

    #[test]
    fn progress_events_fire_in_order() {
        let mut g = EnumGen { remaining: (0..=10).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 2, calls: 0, worst_case: false };
        let mut log = Vec::new();
        let r = run_with_progress(&mut g, &mut v, &Budget::default(), |e| {
            log.push(match e {
                Event::Proposed(i, c) => format!("P{i}:{c}"),
                Event::Refuted(i, c, x) => format!("R{i}:{c}:{x}"),
                Event::Certified(i, c) => format!("C{i}:{c}"),
            });
        });
        assert!(matches!(r.outcome, Outcome::Solution(2)));
        assert_eq!(log, vec!["P1:0", "R1:0:0", "P2:1", "R2:1:1", "P3:2", "C3:2"],);
    }

    #[test]
    fn replay_prefilter_saves_verifier_calls() {
        // Worst-case counterexamples + baseline (one-value-per-learn)
        // generator: the replay prefilter kills the whole failing prefix
        // without SMT calls, with the consecutive-kill cap forcing an
        // occasional real verification.
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: true };
        let r = run_with_replay(&mut g, &mut v, |c, x| c <= x, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 37),
            other => panic!("expected solution, got {other:?}"),
        }
        // c0 verified (cex 36), c1..c32 replay-killed (cap), c33 verified,
        // c34..c36 replay-killed, c37 verified and certified.
        assert_eq!(r.stats.replay_hits, 35);
        assert_eq!(r.stats.verifier_calls, 3);
        assert_eq!(r.stats.iterations, 38);
        assert_eq!(v.calls, 3);
    }

    #[test]
    fn replay_never_fires_with_exact_generator() {
        // Range pruning learns exactly what replay checks, so the prefilter
        // must never fire — the serial-path cross-check the portfolio engine
        // relies on.
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: true };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: true };
        let r = run_with_replay(&mut g, &mut v, |c, x| c <= x, &Budget::default());
        assert!(matches!(r.outcome, Outcome::Solution(37)));
        assert_eq!(r.stats.replay_hits, 0);
    }

    #[test]
    fn stats_track_verifier_calls() {
        let mut g = EnumGen { remaining: (0..=10).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 3, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        assert_eq!(r.stats.verifier_calls, v.calls);
        assert_eq!(r.stats.verifier_calls, 4);
    }
}
