//! A domain-agnostic counterexample-guided inductive synthesis engine.
//!
//! CEGIS (Solar-Lezama et al.; Abate et al., CAV '18) solves `∃A. ∀τ. σ(A,τ)`
//! by alternating two oracles (the paper's Figure 1):
//!
//! * a [`Generator`] proposes a candidate `A*` consistent with every
//!   counterexample seen so far (checking only the finite set `X`),
//! * a [`Verifier`] searches for a trace `τ*` with `¬σ(A*, τ*)`.
//!
//! The loop ends when the verifier fails to find a counterexample (the
//! candidate is a *solution* — sound), or the generator's search space is
//! exhausted (*no solution exists* in the space — complete), or a budget
//! runs out.
//!
//! The engine is generic over candidate/counterexample types so the same
//! loop drives CCA synthesis ([`ccmatic`](../ccmatic/index.html)), ABR
//! verification tuning, and the unit-test toy domains below.

use std::time::{Duration, Instant};

/// Proposes candidates consistent with all counterexamples learned so far.
pub trait Generator {
    /// The kind of artifact being synthesized.
    type Candidate;
    /// The kind of counterexample the verifier produces.
    type CounterExample;

    /// Produce a candidate consistent with every counterexample passed to
    /// [`Generator::learn`], or `None` if the space is exhausted (which
    /// proves no solution exists).
    fn propose(&mut self) -> Option<Self::Candidate>;

    /// Incorporate a counterexample that broke `candidate`.
    fn learn(&mut self, candidate: &Self::Candidate, cex: &Self::CounterExample);
}

/// Checks candidates against the full (usually infinite) trace space.
pub trait Verifier {
    /// Must match the generator's candidate type.
    type Candidate;
    /// Must match the generator's counterexample type.
    type CounterExample;

    /// Return `Ok(())` if the candidate satisfies the specification for all
    /// traces, or a counterexample that breaks it.
    fn verify(&mut self, candidate: &Self::Candidate) -> Result<(), Self::CounterExample>;
}

/// Budget limits for a CEGIS run.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum generator/verifier round trips.
    pub max_iterations: u64,
    /// Wall-clock ceiling for the whole loop.
    pub max_wall: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget { max_iterations: 10_000, max_wall: Duration::from_secs(3600) }
    }
}

/// Counters describing a finished (or aborted) run. These back the paper's
/// Table 1 (`# Itr` and `Time` columns) and its §4 scalability discussion.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Completed generator→verifier iterations.
    pub iterations: u64,
    /// Time spent inside `Generator::propose` + `learn`.
    pub generator_time: Duration,
    /// Time spent inside `Verifier::verify`.
    pub verifier_time: Duration,
    /// Number of verifier invocations (≥ iterations when the verifier is
    /// called multiple times per iteration, e.g. worst-case-counterexample
    /// binary search counts each probe via [`Stats::note_extra_verifier_calls`]).
    pub verifier_calls: u64,
    /// Total wall-clock of the run.
    pub wall: Duration,
}

impl Stats {
    /// Record verifier probes beyond the engine's own bookkeeping (used by
    /// verifiers that internally binary-search).
    pub fn note_extra_verifier_calls(&mut self, n: u64) {
        self.verifier_calls += n;
    }
}

/// Why a CEGIS run stopped.
#[derive(Clone, Debug)]
pub enum Outcome<C> {
    /// The verifier certified this candidate against all traces.
    Solution(C),
    /// The generator proved no candidate in its space can work.
    NoSolution,
    /// A budget limit was hit first.
    BudgetExhausted,
}

/// Result of [`run`]: the outcome plus counters.
#[derive(Clone, Debug)]
pub struct RunResult<C> {
    /// Why the loop stopped.
    pub outcome: Outcome<C>,
    /// Counters for reporting.
    pub stats: Stats,
}

/// Events surfaced to the progress callback of [`run_with_progress`].
#[derive(Debug)]
pub enum Event<'a, C, X> {
    /// The generator proposed a candidate (iteration number included).
    Proposed(u64, &'a C),
    /// The verifier broke the candidate with this counterexample.
    Refuted(u64, &'a C, &'a X),
    /// The verifier certified the candidate.
    Certified(u64, &'a C),
}

/// Run the CEGIS loop to completion under `budget`.
pub fn run<G, V>(generator: &mut G, verifier: &mut V, budget: &Budget) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
{
    run_with_progress(generator, verifier, budget, |_| {})
}

/// Like [`run`], invoking `progress` on every loop event (used by the
/// examples to print the Figure-1 interaction live).
pub fn run_with_progress<G, V, F>(
    generator: &mut G,
    verifier: &mut V,
    budget: &Budget,
    mut progress: F,
) -> RunResult<G::Candidate>
where
    G: Generator,
    V: Verifier<Candidate = G::Candidate, CounterExample = G::CounterExample>,
    F: FnMut(Event<'_, G::Candidate, G::CounterExample>),
{
    let start = Instant::now();
    let mut stats = Stats::default();
    loop {
        if stats.iterations >= budget.max_iterations || start.elapsed() >= budget.max_wall {
            stats.wall = start.elapsed();
            return RunResult { outcome: Outcome::BudgetExhausted, stats };
        }
        stats.iterations += 1;

        let g0 = Instant::now();
        let candidate = generator.propose();
        stats.generator_time += g0.elapsed();
        let Some(candidate) = candidate else {
            stats.wall = start.elapsed();
            return RunResult { outcome: Outcome::NoSolution, stats };
        };
        progress(Event::Proposed(stats.iterations, &candidate));

        let v0 = Instant::now();
        let verdict = verifier.verify(&candidate);
        stats.verifier_time += v0.elapsed();
        stats.verifier_calls += 1;

        match verdict {
            Ok(()) => {
                progress(Event::Certified(stats.iterations, &candidate));
                stats.wall = start.elapsed();
                return RunResult { outcome: Outcome::Solution(candidate), stats };
            }
            Err(cex) => {
                progress(Event::Refuted(stats.iterations, &candidate, &cex));
                let g1 = Instant::now();
                generator.learn(&candidate, &cex);
                stats.generator_time += g1.elapsed();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy domain: synthesize an integer in [0, 100] that is ≥ a hidden
    /// threshold. The generator enumerates; each counterexample is the
    /// value that failed (so the naive generator prunes one value per
    /// iteration — exactly the paper's "baseline" pathology) or a lower
    /// bound (the "range pruning" analogue).
    struct EnumGen {
        /// Values not yet excluded.
        remaining: Vec<i64>,
        /// Prune a whole prefix per counterexample (range pruning) or just
        /// the failing value (baseline).
        range_pruning: bool,
    }

    impl Generator for EnumGen {
        type Candidate = i64;
        type CounterExample = i64; // the largest value known to fail

        fn propose(&mut self) -> Option<i64> {
            self.remaining.first().copied()
        }

        fn learn(&mut self, candidate: &i64, cex: &i64) {
            if self.range_pruning {
                self.remaining.retain(|v| v > cex);
            } else {
                self.remaining.retain(|v| v != candidate);
            }
        }
    }

    struct ThresholdVerifier {
        hidden: i64,
        calls: u64,
        /// When set, return the *largest* failing value instead of the
        /// candidate itself — the toy analogue of the paper's worst-case
        /// counterexample: one cex prunes the whole failing prefix.
        worst_case: bool,
    }

    impl Verifier for ThresholdVerifier {
        type Candidate = i64;
        type CounterExample = i64;

        fn verify(&mut self, candidate: &i64) -> Result<(), i64> {
            self.calls += 1;
            if *candidate >= self.hidden {
                Ok(())
            } else if self.worst_case {
                Err(self.hidden - 1)
            } else {
                Err(*candidate)
            }
        }
    }

    #[test]
    fn finds_solution_baseline() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 37),
            other => panic!("expected solution, got {other:?}"),
        }
        assert_eq!(r.stats.iterations, 38, "baseline prunes one candidate per cex");
    }

    #[test]
    fn range_pruning_cuts_iterations() {
        // With range pruning + worst-case counterexamples, one cex removes
        // the whole failing prefix, converging in 2 iterations regardless
        // of the threshold — mirroring the paper's Table-1 effect.
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: true };
        let mut v = ThresholdVerifier { hidden: 37, calls: 0, worst_case: true };
        let r = run(&mut g, &mut v, &Budget::default());
        match r.outcome {
            Outcome::Solution(c) => assert_eq!(c, 37),
            other => panic!("expected solution, got {other:?}"),
        }
        assert!(r.stats.iterations <= 2, "range pruning should need ≤2 iterations");
    }

    #[test]
    fn exhaustion_proves_no_solution() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 1000, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        assert!(matches!(r.outcome, Outcome::NoSolution));
        assert_eq!(r.stats.iterations, 102, "101 refutations + final empty propose");
    }

    #[test]
    fn iteration_budget_respected() {
        let mut g = EnumGen { remaining: (0..=100).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 1000, calls: 0, worst_case: false };
        let budget = Budget { max_iterations: 5, max_wall: Duration::from_secs(3600) };
        let r = run(&mut g, &mut v, &budget);
        assert!(matches!(r.outcome, Outcome::BudgetExhausted));
        assert_eq!(r.stats.iterations, 5);
    }

    #[test]
    fn progress_events_fire_in_order() {
        let mut g = EnumGen { remaining: (0..=10).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 2, calls: 0, worst_case: false };
        let mut log = Vec::new();
        let r = run_with_progress(&mut g, &mut v, &Budget::default(), |e| {
            log.push(match e {
                Event::Proposed(i, c) => format!("P{i}:{c}"),
                Event::Refuted(i, c, x) => format!("R{i}:{c}:{x}"),
                Event::Certified(i, c) => format!("C{i}:{c}"),
            });
        });
        assert!(matches!(r.outcome, Outcome::Solution(2)));
        assert_eq!(log, vec!["P1:0", "R1:0:0", "P2:1", "R2:1:1", "P3:2", "C3:2"],);
    }

    #[test]
    fn stats_track_verifier_calls() {
        let mut g = EnumGen { remaining: (0..=10).collect(), range_pruning: false };
        let mut v = ThresholdVerifier { hidden: 3, calls: 0, worst_case: false };
        let r = run(&mut g, &mut v, &Budget::default());
        assert_eq!(r.stats.verifier_calls, v.calls);
        assert_eq!(r.stats.verifier_calls, 4);
    }
}
