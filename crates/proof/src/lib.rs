//! Self-contained UNSAT certificates and an independent checker.
//!
//! The solver side (`ccmatic-smt`, behind its `proofs` feature) logs a
//! DRAT-style clausal proof through the [`ProofSink`] trait: input clauses,
//! learned clauses claimed derivable by reverse unit propagation (RUP),
//! theory lemmas carrying Farkas coefficients, clause deletions, and atom
//! definitions binding SAT variables to linear-arithmetic constraints. A
//! snapshot of the log at the moment a solver reports UNSAT is an
//! [`UnsatCertificate`].
//!
//! [`check`] replays a certificate **independently**: this crate depends only
//! on `ccmatic-num` and shares zero code with the solver. RUP steps are
//! checked by unit propagation over the live clause set; theory lemmas by
//! exact-rational Farkas summation (the weighted sum of the negated literals'
//! constraints must cancel every variable and leave a negative constant). A
//! certificate is accepted only if every derivation checks out and a verified
//! empty clause is live at the end.
//!
//! Literals use the dense encoding `var << 1 | sign` (odd = negated). The
//! encoding is re-stated here, not imported from the solver.

use ccmatic_num::Rat;
use std::fmt::Write as _;
use std::io::Write;

mod check;
pub use check::{check, CertStats, CheckError};

/// One step of a proof log.
#[derive(Clone, Debug, PartialEq)]
pub enum ProofStep {
    /// Binds SAT variable `var` to the arithmetic atom `expr ≤ bound`
    /// (`< bound` when `strict`); `expr` is a sparse sum over real-variable
    /// indices. Re-binding the same `var` later is legal and replaces the
    /// definition (scope pops recycle variables); the solver's epoch
    /// invariant guarantees every clause mentioning the old binding is
    /// deleted before the variable is reused.
    Atom { var: u32, expr: Vec<(u32, Rat)>, bound: Rat, strict: bool },
    /// An input (axiom) clause: part of the formula being refuted.
    Input { id: u64, lits: Vec<u32> },
    /// A clause claimed derivable by reverse unit propagation.
    Rup { id: u64, lits: Vec<u32> },
    /// A theory lemma: the conjunction of the negations of `lits` is
    /// LRA-infeasible, witnessed by the Farkas combination `farkas`
    /// (literal → positive coefficient; all Farkas literals must occur in
    /// `lits`).
    Theory { id: u64, lits: Vec<u32>, farkas: Vec<(u32, Rat)> },
    /// Removes a previously added clause from the live set.
    Delete { id: u64 },
}

impl ProofStep {
    /// Renders the step as one line of the text format (used for size
    /// accounting and the streaming sink).
    pub fn render(&self, out: &mut String) {
        match self {
            ProofStep::Atom { var, expr, bound, strict } => {
                let _ = write!(out, "a {var} {} {bound}", u8::from(*strict));
                for (v, c) in expr {
                    let _ = write!(out, " {v}:{c}");
                }
            }
            ProofStep::Input { id, lits } => {
                let _ = write!(out, "i {id}");
                for l in lits {
                    let _ = write!(out, " {l}");
                }
            }
            ProofStep::Rup { id, lits } => {
                let _ = write!(out, "r {id}");
                for l in lits {
                    let _ = write!(out, " {l}");
                }
            }
            ProofStep::Theory { id, lits, farkas } => {
                let _ = write!(out, "t {id}");
                for l in lits {
                    let _ = write!(out, " {l}");
                }
                out.push_str(" f");
                for (l, c) in farkas {
                    let _ = write!(out, " {l}:{c}");
                }
            }
            ProofStep::Delete { id } => {
                let _ = write!(out, "d {id}");
            }
        }
        out.push('\n');
    }
}

/// A complete proof log prefix ending in (at least one) verified empty
/// clause — everything the independent checker needs, with no references
/// back into solver state.
#[derive(Clone, Debug, Default)]
pub struct UnsatCertificate {
    pub steps: Vec<ProofStep>,
}

impl UnsatCertificate {
    /// The certificate in the one-line-per-step text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for step in &self.steps {
            step.render(&mut s);
        }
        s
    }

    /// Size of the text rendering in bytes.
    pub fn byte_len(&self) -> u64 {
        let mut s = String::new();
        let mut total = 0u64;
        for step in &self.steps {
            s.clear();
            step.render(&mut s);
            total += s.len() as u64;
        }
        total
    }

    /// Parses the one-line-per-step text format back into a certificate:
    /// the exact inverse of [`UnsatCertificate::to_text`]. Persisted
    /// certificates (the on-disk result cache) round-trip through this;
    /// any malformed line is an error, never a silently dropped step, so a
    /// corrupted cache entry fails loudly and falls back to a fresh solve.
    pub fn from_text(text: &str) -> Result<UnsatCertificate, String> {
        fn num<T: std::str::FromStr>(
            tok: Option<&str>,
            what: &str,
            line: usize,
        ) -> Result<T, String> {
            tok.ok_or_else(|| format!("line {line}: missing {what}"))?
                .parse::<T>()
                .map_err(|_| format!("line {line}: bad {what}"))
        }
        fn rat(tok: &str, what: &str, line: usize) -> Result<Rat, String> {
            Rat::from_decimal_str(tok).ok_or_else(|| format!("line {line}: bad {what} `{tok}`"))
        }
        fn pair(tok: &str, what: &str, line: usize) -> Result<(u32, Rat), String> {
            let (l, c) =
                tok.split_once(':').ok_or_else(|| format!("line {line}: bad {what} `{tok}`"))?;
            let l = l.parse::<u32>().map_err(|_| format!("line {line}: bad {what} `{tok}`"))?;
            Ok((l, rat(c, what, line)?))
        }
        let mut steps = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let mut toks = raw.split_ascii_whitespace();
            let step = match toks.next() {
                None => continue, // blank line (e.g. a trailing newline)
                Some("a") => {
                    let var = num::<u32>(toks.next(), "atom var", line)?;
                    let strict = match toks.next() {
                        Some("0") => false,
                        Some("1") => true,
                        _ => return Err(format!("line {line}: bad strict flag")),
                    };
                    let bound = rat(
                        toks.next().ok_or_else(|| format!("line {line}: missing bound"))?,
                        "bound",
                        line,
                    )?;
                    let expr =
                        toks.map(|t| pair(t, "atom term", line)).collect::<Result<Vec<_>, _>>()?;
                    ProofStep::Atom { var, expr, bound, strict }
                }
                Some("i") => ProofStep::Input {
                    id: num::<u64>(toks.next(), "clause id", line)?,
                    lits: toks
                        .map(|t| num::<u32>(Some(t), "literal", line))
                        .collect::<Result<_, _>>()?,
                },
                Some("r") => ProofStep::Rup {
                    id: num::<u64>(toks.next(), "clause id", line)?,
                    lits: toks
                        .map(|t| num::<u32>(Some(t), "literal", line))
                        .collect::<Result<_, _>>()?,
                },
                Some("t") => {
                    let id = num::<u64>(toks.next(), "clause id", line)?;
                    let mut lits = Vec::new();
                    let mut saw_f = false;
                    for t in toks.by_ref() {
                        if t == "f" {
                            saw_f = true;
                            break;
                        }
                        lits.push(num::<u32>(Some(t), "literal", line)?);
                    }
                    if !saw_f {
                        return Err(format!("line {line}: theory step missing `f` marker"));
                    }
                    let farkas = toks
                        .map(|t| pair(t, "farkas term", line))
                        .collect::<Result<Vec<_>, _>>()?;
                    ProofStep::Theory { id, lits, farkas }
                }
                Some("d") => ProofStep::Delete { id: num::<u64>(toks.next(), "clause id", line)? },
                Some(tag) => return Err(format!("line {line}: unknown step tag `{tag}`")),
            };
            steps.push(step);
        }
        Ok(UnsatCertificate { steps })
    }
}

/// Aggregate counters a sink maintains as the solver logs, surfaced in
/// `SolverStats` so proof overhead is observable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofLogStats {
    /// Total steps logged (including deletions and atom definitions).
    pub steps: u64,
    /// Clause-addition steps logged (input + RUP + theory).
    pub clauses: u64,
    /// Deletion steps logged.
    pub deletions: u64,
    /// Bytes of the text rendering of everything logged so far.
    pub bytes: u64,
}

/// Receives proof steps from a solver. Clause-addition methods return the
/// fresh clause id (ids start at 1 and are never reused).
pub trait ProofSink {
    fn log_atom(&mut self, var: u32, expr: Vec<(u32, Rat)>, bound: Rat, strict: bool);
    fn log_input(&mut self, lits: Vec<u32>) -> u64;
    fn log_rup(&mut self, lits: Vec<u32>) -> u64;
    fn log_theory(&mut self, lits: Vec<u32>, farkas: Vec<(u32, Rat)>) -> u64;
    fn log_delete(&mut self, id: u64);
    /// A copy of the full log so far, if this sink retains one. Solvers call
    /// this at the moment they conclude UNSAT.
    fn snapshot(&self) -> Option<UnsatCertificate> {
        None
    }
    fn stats(&self) -> ProofLogStats;
}

/// In-memory sink: retains every step so [`ProofSink::snapshot`] can produce
/// an [`UnsatCertificate`].
#[derive(Debug, Default)]
pub struct MemorySink {
    steps: Vec<ProofStep>,
    next_id: u64,
    stats: ProofLogStats,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, step: ProofStep) {
        let mut s = String::new();
        step.render(&mut s);
        self.stats.steps += 1;
        self.stats.bytes += s.len() as u64;
        self.steps.push(step);
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }
}

impl ProofSink for MemorySink {
    fn log_atom(&mut self, var: u32, expr: Vec<(u32, Rat)>, bound: Rat, strict: bool) {
        self.push(ProofStep::Atom { var, expr, bound, strict });
    }

    fn log_input(&mut self, lits: Vec<u32>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.push(ProofStep::Input { id, lits });
        id
    }

    fn log_rup(&mut self, lits: Vec<u32>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.push(ProofStep::Rup { id, lits });
        id
    }

    fn log_theory(&mut self, lits: Vec<u32>, farkas: Vec<(u32, Rat)>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.push(ProofStep::Theory { id, lits, farkas });
        id
    }

    fn log_delete(&mut self, id: u64) {
        self.stats.deletions += 1;
        self.push(ProofStep::Delete { id });
    }

    fn snapshot(&self) -> Option<UnsatCertificate> {
        Some(UnsatCertificate { steps: self.steps.clone() })
    }

    fn stats(&self) -> ProofLogStats {
        self.stats
    }
}

/// Streaming sink: renders each step to a writer as it is logged, keeping
/// memory bounded. Cannot produce snapshots (check the streamed file with an
/// external replay instead).
#[derive(Debug)]
pub struct WriterSink<W: Write> {
    writer: W,
    next_id: u64,
    stats: ProofLogStats,
    line: String,
}

impl<W: Write> WriterSink<W> {
    pub fn new(writer: W) -> Self {
        WriterSink { writer, next_id: 0, stats: ProofLogStats::default(), line: String::new() }
    }

    fn emit(&mut self, step: ProofStep) {
        self.line.clear();
        step.render(&mut self.line);
        self.stats.steps += 1;
        self.stats.bytes += self.line.len() as u64;
        let _ = self.writer.write_all(self.line.as_bytes());
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }
}

impl<W: Write> ProofSink for WriterSink<W> {
    fn log_atom(&mut self, var: u32, expr: Vec<(u32, Rat)>, bound: Rat, strict: bool) {
        self.emit(ProofStep::Atom { var, expr, bound, strict });
    }

    fn log_input(&mut self, lits: Vec<u32>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.emit(ProofStep::Input { id, lits });
        id
    }

    fn log_rup(&mut self, lits: Vec<u32>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.emit(ProofStep::Rup { id, lits });
        id
    }

    fn log_theory(&mut self, lits: Vec<u32>, farkas: Vec<(u32, Rat)>) -> u64 {
        let id = self.fresh_id();
        self.stats.clauses += 1;
        self.emit(ProofStep::Theory { id, lits, farkas });
        id
    }

    fn log_delete(&mut self, id: u64) {
        self.stats.deletions += 1;
        self.emit(ProofStep::Delete { id });
    }

    fn stats(&self) -> ProofLogStats {
        self.stats
    }
}

#[cfg(test)]
mod tests;
