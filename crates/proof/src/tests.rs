use crate::{check, CheckError, MemorySink, ProofSink, ProofStep, UnsatCertificate};
use ccmatic_num::{rat, Rat};

// Literal helpers mirroring the dense encoding: var << 1 | sign.
fn p(v: u32) -> u32 {
    v << 1
}
fn n(v: u32) -> u32 {
    v << 1 | 1
}

/// The four binary clauses over {x, y} plus RUP of [x] and then the empty
/// clause — a pure-SAT refutation.
fn sat_refutation() -> UnsatCertificate {
    UnsatCertificate {
        steps: vec![
            ProofStep::Input { id: 1, lits: vec![p(0), p(1)] },
            ProofStep::Input { id: 2, lits: vec![p(0), n(1)] },
            ProofStep::Input { id: 3, lits: vec![n(0), p(1)] },
            ProofStep::Input { id: 4, lits: vec![n(0), n(1)] },
            ProofStep::Rup { id: 5, lits: vec![p(0)] },
            ProofStep::Rup { id: 6, lits: vec![] },
        ],
    }
}

#[test]
fn accepts_sat_refutation() {
    let stats = check(&sat_refutation()).expect("valid refutation");
    assert_eq!(stats.clauses, 6);
    assert_eq!(stats.rup_checked, 2);
}

#[test]
fn rejects_dropped_clause() {
    let mut cert = sat_refutation();
    cert.steps.remove(0); // drop input (x ∨ y): RUP of [x] no longer holds
    assert_eq!(check(&cert), Err(CheckError::RupFailed(5)));
}

#[test]
fn deletion_after_use_is_fine_but_reordered_deletion_is_rejected() {
    let mut cert = sat_refutation();
    cert.steps.push(ProofStep::Delete { id: 1 });
    check(&cert).expect("deleting after the empty clause is derived is fine");

    let mut cert = sat_refutation();
    // Moving the deletion of input 1 before the RUP step removes an
    // antecedent the derivation needs.
    cert.steps.insert(4, ProofStep::Delete { id: 1 });
    assert_eq!(check(&cert), Err(CheckError::RupFailed(5)));
}

#[test]
fn rejects_duplicate_and_unknown_ids() {
    let mut cert = sat_refutation();
    cert.steps.insert(1, ProofStep::Input { id: 1, lits: vec![p(7)] });
    assert_eq!(check(&cert), Err(CheckError::DuplicateId(1)));

    let mut cert = sat_refutation();
    cert.steps.push(ProofStep::Delete { id: 99 });
    assert_eq!(check(&cert), Err(CheckError::UnknownDelete(99)));

    let mut cert = sat_refutation();
    cert.steps.push(ProofStep::Delete { id: 1 });
    cert.steps.push(ProofStep::Delete { id: 1 });
    assert_eq!(check(&cert), Err(CheckError::UnknownDelete(1)));
}

/// x ≤ 1 (atom on var 0) asserted true, x ≤ 2 (atom on var 1) asserted
/// false (so x > 2): the theory lemma (¬v0 ∨ v1) has Farkas coefficients
/// 1·(1 − x) + 1·(x − 2 − δ) = −1 − δ < 0.
fn theory_refutation() -> UnsatCertificate {
    UnsatCertificate {
        steps: vec![
            ProofStep::Atom { var: 0, expr: vec![(0, rat(1, 1))], bound: rat(1, 1), strict: false },
            ProofStep::Atom { var: 1, expr: vec![(0, rat(1, 1))], bound: rat(2, 1), strict: false },
            ProofStep::Input { id: 1, lits: vec![p(0)] },
            ProofStep::Input { id: 2, lits: vec![n(1)] },
            ProofStep::Theory {
                id: 3,
                lits: vec![n(0), p(1)],
                farkas: vec![(n(0), rat(1, 1)), (p(1), rat(1, 1))],
            },
            ProofStep::Rup { id: 4, lits: vec![] },
        ],
    }
}

#[test]
fn accepts_theory_refutation() {
    let stats = check(&theory_refutation()).expect("valid Farkas certificate");
    assert_eq!(stats.theory_checked, 1);
}

#[test]
fn rejects_perturbed_farkas_coefficient() {
    let mut cert = theory_refutation();
    if let ProofStep::Theory { farkas, .. } = &mut cert.steps[4] {
        farkas[0].1 = rat(2, 1); // variable parts no longer cancel
    }
    assert!(matches!(check(&cert), Err(CheckError::FarkasVarsDontCancel { id: 3, .. })));
}

#[test]
fn rejects_nonpositive_farkas_coefficient() {
    let mut cert = theory_refutation();
    if let ProofStep::Theory { farkas, .. } = &mut cert.steps[4] {
        farkas[0].1 = rat(-1, 1);
    }
    assert_eq!(check(&cert), Err(CheckError::NonPositiveFarkas(3)));
}

#[test]
fn rejects_dropped_atom_definition() {
    let mut cert = theory_refutation();
    cert.steps.remove(1);
    assert_eq!(check(&cert), Err(CheckError::UnknownAtom { id: 3, var: 1 }));
}

#[test]
fn rejects_farkas_lit_outside_clause() {
    let mut cert = theory_refutation();
    if let ProofStep::Theory { lits, .. } = &mut cert.steps[4] {
        lits.remove(1);
    }
    assert_eq!(check(&cert), Err(CheckError::FarkasLitNotInClause { id: 3, lit: p(1) }));
}

#[test]
fn strict_bounds_carry_the_infinitesimal() {
    // x < 1 asserted true and x < 1 (second atom) asserted false (x ≥ 1):
    // the sum is −δ, negative only because of the infinitesimal.
    let strict_pair = |a_strict: bool| UnsatCertificate {
        steps: vec![
            ProofStep::Atom {
                var: 0,
                expr: vec![(0, rat(1, 1))],
                bound: rat(1, 1),
                strict: a_strict,
            },
            ProofStep::Atom { var: 1, expr: vec![(0, rat(1, 1))], bound: rat(1, 1), strict: true },
            ProofStep::Theory {
                id: 1,
                lits: vec![n(0), p(1)],
                farkas: vec![(n(0), rat(1, 1)), (p(1), rat(1, 1))],
            },
        ],
    };
    let mut good = strict_pair(true);
    good.steps.push(ProofStep::Input { id: 2, lits: vec![p(0)] });
    good.steps.push(ProofStep::Input { id: 3, lits: vec![n(1)] });
    good.steps.push(ProofStep::Rup { id: 4, lits: vec![] });
    check(&good).expect("x < 1 ∧ x ≥ 1 is infeasible");

    // x ≤ 1 ∧ x ≥ 1 is satisfiable (x = 1): sum is exactly zero.
    assert_eq!(check(&strict_pair(false)), Err(CheckError::FarkasNotNegative(1)));
}

#[test]
fn rejects_empty_farkas_and_missing_empty_clause() {
    let cert =
        UnsatCertificate { steps: vec![ProofStep::Theory { id: 1, lits: vec![], farkas: vec![] }] };
    assert_eq!(check(&cert), Err(CheckError::EmptyFarkas(1)));

    let cert = UnsatCertificate { steps: vec![ProofStep::Input { id: 1, lits: vec![p(0)] }] };
    assert_eq!(check(&cert), Err(CheckError::NoEmptyClause));
}

#[test]
fn memory_sink_roundtrip_and_stats() {
    let mut sink = MemorySink::new();
    let a = sink.log_input(vec![p(0), p(1)]);
    let b = sink.log_input(vec![n(0)]);
    sink.log_atom(1, vec![(0, rat(1, 1))], Rat::zero(), false);
    let c = sink.log_rup(vec![p(1)]);
    sink.log_delete(a);
    assert_eq!((a, b, c), (1, 2, 3));
    let stats = sink.stats();
    assert_eq!(stats.steps, 5);
    assert_eq!(stats.clauses, 3);
    assert_eq!(stats.deletions, 1);
    let cert = sink.snapshot().unwrap();
    assert_eq!(cert.steps.len(), 5);
    assert_eq!(stats.bytes, cert.byte_len());
    assert!(cert.to_text().lines().count() == 5);
}

#[test]
fn writer_sink_streams_the_same_text() {
    let mut mem = MemorySink::new();
    let mut buf = Vec::new();
    {
        let mut w = crate::WriterSink::new(&mut buf);
        for sink in [&mut mem as &mut dyn ProofSink, &mut w as &mut dyn ProofSink] {
            sink.log_input(vec![p(0), n(1)]);
            sink.log_theory(vec![n(0)], vec![(n(0), rat(3, 2))]);
            sink.log_delete(1);
        }
        assert_eq!(mem.stats().bytes, w.stats().bytes);
    }
    assert_eq!(String::from_utf8(buf).unwrap(), mem.snapshot().unwrap().to_text());
}

#[test]
fn text_format_roundtrips_through_from_text() {
    let cert = UnsatCertificate {
        steps: vec![
            ProofStep::Atom {
                var: 3,
                expr: vec![(0, rat(1, 1)), (2, rat(-7, 2))],
                bound: rat(18, 5),
                strict: true,
            },
            ProofStep::Atom { var: 4, expr: vec![], bound: Rat::zero(), strict: false },
            ProofStep::Input { id: 1, lits: vec![p(3), n(4)] },
            ProofStep::Rup { id: 2, lits: vec![n(3)] },
            ProofStep::Theory { id: 3, lits: vec![p(4)], farkas: vec![(p(4), rat(3, 2))] },
            ProofStep::Theory { id: 4, lits: vec![], farkas: vec![] },
            ProofStep::Rup { id: 5, lits: vec![] },
            ProofStep::Delete { id: 1 },
        ],
    };
    let text = cert.to_text();
    let back = UnsatCertificate::from_text(&text).expect("rendered text must parse");
    assert_eq!(back.steps, cert.steps);
    assert_eq!(back.to_text(), text);
}

#[test]
fn real_refutations_roundtrip_and_still_check() {
    for cert in [sat_refutation(), theory_refutation()] {
        let back = UnsatCertificate::from_text(&cert.to_text()).unwrap();
        assert_eq!(back.steps, cert.steps);
        check(&back).expect("round-tripped certificate must still check");
    }
}

#[test]
fn from_text_rejects_malformed_lines() {
    for bad in [
        "x 1 2\n",         // unknown tag
        "a 1 2 0\n",       // strict flag out of range
        "a 1 0\n",         // missing bound
        "a 1 0 1/2 3:\n",  // empty coefficient in pair
        "a 1 0 1/2 3;4\n", // malformed pair separator
        "i\n",             // missing clause id
        "i one 2\n",       // non-numeric id
        "r 1 -2\n",        // negative literal token
        "t 1 2 3\n",       // theory step without `f` marker
        "t 1 f 2:x\n",     // non-rational farkas coefficient
        "d\n",             // missing delete id
        "i 1 2\nq 3\n",    // good line followed by bad line
    ] {
        assert!(UnsatCertificate::from_text(bad).is_err(), "must reject {bad:?}");
    }
    // Blank lines and a trailing newline are tolerated.
    let ok = UnsatCertificate::from_text("i 1 2\n\nr 2\n").unwrap();
    assert_eq!(ok.steps.len(), 2);
}
