//! Independent certificate replay: RUP propagation over the live clause set
//! plus exact-rational Farkas summation for theory lemmas.

use crate::{ProofStep, UnsatCertificate};
use ccmatic_num::{DeltaRat, Rat};
use std::collections::HashMap;
use std::fmt;

/// Counters from a successful replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertStats {
    /// Steps replayed.
    pub steps: usize,
    /// Clauses added to the live set (input + RUP + theory).
    pub clauses: usize,
    /// RUP derivations checked.
    pub rup_checked: usize,
    /// Farkas certificates checked.
    pub theory_checked: usize,
    /// Deletions applied.
    pub deletions: usize,
    /// Unit propagations performed across all RUP checks.
    pub propagations: u64,
}

/// Why a certificate was rejected. Every variant names the offending step id
/// where one exists, so corruption is diagnosable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// A clause id was introduced twice.
    DuplicateId(u64),
    /// A deletion named an id that is unknown or already deleted.
    UnknownDelete(u64),
    /// A claimed RUP clause did not propagate to conflict.
    RupFailed(u64),
    /// A theory lemma carried no Farkas coefficients.
    EmptyFarkas(u64),
    /// A Farkas coefficient was zero or negative.
    NonPositiveFarkas(u64),
    /// A Farkas literal does not occur in the lemma clause.
    FarkasLitNotInClause { id: u64, lit: u32 },
    /// A Farkas literal's variable has no atom definition in scope.
    UnknownAtom { id: u64, var: u32 },
    /// The weighted constraint sum left a nonzero coefficient on a variable.
    FarkasVarsDontCancel { id: u64, var: u32 },
    /// The weighted constraint sum's constant is not negative.
    FarkasNotNegative(u64),
    /// Replay finished with no live verified empty clause.
    NoEmptyClause,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DuplicateId(id) => write!(f, "clause id {id} introduced twice"),
            CheckError::UnknownDelete(id) => {
                write!(f, "deletion of unknown or already-deleted clause id {id}")
            }
            CheckError::RupFailed(id) => {
                write!(f, "clause id {id} is not derivable by reverse unit propagation")
            }
            CheckError::EmptyFarkas(id) => {
                write!(f, "theory lemma id {id} carries no Farkas coefficients")
            }
            CheckError::NonPositiveFarkas(id) => {
                write!(f, "theory lemma id {id} has a non-positive Farkas coefficient")
            }
            CheckError::FarkasLitNotInClause { id, lit } => {
                write!(f, "theory lemma id {id}: Farkas literal {lit} is not in the clause")
            }
            CheckError::UnknownAtom { id, var } => {
                write!(f, "theory lemma id {id}: variable {var} has no atom definition")
            }
            CheckError::FarkasVarsDontCancel { id, var } => {
                write!(f, "theory lemma id {id}: Farkas sum leaves variable {var} uncancelled")
            }
            CheckError::FarkasNotNegative(id) => {
                write!(f, "theory lemma id {id}: Farkas sum constant is not negative")
            }
            CheckError::NoEmptyClause => {
                write!(f, "no live verified empty clause at end of certificate")
            }
        }
    }
}

impl std::error::Error for CheckError {}

struct AtomDef {
    expr: Vec<(u32, Rat)>,
    bound: Rat,
    strict: bool,
}

struct ClauseRec {
    lits: Vec<u32>,
    /// Positions of the two watched literals (only meaningful for len ≥ 2).
    w0: usize,
    w1: usize,
}

#[derive(Default)]
struct Checker {
    atoms: HashMap<u32, AtomDef>,
    slots: Vec<Option<ClauseRec>>,
    /// Clause id → slot. Entries persist after deletion (slot becomes `None`)
    /// so duplicate ids are still caught.
    id_to_slot: HashMap<u64, usize>,
    /// Literal code → slots watching it (clauses of length ≥ 2 only).
    watches: Vec<Vec<usize>>,
    /// Literal code → number of live unit clauses asserting it.
    units: HashMap<u32, u32>,
    /// Live empty clauses (axiomatic or verified).
    empties: u32,
    /// Variable → 0 unset, 1 true, −1 false (scratch; clean between checks).
    assign: Vec<i8>,
    /// Assigned literals in order, for propagation and undo.
    trail: Vec<u32>,
    stats: CertStats,
}

fn lit_value(assign: &[i8], l: u32) -> Option<bool> {
    match assign[(l >> 1) as usize] {
        0 => None,
        1 => Some(l & 1 == 0),
        _ => Some(l & 1 == 1),
    }
}

impl Checker {
    fn ensure_lits(&mut self, lits: &[u32]) {
        for &l in lits {
            let need_w = l as usize | 1;
            if need_w >= self.watches.len() {
                self.watches.resize_with(need_w + 1, Vec::new);
            }
            let v = (l >> 1) as usize;
            if v >= self.assign.len() {
                self.assign.resize(v + 1, 0);
            }
        }
    }

    fn add_clause(&mut self, id: u64, lits: &[u32]) -> Result<(), CheckError> {
        if self.id_to_slot.contains_key(&id) {
            return Err(CheckError::DuplicateId(id));
        }
        let mut ls = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        self.ensure_lits(&ls);
        let slot = self.slots.len();
        match ls.len() {
            0 => self.empties += 1,
            1 => *self.units.entry(ls[0]).or_insert(0) += 1,
            _ => {
                self.watches[ls[0] as usize].push(slot);
                self.watches[ls[1] as usize].push(slot);
            }
        }
        self.slots.push(Some(ClauseRec { lits: ls, w0: 0, w1: 1 }));
        self.id_to_slot.insert(id, slot);
        self.stats.clauses += 1;
        Ok(())
    }

    fn delete(&mut self, id: u64) -> Result<(), CheckError> {
        let Some(&slot) = self.id_to_slot.get(&id) else {
            return Err(CheckError::UnknownDelete(id));
        };
        let Some(rec) = self.slots[slot].take() else {
            return Err(CheckError::UnknownDelete(id));
        };
        match rec.lits.len() {
            0 => self.empties -= 1,
            1 => {
                if let Some(n) = self.units.get_mut(&rec.lits[0]) {
                    *n -= 1;
                    if *n == 0 {
                        self.units.remove(&rec.lits[0]);
                    }
                }
            }
            _ => {
                for w in [rec.w0, rec.w1] {
                    self.watches[rec.lits[w] as usize].retain(|&s| s != slot);
                }
            }
        }
        self.stats.deletions += 1;
        Ok(())
    }

    /// Assigns `l` true and records it on the trail. Caller checks the
    /// current value first.
    fn assign_lit(&mut self, l: u32) {
        self.assign[(l >> 1) as usize] = if l & 1 == 0 { 1 } else { -1 };
        self.trail.push(l);
    }

    /// True iff assuming the negation of every literal in `lits` (on top of
    /// the live unit clauses) propagates to a conflict.
    fn rup_holds(&mut self, lits: &[u32]) -> bool {
        if self.empties > 0 {
            return true;
        }
        self.ensure_lits(lits);
        debug_assert!(self.trail.is_empty());
        let conflict = self.rup_inner(lits);
        for i in 0..self.trail.len() {
            let l = self.trail[i];
            self.assign[(l >> 1) as usize] = 0;
        }
        self.trail.clear();
        conflict
    }

    fn rup_inner(&mut self, lits: &[u32]) -> bool {
        // Assume the negation of the candidate clause…
        for &l in lits {
            let nl = l ^ 1;
            match lit_value(&self.assign, nl) {
                Some(true) => {}
                Some(false) => return true, // complementary pair: tautology
                None => self.assign_lit(nl),
            }
        }
        // …seed every live unit clause…
        let unit_lits: Vec<u32> = self.units.keys().copied().collect();
        for u in unit_lits {
            match lit_value(&self.assign, u) {
                Some(true) => {}
                Some(false) => return true,
                None => self.assign_lit(u),
            }
        }
        // …and propagate over the watched clauses.
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let l = self.trail[qhead];
            qhead += 1;
            self.stats.propagations += 1;
            if self.visit_watchers(l ^ 1) {
                return true;
            }
        }
        false
    }

    /// Visits every clause watching the now-false literal `fl`; returns true
    /// on conflict.
    fn visit_watchers(&mut self, fl: u32) -> bool {
        let mut ws = std::mem::take(&mut self.watches[fl as usize]);
        let mut i = 0;
        let mut conflict = false;
        while i < ws.len() {
            let slot = ws[i];
            // Deleted slots are purged from watch lists eagerly, so the slot
            // is live here.
            let rec = self.slots[slot].as_mut().expect("live watched clause");
            let fl_is_w0 = rec.lits[rec.w0] == fl;
            let other_pos = if fl_is_w0 { rec.w1 } else { rec.w0 };
            let other_lit = rec.lits[other_pos];
            if lit_value(&self.assign, other_lit) == Some(true) {
                i += 1;
                continue;
            }
            let mut repl = None;
            for (j, &lj) in rec.lits.iter().enumerate() {
                if j == rec.w0 || j == rec.w1 {
                    continue;
                }
                if lit_value(&self.assign, lj) != Some(false) {
                    repl = Some((j, lj));
                    break;
                }
            }
            if let Some((j, lj)) = repl {
                if fl_is_w0 {
                    rec.w0 = j;
                } else {
                    rec.w1 = j;
                }
                self.watches[lj as usize].push(slot);
                ws.swap_remove(i);
                continue;
            }
            match lit_value(&self.assign, other_lit) {
                None => {
                    self.assign_lit(other_lit);
                    i += 1;
                }
                Some(false) => {
                    conflict = true;
                    break;
                }
                Some(true) => unreachable!("handled above"),
            }
        }
        self.watches[fl as usize] = ws;
        conflict
    }

    /// Verifies the Farkas combination for theory lemma `id`: the weighted
    /// sum of the constraints asserted by the *negations* of the Farkas
    /// literals must cancel every variable and leave a negative constant
    /// (strict bounds contribute an infinitesimal −δ).
    fn check_farkas(&self, id: u64, lits: &[u32], farkas: &[(u32, Rat)]) -> Result<(), CheckError> {
        if farkas.is_empty() {
            return Err(CheckError::EmptyFarkas(id));
        }
        let mut vars: HashMap<u32, Rat> = HashMap::new();
        let mut konst = DeltaRat::zero();
        for (l, lam) in farkas {
            if !lam.is_positive() {
                return Err(CheckError::NonPositiveFarkas(id));
            }
            if !lits.contains(l) {
                return Err(CheckError::FarkasLitNotInClause { id, lit: *l });
            }
            let var = l >> 1;
            let Some(def) = self.atoms.get(&var) else {
                return Err(CheckError::UnknownAtom { id, var });
            };
            // The clause literal `l` is the negation of what was asserted.
            // Odd `l` (¬v in the clause) ⇒ the atom held: expr ≤ bound
            // (strict: < bound), i.e. g = bound − expr ≥ 0 with −δ if strict.
            // Even `l` (v in the clause) ⇒ the atom was refuted:
            // expr ≥ bound when the atom is strict, expr > bound otherwise,
            // i.e. g = expr − bound ≥ 0 with −δ if the atom is non-strict.
            let (negate_expr, gc) = if l & 1 == 1 {
                let delta = if def.strict { -&Rat::one() } else { Rat::zero() };
                (true, DeltaRat::new(def.bound.clone(), delta))
            } else {
                let delta = if def.strict { Rat::zero() } else { -&Rat::one() };
                (false, DeltaRat::new(-&def.bound, delta))
            };
            konst = &konst + &gc.scale(lam);
            for (v, c) in &def.expr {
                let mut add = lam * c;
                if negate_expr {
                    add = -add;
                }
                *vars.entry(*v).or_insert_with(Rat::zero) += &add;
            }
        }
        for (v, c) in &vars {
            if !c.is_zero() {
                return Err(CheckError::FarkasVarsDontCancel { id, var: *v });
            }
        }
        if konst >= DeltaRat::zero() {
            return Err(CheckError::FarkasNotNegative(id));
        }
        Ok(())
    }
}

/// Replays a certificate from scratch. Returns replay counters on success;
/// the first invalid step otherwise.
pub fn check(cert: &UnsatCertificate) -> Result<CertStats, CheckError> {
    let mut ck = Checker::default();
    for step in &cert.steps {
        ck.stats.steps += 1;
        match step {
            ProofStep::Atom { var, expr, bound, strict } => {
                ck.atoms.insert(
                    *var,
                    AtomDef { expr: expr.clone(), bound: bound.clone(), strict: *strict },
                );
            }
            ProofStep::Input { id, lits } => ck.add_clause(*id, lits)?,
            ProofStep::Rup { id, lits } => {
                if !ck.rup_holds(lits) {
                    return Err(CheckError::RupFailed(*id));
                }
                ck.stats.rup_checked += 1;
                ck.add_clause(*id, lits)?;
            }
            ProofStep::Theory { id, lits, farkas } => {
                ck.check_farkas(*id, lits, farkas)?;
                ck.stats.theory_checked += 1;
                ck.add_clause(*id, lits)?;
            }
            ProofStep::Delete { id } => ck.delete(*id)?,
        }
    }
    if ck.empties == 0 {
        return Err(CheckError::NoEmptyClause);
    }
    Ok(ck.stats)
}
