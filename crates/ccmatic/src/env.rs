//! Environment-variable knobs shared by the sweep and synthesis thread
//! pools: `CCMATIC_SWEEP_THREADS` / `CCMATIC_SYNTH_THREADS` (worker
//! counts) and `CCMATIC_SEED` (the portfolio diversification seed,
//! overridden by an explicit `--seed` flag).
//!
//! A misspelt `CCMATIC_SWEEP_THREADS=fourty` used to be silently ignored,
//! quietly running the sweep at a different width than the operator asked
//! for. Unparsable values — including a set-but-empty `CCMATIC_SEED=`,
//! which usually means a shell substitution came up blank — warn once
//! (per variable, per process) on stderr and fall back to the default.

use std::sync::Mutex;

/// Variables already warned about, so a sweep spawning hundreds of runs
/// complains once rather than per run.
static WARNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Warn once per variable per process.
fn warn_once(var: &'static str, msg: &str) {
    let mut warned = WARNED.lock().unwrap();
    if !warned.contains(&var) {
        warned.push(var);
        eprintln!("{msg}");
    }
}

/// `true` iff `var` has been warned about in this process (test hook for
/// the warn-once contract on malformed and empty values).
#[cfg(test)]
fn has_warned(var: &'static str) -> bool {
    WARNED.lock().unwrap().contains(&var)
}

/// Read a positive thread count from `var`. Unset returns `None`; set but
/// empty, unparsable, or zero warns once to stderr and returns `None`.
pub fn env_threads(var: &'static str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    if raw.trim().is_empty() {
        warn_once(var, &format!("warning: {var} is set but empty; using the default"));
        return None;
    }
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            warn_once(
                var,
                &format!(
                    "warning: ignoring {var}={raw:?}: expected a positive integer thread count"
                ),
            );
            None
        }
    }
}

/// `var` if set and valid, else the machine's available parallelism.
pub fn env_threads_or_cores(var: &'static str) -> usize {
    env_threads(var)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Read a `u64` search seed from `var` (e.g. `CCMATIC_SEED`). Unset
/// returns `None`; set but empty or unparsable warns once to stderr and
/// returns `None`.
pub fn env_seed(var: &'static str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    if raw.trim().is_empty() {
        warn_once(var, &format!("warning: {var} is set but empty; using the default"));
        return None;
    }
    match raw.trim().parse::<u64>() {
        Ok(n) => Some(n),
        Err(_) => {
            warn_once(
                var,
                &format!("warning: ignoring {var}={raw:?}: expected an unsigned integer seed"),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name: the process environment is
    // global and tests run concurrently.
    #[test]
    fn unset_is_none() {
        assert_eq!(env_threads("CCMATIC_TEST_THREADS_UNSET"), None);
        assert!(env_threads_or_cores("CCMATIC_TEST_THREADS_UNSET") >= 1);
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("CCMATIC_TEST_THREADS_VALID", "3");
        assert_eq!(env_threads("CCMATIC_TEST_THREADS_VALID"), Some(3));
        assert_eq!(env_threads_or_cores("CCMATIC_TEST_THREADS_VALID"), 3);
    }

    #[test]
    fn seed_parses_and_rejects_garbage() {
        assert_eq!(env_seed("CCMATIC_TEST_SEED_UNSET"), None);
        std::env::set_var("CCMATIC_TEST_SEED_VALID", "42");
        assert_eq!(env_seed("CCMATIC_TEST_SEED_VALID"), Some(42));
        std::env::set_var("CCMATIC_TEST_SEED_ZERO", "0");
        assert_eq!(env_seed("CCMATIC_TEST_SEED_ZERO"), Some(0));
        std::env::set_var("CCMATIC_TEST_SEED_BAD", "-1");
        assert_eq!(env_seed("CCMATIC_TEST_SEED_BAD"), None);
    }

    #[test]
    fn garbage_and_zero_fall_back() {
        std::env::set_var("CCMATIC_TEST_THREADS_BAD", "fourty");
        assert_eq!(env_threads("CCMATIC_TEST_THREADS_BAD"), None);
        std::env::set_var("CCMATIC_TEST_THREADS_ZERO", "0");
        assert_eq!(env_threads("CCMATIC_TEST_THREADS_ZERO"), None);
        assert!(env_threads_or_cores("CCMATIC_TEST_THREADS_ZERO") >= 1);
    }

    #[test]
    fn empty_value_warns_like_malformed_ones() {
        // `CCMATIC_SEED=` (set but empty) must not be treated as quietly
        // unset: it falls back AND registers a warning, same as garbage.
        std::env::set_var("CCMATIC_TEST_SEED_EMPTY", "");
        assert!(!has_warned("CCMATIC_TEST_SEED_EMPTY"));
        assert_eq!(env_seed("CCMATIC_TEST_SEED_EMPTY"), None);
        assert!(has_warned("CCMATIC_TEST_SEED_EMPTY"));

        std::env::set_var("CCMATIC_TEST_THREADS_EMPTY", "  ");
        assert!(!has_warned("CCMATIC_TEST_THREADS_EMPTY"));
        assert_eq!(env_threads("CCMATIC_TEST_THREADS_EMPTY"), None);
        assert!(has_warned("CCMATIC_TEST_THREADS_EMPTY"));
        assert!(env_threads_or_cores("CCMATIC_TEST_THREADS_EMPTY") >= 1);

        // Genuinely unset variables stay silent.
        assert_eq!(env_seed("CCMATIC_TEST_SEED_NEVER_SET"), None);
        assert!(!has_warned("CCMATIC_TEST_SEED_NEVER_SET"));
    }
}
