//! Threshold sweeps over the solution space (§4: how the solution count
//! moves as the utilization and delay targets change).
//!
//! Each threshold value is an independent full enumeration. Two execution
//! strategies exist, picked by [`SweepConfig::warm_start`]:
//!
//! * **Cold (parallel):** the per-threshold runs fan out across a
//!   `std::thread::scope` worker pool. Every worker owns its own
//!   generator/verifier pair (built inside `enumerate_all`), so no solver
//!   state is shared; results are collected in input order, making the
//!   output deterministic and independent of both the thread count and the
//!   scheduling order. The pool size follows
//!   `std::thread::available_parallelism`, overridable with the
//!   `CCMATIC_SWEEP_THREADS` environment variable.
//! * **Warm (sequential):** points run in input order, each seeded with
//!   the previous point's [`WarmStart`] carry (re-validated counterexample
//!   traces + pre-verified solutions; see `enumerate` module docs). Callers
//!   should order values loose→tight so the nested-solution-set
//!   pre-verification pays off. Warm-starting is inherently sequential —
//!   `threads` is ignored — which also makes the row set trivially
//!   identical across thread counts.
//!
//! Both strategies enforce the optional *sweep-level* wall budget honestly:
//! each successive point's own deadline is clamped to the wall remaining
//! for the whole sweep, and points reached after the sweep deadline are
//! skipped outright (empty, incomplete rows) rather than silently blowing
//! through the budget.

use crate::cache::{CacheStats, ResultCache};
use crate::enumerate::{enumerate_all_with, EnumerateResult, WarmEnumeration, WarmStart};
use crate::synth::SynthOptions;
use ccac_model::Thresholds;
use ccmatic_cegis::Stats;
use ccmatic_num::Rat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One row of a sweep report.
#[derive(Debug)]
pub struct SweepRow {
    /// The thresholds used.
    pub thresholds: Thresholds,
    /// The enumeration outcome at those thresholds.
    pub result: EnumerateResult,
}

/// Worker-pool size: `CCMATIC_SWEEP_THREADS` if set and valid (unparsable
/// values warn once on stderr), else the machine's available parallelism.
pub fn sweep_threads() -> usize {
    crate::env::env_threads_or_cores("CCMATIC_SWEEP_THREADS")
}

/// How to run a sweep (see the module docs for the two strategies).
#[derive(Debug)]
pub struct SweepConfig {
    /// Worker-pool size for the cold (parallel) strategy; ignored when
    /// warm-starting.
    pub threads: usize,
    /// Run sequentially, carrying a [`WarmStart`] between points.
    pub warm_start: bool,
    /// Persistent certificate-backed result cache consulted (and
    /// populated) per point.
    pub cache: Option<ResultCache>,
    /// Wall budget for the *whole sweep*; each point's own deadline is
    /// clamped to what remains of this.
    pub sweep_wall: Option<Duration>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { threads: sweep_threads(), warm_start: true, cache: None, sweep_wall: None }
    }
}

/// What [`sweep_with_config`] produced.
#[derive(Debug)]
pub struct SweepReport {
    /// One row per input value, in input order.
    pub rows: Vec<SweepRow>,
    /// True when any point was budget-truncated or skipped because the
    /// sweep-level wall ran out.
    pub budget_exceeded: bool,
    /// Aggregated cache counters (all zero when no cache was attached).
    pub cache_stats: CacheStats,
}

/// A placeholder row for a point the sweep deadline never let start.
fn skipped_result() -> EnumerateResult {
    EnumerateResult {
        solutions: Vec::new(),
        complete: false,
        stats: Stats::default(),
        solver_probes: 0,
    }
}

/// Clamp `opts`' wall budget to what remains before `sweep_deadline`.
/// Returns false — skip the point — when nothing remains.
fn clamp_to_sweep(opts: &mut SynthOptions, sweep_deadline: Option<Instant>) -> bool {
    if let Some(dl) = sweep_deadline {
        let left = dl.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return false;
        }
        opts.budget.max_wall = opts.budget.max_wall.min(left);
    }
    true
}

fn fold_cache_stats(stats: &mut CacheStats, cfg_has_cache: bool, out: &WarmEnumeration) {
    if !cfg_has_cache {
        return;
    }
    if out.from_cache {
        stats.hits += 1;
        stats.cert_ms += out.result.stats.cache_cert_ms;
    } else if out.cache_rejected.is_some() {
        stats.rejected += 1;
    } else {
        stats.misses += 1;
    }
    if out.stored {
        stats.stores += 1;
    }
}

/// Run a sweep under an explicit [`SweepConfig`].
pub fn sweep_with_config<F>(
    base: &SynthOptions,
    values: &[Rat],
    set: F,
    cfg: &SweepConfig,
) -> SweepReport
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    let sweep_deadline = cfg.sweep_wall.map(|w| Instant::now() + w);
    if cfg.warm_start {
        sweep_sequential_warm(base, values, &set, cfg, sweep_deadline)
    } else {
        sweep_parallel_cold(base, values, &set, cfg, sweep_deadline)
    }
}

/// The warm strategy: input order, carrying each point's facts forward.
fn sweep_sequential_warm<F>(
    base: &SynthOptions,
    values: &[Rat],
    set: &F,
    cfg: &SweepConfig,
    sweep_deadline: Option<Instant>,
) -> SweepReport
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    let mut rows = Vec::with_capacity(values.len());
    let mut budget_exceeded = false;
    let mut cache_stats = CacheStats::default();
    let mut carry: Option<WarmStart> = None;
    for v in values {
        let mut opts = base.clone();
        set(&mut opts.thresholds, v);
        if !clamp_to_sweep(&mut opts, sweep_deadline) {
            budget_exceeded = true;
            rows.push(SweepRow { thresholds: opts.thresholds.clone(), result: skipped_result() });
            continue;
        }
        let warm = carry.take().filter(|w| !w.is_empty());
        let out = enumerate_all_with(&opts, warm.as_ref(), cfg.cache.as_ref());
        fold_cache_stats(&mut cache_stats, cfg.cache.is_some(), &out);
        if !out.result.complete {
            budget_exceeded = true;
        }
        carry = Some(out.carry);
        rows.push(SweepRow { thresholds: opts.thresholds.clone(), result: out.result });
    }
    SweepReport { rows, budget_exceeded, cache_stats }
}

/// The cold strategy: the original parallel fan-out, plus sweep-deadline
/// clamping at dispatch time and optional cache consultation per point.
fn sweep_parallel_cold<F>(
    base: &SynthOptions,
    values: &[Rat],
    set: &F,
    cfg: &SweepConfig,
    sweep_deadline: Option<Instant>,
) -> SweepReport
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    let n = values.len();
    let workers = cfg.threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut rows: Vec<Option<SweepRow>> = (0..n).map(|_| None).collect();
    let mut budget_exceeded = false;
    let mut cache_stats = CacheStats::default();
    let (tx, rx) = mpsc::channel::<(usize, Thresholds, Option<WarmEnumeration>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let cache = cfg.cache.as_ref();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut opts = base.clone();
                set(&mut opts.thresholds, &values[i]);
                let out = if clamp_to_sweep(&mut opts, sweep_deadline) {
                    Some(enumerate_all_with(&opts, None, cache))
                } else {
                    None
                };
                if tx.send((i, opts.thresholds, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, thresholds, out) in rx {
            let result = match out {
                Some(out) => {
                    fold_cache_stats(&mut cache_stats, cfg.cache.is_some(), &out);
                    if !out.result.complete {
                        budget_exceeded = true;
                    }
                    out.result
                }
                None => {
                    budget_exceeded = true;
                    skipped_result()
                }
            };
            rows[i] = Some(SweepRow { thresholds, result });
        }
    });
    let rows =
        rows.into_iter().map(|r| r.expect("every index was dispatched exactly once")).collect();
    SweepReport { rows, budget_exceeded, cache_stats }
}

/// Enumerate the solution space once per threshold value, with `set`
/// writing each value into the run's thresholds. Rows come back in the
/// order of `values` regardless of which worker finished first.
pub fn sweep_with<F>(base: &SynthOptions, values: &[Rat], set: F) -> Vec<SweepRow>
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    sweep_with_threads(base, values, set, sweep_threads())
}

/// [`sweep_with`] with an explicit worker count (exposed so tests and
/// benches can pin the pool size).
pub fn sweep_with_threads<F>(
    base: &SynthOptions,
    values: &[Rat],
    set: F,
    threads: usize,
) -> Vec<SweepRow>
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    let cfg = SweepConfig { threads, warm_start: false, cache: None, sweep_wall: None };
    sweep_with_config(base, values, set, &cfg).rows
}

/// Enumerate the solution space at each utilization threshold (delay held
/// fixed). The paper's §4: at ≤4×RTT delay, ≥65 % utilization leaves 2
/// CCAs and ≥70 % leaves only Equation (iii).
pub fn sweep_utilization(base: &SynthOptions, utils: &[Rat]) -> Vec<SweepRow> {
    sweep_with(base, utils, |th, u| th.util = u.clone())
}

/// Enumerate the solution space at each delay threshold (utilization held
/// fixed). The paper's §4: at ≥50 % utilization there are 245 solutions at
/// ≤8×RTT, 9 at ≤3.6×RTT, and none at ≤3×RTT.
pub fn sweep_delay(base: &SynthOptions, delays: &[Rat]) -> Vec<SweepRow> {
    sweep_with(base, delays, |th, d| th.delay = d.clone())
}

/// Render sweep rows as a Markdown table (used by the bench binaries and
/// EXPERIMENTS.md).
pub fn render_table(rows: &[SweepRow]) -> String {
    let mut out = String::from("| util ≥ | delay ≤ | solutions | complete |\n|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            row.thresholds.util,
            row.thresholds.delay,
            row.result.solutions.len(),
            if row.result.complete { "yes" } else { "budget" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::OptMode;
    use crate::template::{CoeffDomain, TemplateShape};
    use ccac_model::NetConfig;
    use ccmatic_num::{int, rat};
    use std::time::Duration;

    fn tiny_base() -> SynthOptions {
        SynthOptions {
            shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 5,
                history: 3,
                link_rate: ccmatic_num::Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: ccmatic_cegis::Budget {
                max_iterations: 600,
                max_wall: Duration::from_secs(300),
            },
            wce_precision: rat(1, 2),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: crate::synth::DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
            theory_sync: true,
        }
    }

    #[test]
    fn tighter_delay_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_delay(&base, &[int(8), int(4), int(2)]);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[0].result.solutions.len() >= w[1].result.solutions.len(),
                "solution count must shrink as the delay bound tightens"
            );
        }
        let table = render_table(&rows);
        assert!(table.contains("| solutions |") || table.contains("solutions"));
    }

    #[test]
    fn tighter_utilization_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_utilization(&base, &[rat(1, 2), rat(7, 10)]);
        assert!(
            rows[0].result.solutions.len() >= rows[1].result.solutions.len(),
            "solution count must shrink as the utilization target rises"
        );
    }

    #[test]
    fn zero_sweep_budget_skips_every_point_and_reports_it() {
        let base = tiny_base();
        let set = |th: &mut Thresholds, d: &Rat| th.delay = d.clone();
        for warm_start in [true, false] {
            let cfg = SweepConfig {
                threads: 2,
                warm_start,
                cache: None,
                sweep_wall: Some(Duration::ZERO),
            };
            let rep = sweep_with_config(&base, &[int(8), int(4)], set, &cfg);
            assert!(rep.budget_exceeded, "warm={warm_start}: exhausted budget must be reported");
            assert_eq!(rep.rows.len(), 2);
            for r in &rep.rows {
                assert!(!r.result.complete);
                assert!(r.result.solutions.is_empty());
                assert_eq!(r.result.solver_probes, 0, "skipped points must not touch solvers");
            }
        }
    }

    #[test]
    fn warm_sweep_matches_cold_rows() {
        let base = tiny_base();
        let values = [int(8), int(4), int(2)];
        let set = |th: &mut Thresholds, d: &Rat| th.delay = d.clone();
        let cold = sweep_with_threads(&base, &values, set, 1);
        let cfg = SweepConfig { threads: 1, warm_start: true, cache: None, sweep_wall: None };
        let warm = sweep_with_config(&base, &values, set, &cfg);
        assert!(!warm.budget_exceeded);
        for (i, (c, w)) in cold.iter().zip(&warm.rows).enumerate() {
            assert_eq!(c.result.solutions, w.result.solutions, "row {i}: warm ≠ cold");
            assert_eq!(c.result.complete, w.result.complete, "row {i}: completeness differs");
        }
        let seeded: u64 = warm.rows.iter().map(|r| r.result.stats.warm_traces_seeded).sum();
        let confirmed: u64 =
            warm.rows.iter().map(|r| r.result.stats.warm_solutions_confirmed).sum();
        assert!(seeded + confirmed > 0, "a loose→tight sweep must reuse something");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let base = tiny_base();
        let values = [int(8), int(4), int(3), int(2)];
        let set = |th: &mut Thresholds, d: &Rat| th.delay = d.clone();
        let serial = sweep_with_threads(&base, &values, set, 1);
        let parallel = sweep_with_threads(&base, &values, set, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.thresholds.delay, b.thresholds.delay, "row {i}: order differs");
            assert_eq!(a.thresholds.delay, values[i], "row {i}: not in input order");
            assert_eq!(
                a.result.solutions, b.result.solutions,
                "row {i}: solution set depends on thread count"
            );
            assert_eq!(a.result.complete, b.result.complete, "row {i}: completeness differs");
        }
    }
}
