//! Threshold sweeps over the solution space (§4: how the solution count
//! moves as the utilization and delay targets change).
//!
//! Each threshold value is an independent full enumeration, so the sweep
//! fans the per-threshold runs out across a `std::thread::scope` worker
//! pool. Every worker owns its own generator/verifier pair (built inside
//! `enumerate_all`), so no solver state is shared; results are collected in
//! input order, making the output deterministic and independent of both the
//! thread count and the scheduling order. The pool size follows
//! `std::thread::available_parallelism`, overridable with the
//! `CCMATIC_SWEEP_THREADS` environment variable.

use crate::enumerate::{enumerate_all, EnumerateResult};
use crate::synth::SynthOptions;
use ccac_model::Thresholds;
use ccmatic_num::Rat;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One row of a sweep report.
#[derive(Debug)]
pub struct SweepRow {
    /// The thresholds used.
    pub thresholds: Thresholds,
    /// The enumeration outcome at those thresholds.
    pub result: EnumerateResult,
}

/// Worker-pool size: `CCMATIC_SWEEP_THREADS` if set and valid (unparsable
/// values warn once on stderr), else the machine's available parallelism.
pub fn sweep_threads() -> usize {
    crate::env::env_threads_or_cores("CCMATIC_SWEEP_THREADS")
}

/// Enumerate the solution space once per threshold value, with `set`
/// writing each value into the run's thresholds. Rows come back in the
/// order of `values` regardless of which worker finished first.
pub fn sweep_with<F>(base: &SynthOptions, values: &[Rat], set: F) -> Vec<SweepRow>
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    sweep_with_threads(base, values, set, sweep_threads())
}

/// [`sweep_with`] with an explicit worker count (exposed so tests and
/// benches can pin the pool size).
pub fn sweep_with_threads<F>(
    base: &SynthOptions,
    values: &[Rat],
    set: F,
    threads: usize,
) -> Vec<SweepRow>
where
    F: Fn(&mut Thresholds, &Rat) + Sync,
{
    let n = values.len();
    let workers = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut rows: Vec<Option<SweepRow>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, SweepRow)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let set = &set;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut opts = base.clone();
                set(&mut opts.thresholds, &values[i]);
                let row =
                    SweepRow { thresholds: opts.thresholds.clone(), result: enumerate_all(&opts) };
                if tx.send((i, row)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, row) in rx {
            rows[i] = Some(row);
        }
    });
    rows.into_iter().map(|r| r.expect("every index was dispatched exactly once")).collect()
}

/// Enumerate the solution space at each utilization threshold (delay held
/// fixed). The paper's §4: at ≤4×RTT delay, ≥65 % utilization leaves 2
/// CCAs and ≥70 % leaves only Equation (iii).
pub fn sweep_utilization(base: &SynthOptions, utils: &[Rat]) -> Vec<SweepRow> {
    sweep_with(base, utils, |th, u| th.util = u.clone())
}

/// Enumerate the solution space at each delay threshold (utilization held
/// fixed). The paper's §4: at ≥50 % utilization there are 245 solutions at
/// ≤8×RTT, 9 at ≤3.6×RTT, and none at ≤3×RTT.
pub fn sweep_delay(base: &SynthOptions, delays: &[Rat]) -> Vec<SweepRow> {
    sweep_with(base, delays, |th, d| th.delay = d.clone())
}

/// Render sweep rows as a Markdown table (used by the bench binaries and
/// EXPERIMENTS.md).
pub fn render_table(rows: &[SweepRow]) -> String {
    let mut out = String::from("| util ≥ | delay ≤ | solutions | complete |\n|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            row.thresholds.util,
            row.thresholds.delay,
            row.result.solutions.len(),
            if row.result.complete { "yes" } else { "budget" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::OptMode;
    use crate::template::{CoeffDomain, TemplateShape};
    use ccac_model::NetConfig;
    use ccmatic_num::{int, rat};
    use std::time::Duration;

    fn tiny_base() -> SynthOptions {
        SynthOptions {
            shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 5,
                history: 3,
                link_rate: ccmatic_num::Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: ccmatic_cegis::Budget {
                max_iterations: 600,
                max_wall: Duration::from_secs(300),
            },
            wce_precision: rat(1, 2),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: crate::synth::DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
        }
    }

    #[test]
    fn tighter_delay_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_delay(&base, &[int(8), int(4), int(2)]);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[0].result.solutions.len() >= w[1].result.solutions.len(),
                "solution count must shrink as the delay bound tightens"
            );
        }
        let table = render_table(&rows);
        assert!(table.contains("| solutions |") || table.contains("solutions"));
    }

    #[test]
    fn tighter_utilization_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_utilization(&base, &[rat(1, 2), rat(7, 10)]);
        assert!(
            rows[0].result.solutions.len() >= rows[1].result.solutions.len(),
            "solution count must shrink as the utilization target rises"
        );
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let base = tiny_base();
        let values = [int(8), int(4), int(3), int(2)];
        let set = |th: &mut Thresholds, d: &Rat| th.delay = d.clone();
        let serial = sweep_with_threads(&base, &values, set, 1);
        let parallel = sweep_with_threads(&base, &values, set, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.thresholds.delay, b.thresholds.delay, "row {i}: order differs");
            assert_eq!(a.thresholds.delay, values[i], "row {i}: not in input order");
            assert_eq!(
                a.result.solutions, b.result.solutions,
                "row {i}: solution set depends on thread count"
            );
            assert_eq!(a.result.complete, b.result.complete, "row {i}: completeness differs");
        }
    }
}
