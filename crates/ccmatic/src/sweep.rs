//! Threshold sweeps over the solution space (§4: how the solution count
//! moves as the utilization and delay targets change).

use crate::enumerate::{enumerate_all, EnumerateResult};
use crate::synth::SynthOptions;
use ccac_model::Thresholds;
use ccmatic_num::Rat;

/// One row of a sweep report.
#[derive(Debug)]
pub struct SweepRow {
    /// The thresholds used.
    pub thresholds: Thresholds,
    /// The enumeration outcome at those thresholds.
    pub result: EnumerateResult,
}

/// Enumerate the solution space at each utilization threshold (delay held
/// fixed). The paper's §4: at ≤4×RTT delay, ≥65 % utilization leaves 2
/// CCAs and ≥70 % leaves only Equation (iii).
pub fn sweep_utilization(base: &SynthOptions, utils: &[Rat]) -> Vec<SweepRow> {
    utils
        .iter()
        .map(|u| {
            let mut opts = base.clone();
            opts.thresholds.util = u.clone();
            SweepRow { thresholds: opts.thresholds.clone(), result: enumerate_all(&opts) }
        })
        .collect()
}

/// Enumerate the solution space at each delay threshold (utilization held
/// fixed). The paper's §4: at ≥50 % utilization there are 245 solutions at
/// ≤8×RTT, 9 at ≤3.6×RTT, and none at ≤3×RTT.
pub fn sweep_delay(base: &SynthOptions, delays: &[Rat]) -> Vec<SweepRow> {
    delays
        .iter()
        .map(|d| {
            let mut opts = base.clone();
            opts.thresholds.delay = d.clone();
            SweepRow { thresholds: opts.thresholds.clone(), result: enumerate_all(&opts) }
        })
        .collect()
}

/// Render sweep rows as a Markdown table (used by the bench binaries and
/// EXPERIMENTS.md).
pub fn render_table(rows: &[SweepRow]) -> String {
    let mut out = String::from("| util ≥ | delay ≤ | solutions | complete |\n|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            row.thresholds.util,
            row.thresholds.delay,
            row.result.solutions.len(),
            if row.result.complete { "yes" } else { "budget" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::OptMode;
    use crate::template::{CoeffDomain, TemplateShape};
    use ccac_model::NetConfig;
    use ccmatic_num::{int, rat};
    use std::time::Duration;

    fn tiny_base() -> SynthOptions {
        SynthOptions {
            shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig { horizon: 5, history: 3, link_rate: ccmatic_num::Rat::one(), jitter: 1, buffer: None },
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: ccmatic_cegis::Budget {
                max_iterations: 600,
                max_wall: Duration::from_secs(300),
            },
            wce_precision: rat(1, 2),
        }
    }

    #[test]
    fn tighter_delay_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_delay(&base, &[int(8), int(4), int(2)]);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(
                w[0].result.solutions.len() >= w[1].result.solutions.len(),
                "solution count must shrink as the delay bound tightens"
            );
        }
        let table = render_table(&rows);
        assert!(table.contains("| solutions |") || table.contains("solutions"));
    }

    #[test]
    fn tighter_utilization_never_adds_solutions() {
        let base = tiny_base();
        let rows = sweep_utilization(&base, &[rat(1, 2), rat(7, 10)]);
        assert!(
            rows[0].result.solutions.len() >= rows[1].result.solutions.len(),
            "solution count must shrink as the utilization target rises"
        );
    }
}
