//! Exhaustive solution enumeration (§4 "Extensions": "we ask CCmatic to
//! produce all possible solutions, implying that there are no other
//! solutions in our search space").
//!
//! After each certified solution the exact coefficient assignment is
//! blocked in the generator and the CEGIS loop continues; when the
//! generator reports unsat, the collected set is provably exhaustive.

use crate::synth::{build_loop, SynthOptions};
use crate::template::CcaSpec;
use ccmatic_cegis::{run, Budget, Outcome, Stats};

/// Result of [`enumerate_all`].
#[derive(Debug)]
pub struct EnumerateResult {
    /// Every CCA in the search space satisfying the property (exhaustive
    /// iff `complete`).
    pub solutions: Vec<CcaSpec>,
    /// True when the space was provably exhausted; false when a budget ran
    /// out first.
    pub complete: bool,
    /// Accumulated loop statistics across all solutions.
    pub stats: Stats,
    /// Underlying verifier solver probes (exceeds verifier calls when WCE
    /// binary-searches).
    pub solver_probes: u64,
}

/// Enumerate every solution in the search space.
pub fn enumerate_all(opts: &SynthOptions) -> EnumerateResult {
    let (mut generator, mut verifier) = build_loop(opts);
    let mut solutions = Vec::new();
    let mut stats = Stats::default();
    let mut remaining = opts.budget.max_iterations;
    let deadline = std::time::Instant::now() + opts.budget.max_wall;
    loop {
        let budget = Budget {
            max_iterations: remaining,
            max_wall: deadline.saturating_duration_since(std::time::Instant::now()),
        };
        if budget.max_iterations == 0 || budget.max_wall.is_zero() {
            let solver_probes = verifier.inner.solver_probes;
            return EnumerateResult { solutions, complete: false, stats, solver_probes };
        }
        let result = run(&mut generator, &mut verifier, &budget);
        stats.iterations += result.stats.iterations;
        stats.generator_time += result.stats.generator_time;
        stats.verifier_time += result.stats.verifier_time;
        stats.verifier_calls += result.stats.verifier_calls;
        stats.wall += result.stats.wall;
        remaining = remaining.saturating_sub(result.stats.iterations);
        match result.outcome {
            Outcome::Solution(spec) => {
                generator.inner.block(&spec);
                solutions.push(spec);
            }
            Outcome::NoSolution => {
                let solver_probes = verifier.inner.solver_probes;
                return EnumerateResult { solutions, complete: true, stats, solver_probes };
            }
            Outcome::BudgetExhausted => {
                let solver_probes = verifier.inner.solver_probes;
                return EnumerateResult { solutions, complete: false, stats, solver_probes };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::OptMode;
    use crate::template::{CoeffDomain, TemplateShape};
    use crate::verifier::{CcaVerifier, VerifyConfig};
    use ccac_model::{NetConfig, Thresholds};
    use ccmatic_num::Rat;
    use std::time::Duration;

    #[test]
    fn enumeration_is_sound_and_terminates_on_tiny_space() {
        // Tiny space: lookback 2, domain {−1,0,1} → 27 candidates. Every
        // returned solution must re-verify; completeness must be reported.
        let opts = SynthOptions {
            shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 5,
                history: 3,
                link_rate: Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: ccmatic_cegis::Budget {
                max_iterations: 600,
                max_wall: Duration::from_secs(240),
            },
            wce_precision: Rat::new(1i64.into(), 2i64.into()),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: crate::synth::DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
        };
        let result = enumerate_all(&opts);
        assert!(result.complete, "tiny space must be exhausted within budget");
        assert!(result.solutions.len() <= 27);
        let mut v = CcaVerifier::new(VerifyConfig {
            net: opts.net.clone(),
            thresholds: opts.thresholds.clone(),
            worst_case: false,
            wce_precision: opts.wce_precision.clone(),
            incremental: true,
            certify: false,
            search: ccmatic_smt::SearchConfig::default(),
        });
        for s in &result.solutions {
            assert!(v.verify(s).is_ok(), "enumerated non-solution {s}");
        }
        // No duplicates.
        for (i, a) in result.solutions.iter().enumerate() {
            for b in &result.solutions[i + 1..] {
                assert_ne!(a, b, "duplicate solution");
            }
        }
    }
}
