//! Exhaustive solution enumeration (§4 "Extensions": "we ask CCmatic to
//! produce all possible solutions, implying that there are no other
//! solutions in our search space").
//!
//! After each certified solution the exact coefficient assignment is
//! blocked in the generator and the CEGIS loop continues; when the
//! generator reports unsat, the collected set is provably exhaustive.
//!
//! # Warm-starting (DESIGN.md §12)
//!
//! [`enumerate_all_with`] layers two kinds of reuse over the cold loop,
//! both *locally re-validated* so soundness never rests on the carried
//! facts being right:
//!
//! * **L1 — a [`WarmStart`] carried from a neighboring sweep point.** Each
//!   carried (refuted candidate, trace) pair is re-checked by
//!   [`crate::replay::TraceReplay::refutes`] under the *current*
//!   thresholds before its constraint is asserted; pairs that fail the
//!   re-check only join the replay prefilter, where every later use is
//!   individually gated by the same re-check. The neighbor's solutions are
//!   pre-verified first: a Pass admits the solution and blocks it (no
//!   generator work at all), a Fail yields a fresh counterexample for this
//!   point. The generator's final unsat claim is unchanged by any of this
//!   — warm and cold runs provably enumerate the same set.
//! * **L2 — the persistent [`ResultCache`].** A validated hit (exact
//!   canonical-fingerprint match + every stored certificate re-checked by
//!   the independent checker) answers the whole enumeration with zero
//!   solver probes. A completed solve with a cache attached runs with
//!   certification forced on and stores its solution set, per-solution
//!   Pass certificates, and the exhaustion certificate.

use crate::cache::{Lookup, ResultCache};
use crate::synth::{build_loop, make_replay, SynthOptions};
use crate::template::CcaSpec;
use ccac_model::Trace;
use ccmatic_cegis::{run_with_replay_seeded, Budget, Generator, Outcome, Stats, Verdict, Verifier};
use ccmatic_proof::UnsatCertificate;
use std::time::Instant;

/// Result of [`enumerate_all`].
#[derive(Debug)]
pub struct EnumerateResult {
    /// Every CCA in the search space satisfying the property (exhaustive
    /// iff `complete`).
    pub solutions: Vec<CcaSpec>,
    /// True when the space was provably exhausted; false when a budget ran
    /// out first.
    pub complete: bool,
    /// Accumulated loop statistics across all solutions.
    pub stats: Stats,
    /// Underlying verifier solver probes (exceeds verifier calls when WCE
    /// binary-searches).
    pub solver_probes: u64,
}

/// Facts carried from one completed enumeration into a neighboring one
/// (same network, same template, different thresholds). Nothing in here is
/// trusted: see the module docs for the re-validation discipline.
#[derive(Clone, Debug, Default)]
pub struct WarmStart {
    /// (refuted candidate, counterexample trace) pairs, in learn order.
    pub refuted: Vec<(CcaSpec, Trace)>,
    /// The neighbor's full solution set.
    pub solutions: Vec<CcaSpec>,
}

impl WarmStart {
    /// Whether there is anything to carry.
    pub fn is_empty(&self) -> bool {
        self.refuted.is_empty() && self.solutions.is_empty()
    }
}

/// [`enumerate_all_with`]'s result: the enumeration plus the carry-over
/// for the next sweep point.
#[derive(Debug)]
pub struct WarmEnumeration {
    /// The enumeration outcome.
    pub result: EnumerateResult,
    /// Warm-start facts for the next neighboring problem.
    pub carry: WarmStart,
    /// Whether the answer came from a validated cache entry (zero solver
    /// probes).
    pub from_cache: bool,
    /// Why a present cache entry was rejected, if one was.
    pub cache_rejected: Option<String>,
    /// Whether this run wrote a new cache entry.
    pub stored: bool,
}

/// Enumerate every solution in the search space (cold, uncached).
pub fn enumerate_all(opts: &SynthOptions) -> EnumerateResult {
    enumerate_all_with(opts, None, None).result
}

/// Enumerate with optional warm-start carry-over and/or a persistent
/// result cache (either may be `None`; both `None` is exactly
/// [`enumerate_all`]).
pub fn enumerate_all_with(
    opts: &SynthOptions,
    warm: Option<&WarmStart>,
    cache: Option<&ResultCache>,
) -> WarmEnumeration {
    let t0 = Instant::now();
    let mut stats = Stats::default();
    let mut cache_rejected = None;

    // L2 first: a validated hit answers everything in checker time.
    if let Some(cache) = cache {
        match cache.lookup(opts) {
            Lookup::Hit(hit) => {
                stats.cache_hits = 1;
                stats.cache_cert_ms = hit.cert_ms;
                stats.wall = t0.elapsed();
                let solutions = hit.solutions;
                return WarmEnumeration {
                    carry: WarmStart { refuted: Vec::new(), solutions: solutions.clone() },
                    result: EnumerateResult { solutions, complete: true, stats, solver_probes: 0 },
                    from_cache: true,
                    cache_rejected: None,
                    stored: false,
                };
            }
            Lookup::Rejected(why) => cache_rejected = Some(why),
            Lookup::Miss => {}
        }
    }

    // A solve that should populate the cache must produce certificates.
    let run_opts;
    let opts_run = if cache.is_some() && !opts.certify {
        run_opts = SynthOptions { certify: true, ..opts.clone() };
        &run_opts
    } else {
        opts
    };

    let (mut generator, mut verifier) = build_loop(opts_run);
    let replayer = make_replay(opts_run);
    let mut solutions: Vec<CcaSpec> = Vec::new();
    let mut pass_certs: Vec<UnsatCertificate> = Vec::new();
    let mut remaining = opts.budget.max_iterations;
    let deadline = t0 + opts.budget.max_wall;

    // L1: seed carried facts, re-validating every one at *this* point's
    // thresholds. Traces that no longer refute their candidate are demoted
    // to the replay prefilter (each later use is re-gated individually).
    let mut replay_seeds: Vec<Trace> = Vec::new();
    if let Some(warm) = warm {
        let g0 = Instant::now();
        for (refuted, trace) in &warm.refuted {
            if replayer.refutes(refuted, trace) {
                generator.learn(refuted, trace);
                stats.warm_traces_seeded += 1;
            } else {
                stats.warm_traces_rejected += 1;
                replay_seeds.push(trace.clone());
            }
        }
        stats.generator_time += g0.elapsed();
        // Pre-verify the neighbor's solutions: monotone thresholds nest
        // solution sets, so most either re-verify (admitted + blocked, no
        // generator work) or yield a fresh counterexample for this point.
        for sol in &warm.solutions {
            if Instant::now() >= deadline {
                break;
            }
            let v0 = Instant::now();
            let verdict = verifier.verify_interruptible(sol, Some(deadline), None);
            stats.verifier_time += v0.elapsed();
            stats.verifier_calls += 1;
            match verdict {
                Verdict::Pass => {
                    stats.warm_solutions_confirmed += 1;
                    if let Some(cert) = verifier.inner.take_last_pass_cert() {
                        pass_certs.push(cert);
                    }
                    generator.inner.block(sol);
                    solutions.push(sol.clone());
                }
                Verdict::Fail(cex) => {
                    let g1 = Instant::now();
                    generator.learn(sol, &cex);
                    stats.generator_time += g1.elapsed();
                }
                Verdict::Timeout => break,
            }
        }
    }

    let mut exhaustion: Option<UnsatCertificate> = None;
    let complete = loop {
        let budget = Budget {
            max_iterations: remaining,
            max_wall: deadline.saturating_duration_since(Instant::now()),
        };
        if budget.max_iterations == 0 || budget.max_wall.is_zero() {
            break false;
        }
        let replay = |c: &CcaSpec, cex: &Trace| replayer.refutes(c, cex);
        let result = run_with_replay_seeded(
            &mut generator,
            &mut verifier,
            replay,
            &budget,
            replay_seeds.clone(),
        );
        stats.iterations += result.stats.iterations;
        stats.generator_time += result.stats.generator_time;
        stats.verifier_time += result.stats.verifier_time;
        stats.verifier_calls += result.stats.verifier_calls;
        stats.replay_hits += result.stats.replay_hits;
        remaining = remaining.saturating_sub(result.stats.iterations);
        match result.outcome {
            Outcome::Solution(spec) => {
                if let Some(cert) = verifier.inner.take_last_pass_cert() {
                    pass_certs.push(cert);
                }
                generator.inner.block(&spec);
                solutions.push(spec);
            }
            Outcome::NoSolution => {
                exhaustion = generator.inner.take_exhaustion_cert();
                break true;
            }
            Outcome::BudgetExhausted => break false,
        }
    };

    // Populate the cache: complete outcomes with their full proof
    // complement only.
    let mut stored = false;
    if let (Some(cache), true) = (cache, complete) {
        if let Some(exhaustion) = &exhaustion {
            if pass_certs.len() == solutions.len() {
                stored = cache.store(opts, &solutions, &pass_certs, exhaustion).is_ok();
            }
        }
    }

    stats.regions_pruned = generator.inner.regions_pruned;
    stats.cex_subsumed = generator.cex_subsumed;
    stats.wall = t0.elapsed();
    let solver_probes = verifier.inner.solver_probes;
    WarmEnumeration {
        carry: WarmStart { refuted: generator.take_refuted_log(), solutions: solutions.clone() },
        result: EnumerateResult { solutions, complete, stats, solver_probes },
        from_cache: false,
        cache_rejected,
        stored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::OptMode;
    use crate::template::{CoeffDomain, TemplateShape};
    use crate::verifier::{CcaVerifier, VerifyConfig};
    use ccac_model::{NetConfig, Thresholds};
    use ccmatic_num::Rat;
    use std::time::Duration;

    #[test]
    fn enumeration_is_sound_and_terminates_on_tiny_space() {
        // Tiny space: lookback 2, domain {−1,0,1} → 27 candidates. Every
        // returned solution must re-verify; completeness must be reported.
        let opts = SynthOptions {
            shape: TemplateShape { lookback: 2, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 5,
                history: 3,
                link_rate: Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: ccmatic_cegis::Budget {
                max_iterations: 600,
                max_wall: Duration::from_secs(240),
            },
            wce_precision: Rat::new(1i64.into(), 2i64.into()),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: crate::synth::DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
            theory_sync: true,
        };
        let result = enumerate_all(&opts);
        assert!(result.complete, "tiny space must be exhausted within budget");
        assert!(result.solutions.len() <= 27);
        let mut v = CcaVerifier::new(VerifyConfig {
            net: opts.net.clone(),
            thresholds: opts.thresholds.clone(),
            worst_case: false,
            wce_precision: opts.wce_precision.clone(),
            incremental: true,
            certify: false,
            search: ccmatic_smt::SearchConfig::default(),
            theory_sync: true,
        });
        for s in &result.solutions {
            assert!(v.verify(s).is_ok(), "enumerated non-solution {s}");
        }
        // No duplicates.
        for (i, a) in result.solutions.iter().enumerate() {
            for b in &result.solutions[i + 1..] {
                assert_ne!(a, b, "duplicate solution");
            }
        }
    }
}
