//! Exact-rational lifting of simulator schedules into verifier traces.
//!
//! [`lift_schedule`] executes a candidate [`CcaSpec`] against an explicit
//! per-step link schedule (band positions λ and waste fractions ω, the
//! exact-arithmetic twin of [`ccmatic_simnet::TableSchedule`]) and emits a
//! [`Trace`] in the verifier's shape: `t ∈ [−h, T]`, with simulator round
//! `u` landing at model time `t = u + 1 − h` and the `t = −h` row carrying
//! the initial conditions (`S = W = 0`, `A = ` initial backlog).
//!
//! Two conventions differ between the behavioural simulator and the SMT
//! model, and this module follows the **model** on both so that lifted
//! traces replay verbatim through [`TraceReplay`](crate::replay):
//!
//! * the CCA's freshest ACK sample when choosing `cwnd(t)` is `S(t−2)`
//!   (the model's one-unit ACK delay: `ack(t) = S(t−1)`, sampled at
//!   `t−1`), not the simulator's `S(t−1)`;
//! * lookback past the trace start reads the model's anchors — `S` is 0
//!   at and before `t = −h` — not the simulator's saturate-at-oldest.
//!
//! The lifted trace is *constructed* feasible for eager waste (ω = 1):
//! the link step keeps `S` inside its band and waste only grows against
//! surplus tokens. Partial waste (ω < 1) can push a *later* service floor
//! above the arrival curve, which the model forbids, so every lifted trace
//! must pass [`ccac_model::check_trace`] before being treated as a model
//! behaviour — [`lift_checked`] bundles the two.

use crate::template::CcaSpec;
use ccac_model::{check_trace, NetConfig, Trace};
use ccmatic_num::Rat;

/// The schedule and initial conditions to lift under.
#[derive(Clone, Debug)]
pub struct LiftConfig {
    /// Network shape; must be lossless (`buffer: None`) and have history
    /// deep enough for the candidate (`beta.len() < history`,
    /// `alpha.len() < history`).
    pub net: NetConfig,
    /// Band position λ ∈ [0, 1] per simulator round (0-based; the last
    /// entry holds beyond the table, 1 — the ideal link — if empty).
    pub lambdas: Vec<Rat>,
    /// Waste fraction ω ∈ [0, 1] per round (last entry holds; 1 — eager
    /// waste — if empty).
    pub omegas: Vec<Rat>,
    /// `A(−h)`: adversarial initial backlog, ≥ 0.
    pub initial_backlog: Rat,
    /// `cwnd(−h)` and the round-0 floor `cwnd(0…) ≥` this before history
    /// exists (mirrors `SimConfig::initial_cwnd`).
    pub initial_cwnd: Rat,
}

impl LiftConfig {
    /// Ideal eager-waste lift: λ = 1, ω = 1, zero backlog, unit cwnd.
    pub fn ideal(net: NetConfig) -> Self {
        LiftConfig {
            net,
            lambdas: Vec::new(),
            omegas: Vec::new(),
            initial_backlog: Rat::zero(),
            initial_cwnd: Rat::one(),
        }
    }
}

fn table_at(table: &[Rat], u: usize) -> Rat {
    let v = table.get(u).or_else(|| table.last()).cloned().unwrap_or_else(Rat::one);
    v.max(Rat::zero()).min(Rat::one())
}

/// Execute `spec` on the schedule in exact rational arithmetic and return
/// the verifier-shaped trace. The result is a *claimed* model behaviour;
/// callers must gate it through [`ccac_model::check_trace`] (partial waste
/// can break the lagged service floor) — see [`lift_checked`].
pub fn lift_schedule(spec: &CcaSpec, cfg: &LiftConfig) -> Trace {
    let h = cfg.net.history;
    let rounds = h + cfg.net.horizon;
    assert!(cfg.net.buffer.is_none(), "lifting is defined for the lossless scope only");
    assert!(spec.beta.len() < h, "β lookback {} needs history > it", spec.beta.len());
    assert!(spec.alpha.len() < h, "α lookback {} needs history > it", spec.alpha.len());
    assert!(h <= 16, "history {h} exceeds the simulator's 16-sample window");
    assert!(!cfg.initial_backlog.is_negative(), "A(−h) must be ≥ 0");

    let rate = &cfg.net.link_rate;
    let zero = Rat::zero();
    let mut s_by_round: Vec<Rat> = Vec::with_capacity(rounds);
    let mut cwnd_by_round: Vec<Rat> = Vec::with_capacity(rounds);
    let mut waste_history: Vec<Rat> = vec![Rat::zero()];
    let mut wasted = Rat::zero();
    let mut s_prev = Rat::zero();
    let mut arrivals = cfg.initial_backlog.clone();

    // Row 0 is the model's t_min: the initial conditions.
    let mut a = vec![cfg.initial_backlog.clone()];
    let mut s = vec![Rat::zero()];
    let mut w = vec![Rat::zero()];
    let mut cwnd_col = vec![cfg.initial_cwnd.clone()];

    for u in 0..rounds {
        // Model-template recursion: cwnd(t) = γ + Σᵢ βᵢ·S(t−i−2)
        // + Σᵢ αᵢ·cwnd(t−i−1); lookback past round 0 reads the anchors
        // (S = 0) resp. nothing (cwnd contributes 0 there — the enforced
        // window never reaches it).
        let mut rule = spec.gamma.clone();
        for (i, b) in spec.beta.iter().enumerate() {
            let back = i + 2;
            if back <= u {
                rule = &rule + &(b * &s_by_round[u - back]);
            }
        }
        for (i, al) in spec.alpha.iter().enumerate() {
            let back = i + 1;
            if back <= u {
                rule = &rule + &(al * &cwnd_by_round[u - back]);
            }
        }
        let cwnd = if u == 0 { cfg.initial_cwnd.clone().max(rule) } else { rule };

        // Aggressive cwnd-limited sender.
        arrivals = arrivals.max(&s_prev + &cwnd);

        // Link step (1-based step index, exact twin of `LinkState::step`).
        let t_link = (u + 1) as i64;
        let tokens_now = &(rate * &Rat::from(t_link)) - &wasted;
        let floor = if t_link >= cfg.net.jitter as i64 {
            let lag = t_link - cfg.net.jitter as i64;
            &(rate * &Rat::from(lag)) - &waste_history[lag as usize]
        } else {
            Rat::zero()
        };
        let hi = tokens_now.clone().min(arrivals.clone()).max(s_prev.clone());
        let lo = floor.min(arrivals.clone()).max(s_prev.clone()).min(hi.clone());
        let lambda = table_at(&cfg.lambdas, u);
        let served = &lo + &(&lambda * &(&hi - &lo));
        let surplus = &tokens_now - &arrivals;
        if surplus > zero {
            let omega = table_at(&cfg.omegas, u);
            wasted = &wasted + &(&omega * &surplus);
        }
        waste_history.push(wasted.clone());

        a.push(arrivals.clone());
        s.push(served.clone());
        w.push(wasted.clone());
        cwnd_col.push(cwnd.clone());
        s_by_round.push(served.clone());
        cwnd_by_round.push(cwnd);
        s_prev = served;
    }

    let n = a.len();
    Trace {
        t_min: cfg.net.t_min(),
        t_max: cfg.net.t_max(),
        a,
        s,
        w,
        l: vec![Rat::zero(); n],
        cwnd: cwnd_col,
    }
}

/// [`lift_schedule`] + the authoritative feasibility gate: `Err` means the
/// schedule drove the link outside the model's feasibility band (possible
/// whenever ω < 1) and the trace makes no claim about the model.
pub fn lift_checked(spec: &CcaSpec, cfg: &LiftConfig) -> Result<Trace, String> {
    let trace = lift_schedule(spec, cfg);
    check_trace(&trace, &cfg.net)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::FeasibilityMode;
    use crate::known;
    use crate::replay::TraceReplay;
    use ccac_model::{check_sender_rule, Thresholds};
    use ccmatic_num::{int, rat};

    fn net(history: usize) -> NetConfig {
        NetConfig { horizon: 6, history, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    fn replay(net: &NetConfig) -> TraceReplay {
        TraceReplay::new(net.clone(), Thresholds::default(), FeasibilityMode::RangePruning)
    }

    /// Eager lifts are model-feasible by construction, across schedules.
    #[test]
    fn eager_lifts_always_pass_the_feasibility_gate() {
        let net = net(5);
        let schedules: Vec<Vec<Rat>> = vec![
            vec![],                                                   // ideal
            vec![Rat::zero(), Rat::one()],                            // hold-last burst
            (0..11).map(|u| rat(u % 5, 4).min(Rat::one())).collect(), // ragged
            vec![Rat::zero()],                                        // permanently stalled
        ];
        for spec in [known::rocc(), known::const_cwnd(int(6)), known::const_cwnd(Rat::zero())] {
            for lambdas in &schedules {
                let cfg = LiftConfig {
                    lambdas: lambdas.clone(),
                    initial_backlog: rat(1, 2),
                    ..LiftConfig::ideal(net.clone())
                };
                let trace = lift_schedule(&spec, &cfg);
                check_trace(&trace, &net)
                    .unwrap_or_else(|e| panic!("eager lift of {spec} infeasible: {e}"));
                check_sender_rule(&trace)
                    .unwrap_or_else(|e| panic!("lift of {spec} broke the sender rule: {e}"));
            }
        }
    }

    /// A lifted trace of a *verified* CCA never refutes it — lifting is
    /// sound w.r.t. the replay semantics (same template recursion, same
    /// sender rule, same feasibility encoding).
    #[test]
    fn lifted_traces_never_refute_a_verified_cca() {
        let net = net(5);
        let rocc = known::rocc();
        let replay = replay(&net);
        for seed_lambda in [Rat::zero(), rat(1, 2), Rat::one()] {
            let cfg = LiftConfig {
                lambdas: vec![seed_lambda],
                initial_backlog: int(2),
                ..LiftConfig::ideal(net.clone())
            };
            let trace = lift_checked(&rocc, &cfg).expect("eager lift feasible");
            assert!(!replay.refutes(&rocc, &trace), "lift refuted RoCC");
        }
    }

    /// The lift realizes genuine refutations: a constant window above
    /// BDP + delay threshold holds a standing queue the model property
    /// rejects, and the replayed (exact) verdict agrees.
    #[test]
    fn lift_produces_replayable_refutations_for_broken_ccas() {
        let net = net(5);
        let spec = known::const_cwnd(int(8));
        let cfg = LiftConfig { initial_backlog: int(7), ..LiftConfig::ideal(net.clone()) };
        let trace = lift_checked(&spec, &cfg).expect("eager lift feasible");
        assert!(
            replay(&net).refutes(&spec, &trace),
            "const cwnd 8 should be refuted by its own ideal-schedule trace"
        );
    }

    /// Partial waste can break the lagged service floor — the gate must
    /// catch it rather than let an infeasible trace masquerade as a model
    /// behaviour.
    #[test]
    fn partial_waste_lifts_are_gated_not_trusted() {
        let net = net(5);
        // Zero CCA on a stalled-then-open schedule with ω = 0: tokens are
        // never wasted during the idle phase, so the floor keeps climbing
        // while arrivals stay put.
        let spec = known::const_cwnd(Rat::zero());
        let cfg = LiftConfig {
            lambdas: vec![Rat::one()],
            omegas: vec![Rat::zero()],
            ..LiftConfig::ideal(net.clone())
        };
        let trace = lift_schedule(&spec, &cfg);
        assert!(
            check_trace(&trace, &net).is_err(),
            "never-waste lift of a silent sender must violate the service floor"
        );
        assert!(lift_checked(&spec, &cfg).is_err());
    }

    /// The t_min row carries the configured initial conditions and the
    /// trace has the verifier's exact shape.
    #[test]
    fn trace_shape_and_anchors() {
        let net = net(5);
        let cfg = LiftConfig {
            initial_backlog: rat(3, 2),
            initial_cwnd: int(2),
            ..LiftConfig::ideal(net.clone())
        };
        let trace = lift_schedule(&known::rocc(), &cfg);
        assert_eq!(trace.t_min, -5);
        assert_eq!(trace.t_max, 6);
        assert_eq!(trace.a.len(), net.num_steps());
        assert_eq!(trace.a_at(-5), &rat(3, 2));
        assert_eq!(trace.s_at(-5), &Rat::zero());
        assert_eq!(trace.w_at(-5), &Rat::zero());
        assert_eq!(trace.cwnd_at(-5), &int(2));
    }
}
