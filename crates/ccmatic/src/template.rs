//! The CCA template (the paper's Equation ii) and its search space.

use ccmatic_num::{rat, Rat};
use std::fmt;

/// Discrete domains the generator may pick coefficients from (§4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoeffDomain {
    /// `{−1, 0, 1}` — additive responses only.
    Small,
    /// `{i/2 : |i| ≤ 4}` = `{−2, −3/2, …, 3/2, 2}` — includes
    /// multiplicative responses.
    Large,
    /// Any custom finite set.
    Custom(Vec<Rat>),
}

impl CoeffDomain {
    /// The concrete values of the domain, ascending.
    pub fn values(&self) -> Vec<Rat> {
        match self {
            CoeffDomain::Small => vec![rat(-1, 1), rat(0, 1), rat(1, 1)],
            CoeffDomain::Large => (-4..=4).map(|i| rat(i, 2)).collect(),
            CoeffDomain::Custom(vs) => vs.clone(),
        }
    }

    /// Number of values.
    pub fn size(&self) -> usize {
        self.values().len()
    }
}

/// The shape of the search space: how far the template looks back, whether
/// it may reference historical cwnd, and the coefficient domain.
///
/// The template (Equation ii) is
/// `cwnd(t) = Σ_{i=1..lookback} (αᵢ·cwnd(t−i) + βᵢ·ack(t−i)) + γ`,
/// with `αᵢ ≡ 0` when `use_cwnd` is false. The paper's §4 configurations
/// use `lookback = 4` ("up to 3 RTTs of historical information,
/// h = 3+1 = 4"), giving search-space sizes 3⁵, 9⁵, 3⁹, 9⁹.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateShape {
    /// Number of history taps (`h` in the paper).
    pub lookback: usize,
    /// Whether historical cwnd terms are allowed (the `cwnd` rows of
    /// Table 1).
    pub use_cwnd: bool,
    /// The coefficient domain.
    pub domain: CoeffDomain,
}

impl TemplateShape {
    /// Table 1 row 1: no historical cwnd, small domain (3⁵ candidates).
    pub fn no_cwnd_small() -> Self {
        TemplateShape { lookback: 4, use_cwnd: false, domain: CoeffDomain::Small }
    }

    /// Table 1 row 2: no historical cwnd, large domain (9⁵ candidates).
    pub fn no_cwnd_large() -> Self {
        TemplateShape { lookback: 4, use_cwnd: false, domain: CoeffDomain::Large }
    }

    /// Table 1 row 3: historical cwnd allowed, small domain (3⁹).
    pub fn cwnd_small() -> Self {
        TemplateShape { lookback: 4, use_cwnd: true, domain: CoeffDomain::Small }
    }

    /// Table 1 row 4: historical cwnd allowed, large domain (9⁹).
    pub fn cwnd_large() -> Self {
        TemplateShape { lookback: 4, use_cwnd: true, domain: CoeffDomain::Large }
    }

    /// Number of free coefficients (`4·(1 or 2) + 1`).
    pub fn num_coefficients(&self) -> usize {
        self.lookback * if self.use_cwnd { 2 } else { 1 } + 1
    }

    /// Total candidate count `|domain|^num_coefficients` (may be huge;
    /// saturates at `u128::MAX`).
    pub fn search_space_size(&self) -> u128 {
        let base = self.domain.size() as u128;
        let mut acc: u128 = 1;
        for _ in 0..self.num_coefficients() {
            acc = acc.saturating_mul(base);
        }
        acc
    }
}

/// A concrete CCA drawn from the template: fixed coefficient values.
///
/// `alpha[i]` multiplies `cwnd(t−i−1)`, `beta[i]` multiplies `ack(t−i−1)`,
/// and `gamma` is the additive constant, all in BDP units.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CcaSpec {
    /// Coefficients on historical cwnd (empty when the shape forbids them).
    pub alpha: Vec<Rat>,
    /// Coefficients on historical cumulative ACKs.
    pub beta: Vec<Rat>,
    /// Additive constant γ.
    pub gamma: Rat,
}

impl CcaSpec {
    /// The all-zero CCA of a given shape (never sends; the canonical
    /// non-solution).
    pub fn zero(shape: &TemplateShape) -> Self {
        CcaSpec {
            alpha: if shape.use_cwnd { vec![Rat::zero(); shape.lookback] } else { Vec::new() },
            beta: vec![Rat::zero(); shape.lookback],
            gamma: Rat::zero(),
        }
    }

    /// How many RTTs of history the rule actually reads (its largest
    /// non-zero tap; the paper reports "six use 2 RTTs, six use 3").
    pub fn history_used(&self) -> usize {
        let deepest = |v: &[Rat]| {
            v.iter().enumerate().rev().find(|(_, c)| !c.is_zero()).map(|(i, _)| i + 1).unwrap_or(0)
        };
        deepest(&self.alpha).max(deepest(&self.beta))
    }

    /// Coefficients as `f64` for handing to the simulator:
    /// `(alpha, beta, gamma)`.
    pub fn coefficients_f64(&self) -> (Vec<f64>, Vec<f64>, f64) {
        (
            self.alpha.iter().map(Rat::to_f64).collect(),
            self.beta.iter().map(Rat::to_f64).collect(),
            self.gamma.to_f64(),
        )
    }

    /// All coefficients in generator order (alphas, betas, gamma) — the
    /// order used for blocking clauses during enumeration.
    pub fn flat(&self) -> Vec<Rat> {
        let mut out = self.alpha.clone();
        out.extend(self.beta.iter().cloned());
        out.push(self.gamma.clone());
        out
    }
}

impl fmt::Display for CcaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (i, a) in self.alpha.iter().enumerate() {
            if !a.is_zero() {
                parts.push(format!("{}·cwnd(t−{})", a, i + 1));
            }
        }
        for (i, b) in self.beta.iter().enumerate() {
            if !b.is_zero() {
                parts.push(format!("{}·ack(t−{})", b, i + 1));
            }
        }
        if !self.gamma.is_zero() || parts.is_empty() {
            parts.push(self.gamma.to_string());
        }
        write!(f, "cwnd(t) = {}", parts.join(" + ").replace("+ -", "− "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;
    use ccmatic_num::int;

    #[test]
    fn domain_values() {
        assert_eq!(CoeffDomain::Small.size(), 3);
        assert_eq!(CoeffDomain::Large.size(), 9);
        let large = CoeffDomain::Large.values();
        assert_eq!(large.first().unwrap(), &int(-2));
        assert_eq!(large.last().unwrap(), &int(2));
        assert!(large.contains(&rat(3, 2)));
        assert!(large.contains(&rat(-1, 2)));
    }

    #[test]
    fn search_space_sizes_match_table1() {
        assert_eq!(TemplateShape::no_cwnd_small().search_space_size(), 243); // 3^5
        assert_eq!(TemplateShape::no_cwnd_large().search_space_size(), 59049); // 9^5
        assert_eq!(TemplateShape::cwnd_small().search_space_size(), 19683); // 3^9
        assert_eq!(TemplateShape::cwnd_large().search_space_size(), 387420489); // 9^9
    }

    #[test]
    fn rocc_spec_display_and_history() {
        let rocc = known::rocc();
        assert_eq!(rocc.history_used(), 3);
        let shown = rocc.to_string();
        assert!(shown.contains("ack(t−1)"), "{shown}");
        assert!(shown.contains("ack(t−3)"), "{shown}");
    }

    #[test]
    fn flat_ordering() {
        let spec = CcaSpec { alpha: vec![int(1)], beta: vec![int(2)], gamma: int(3) };
        assert_eq!(spec.flat(), vec![int(1), int(2), int(3)]);
    }

    #[test]
    fn zero_spec_shape() {
        let z = CcaSpec::zero(&TemplateShape::cwnd_small());
        assert_eq!(z.alpha.len(), 4);
        assert_eq!(z.beta.len(), 4);
        assert_eq!(z.history_used(), 0);
        let z2 = CcaSpec::zero(&TemplateShape::no_cwnd_small());
        assert!(z2.alpha.is_empty());
    }
}
