//! End-to-end synthesis: wire the generator and verifier into the CEGIS
//! engine (the paper's Table-1 experiment, "time to synthesize first
//! solution").

use crate::generator::{FeasibilityMode, SmtGenerator};
use crate::replay::TraceReplay;
use crate::template::{CcaSpec, TemplateShape};
use crate::verifier::{CcaVerifier, CertAudit, VerifyConfig};
use ccac_model::{NetConfig, Thresholds, Trace};
use ccmatic_cegis::{
    BatchProposal, Budget, Generator, Outcome, ParallelConfig, Stats, Verdict, Verifier,
};
use ccmatic_num::Rat;
use ccmatic_smt::Interrupt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which of the paper's §3.1.2 optimizations to enable — the three columns
/// of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptMode {
    /// No optimizations: exact-trace feasibility, first counterexample.
    Baseline,
    /// Range pruning (RP).
    RangePruning,
    /// Range pruning + worst-case counterexamples (RP+WCE).
    RangePruningWce,
}

impl OptMode {
    /// The feasibility encoding this mode uses.
    pub fn feasibility(self) -> FeasibilityMode {
        match self {
            OptMode::Baseline => FeasibilityMode::Baseline,
            _ => FeasibilityMode::RangePruning,
        }
    }

    /// Whether the verifier maximizes counterexample ranges.
    pub fn worst_case(self) -> bool {
        matches!(self, OptMode::RangePruningWce)
    }

    /// Table-1 column label.
    pub fn label(self) -> &'static str {
        match self {
            OptMode::Baseline => "Baseline",
            OptMode::RangePruning => "RP",
            OptMode::RangePruningWce => "RP+WCE",
        }
    }
}

/// All knobs of one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// The search space (Table 1's `Params`/`Domain` columns).
    pub shape: TemplateShape,
    /// Network model shape.
    pub net: NetConfig,
    /// Performance targets.
    pub thresholds: Thresholds,
    /// Optimization level (Table 1's method columns).
    pub mode: OptMode,
    /// Loop budget.
    pub budget: Budget,
    /// WCE binary-search precision.
    pub wce_precision: Rat,
    /// Use the verifier's incremental (push/pop scope) path.
    pub incremental: bool,
    /// Verification fan-out: 1 runs the serial loop, >1 the speculative
    /// parallel engine with this many worker verifiers.
    pub threads: usize,
    /// Certify every verifier verdict: UNSAT answers must carry a
    /// checker-accepted DRAT+Farkas certificate, SAT answers an
    /// exact-audited model (see [`VerifyConfig::certify`]).
    pub certify: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            shape: TemplateShape::no_cwnd_small(),
            net: NetConfig::default(),
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: Budget::default(),
            wce_precision: Rat::new(1i64.into(), 4i64.into()),
            incremental: true,
            threads: 1,
            certify: false,
        }
    }
}

/// Outcome of [`synthesize`].
#[derive(Debug)]
pub struct SynthResult {
    /// Solution / no-solution / budget.
    pub outcome: Outcome<CcaSpec>,
    /// Loop statistics (iterations, generator/verifier split — the columns
    /// of Table 1).
    pub stats: Stats,
    /// Underlying verifier probes (exceeds verifier calls when WCE
    /// binary-searches).
    pub verifier_probes: u64,
    /// Aggregate certificate-audit totals across all worker verifiers
    /// (all zero unless `opts.certify`).
    pub cert_audit: CertAudit,
}

/// Adapter: [`SmtGenerator`] as a [`ccmatic_cegis::Generator`].
///
/// Deduplicates learned traces: the engine re-submits a counterexample it
/// already holds whenever the replay prefilter kills a candidate with it,
/// and asserting the same trace constraint twice only bloats the solver.
pub struct GenAdapter {
    /// The wrapped SMT generator.
    pub inner: SmtGenerator,
    learned: Vec<Trace>,
}

impl GenAdapter {
    /// Wrap `inner` with an empty learned-trace set.
    pub fn new(inner: SmtGenerator) -> Self {
        GenAdapter { inner, learned: Vec::new() }
    }
}

impl Generator for GenAdapter {
    type Candidate = CcaSpec;
    type CounterExample = Trace;

    fn propose(&mut self) -> Option<CcaSpec> {
        self.inner.propose()
    }

    fn learn(&mut self, _candidate: &CcaSpec, cex: &Trace) {
        if self.learned.iter().any(|t| t == cex) {
            return;
        }
        self.inner.learn(cex);
        self.learned.push(cex.clone());
    }

    fn propose_batch(&mut self, k: usize, deadline: Option<Instant>) -> BatchProposal<CcaSpec> {
        self.inner.propose_batch(k, deadline)
    }
}

/// Adapter: [`CcaVerifier`] as a [`ccmatic_cegis::Verifier`].
///
/// Solver probes are published to a shared counter after every call, so
/// the parallel engine (which owns one adapter per worker) can still
/// report an aggregate probe count.
pub struct VerAdapter {
    /// The wrapped verifier.
    pub inner: CcaVerifier,
    probes: Arc<AtomicU64>,
    reported: u64,
    certs: Arc<CertTotals>,
    certs_reported: CertAudit,
}

/// Shared certificate-audit totals, published by every worker verifier the
/// same way solver probes are.
#[derive(Default)]
pub struct CertTotals {
    checked: AtomicU64,
    clauses: AtomicU64,
    bytes: AtomicU64,
    check_ns: AtomicU64,
}

impl CertTotals {
    /// Snapshot the totals.
    pub fn load(&self) -> CertAudit {
        CertAudit {
            checked: self.checked.load(Ordering::Relaxed),
            clauses: self.clauses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            check_ns: self.check_ns.load(Ordering::Relaxed),
        }
    }
}

impl VerAdapter {
    /// Wrap `inner` with private counters.
    pub fn new(inner: CcaVerifier) -> Self {
        Self::with_sinks(inner, Arc::new(AtomicU64::new(0)), Arc::new(CertTotals::default()))
    }

    /// Wrap `inner`, publishing probe counts into `probes`.
    pub fn with_probe_sink(inner: CcaVerifier, probes: Arc<AtomicU64>) -> Self {
        Self::with_sinks(inner, probes, Arc::new(CertTotals::default()))
    }

    /// Wrap `inner`, publishing probe counts into `probes` and certificate
    /// audit totals into `certs`.
    pub fn with_sinks(inner: CcaVerifier, probes: Arc<AtomicU64>, certs: Arc<CertTotals>) -> Self {
        VerAdapter { inner, probes, reported: 0, certs, certs_reported: CertAudit::default() }
    }

    fn publish_probes(&mut self) {
        let current = self.inner.solver_probes;
        self.probes.fetch_add(current - self.reported, Ordering::Relaxed);
        self.reported = current;
        let audit = self.inner.cert_audit;
        self.certs
            .checked
            .fetch_add(audit.checked - self.certs_reported.checked, Ordering::Relaxed);
        self.certs
            .clauses
            .fetch_add(audit.clauses - self.certs_reported.clauses, Ordering::Relaxed);
        self.certs.bytes.fetch_add(audit.bytes - self.certs_reported.bytes, Ordering::Relaxed);
        self.certs
            .check_ns
            .fetch_add(audit.check_ns - self.certs_reported.check_ns, Ordering::Relaxed);
        self.certs_reported = audit;
    }
}

impl Verifier for VerAdapter {
    type Candidate = CcaSpec;
    type CounterExample = Trace;

    fn verify(&mut self, candidate: &CcaSpec) -> Result<(), Trace> {
        let result = self.inner.verify(candidate);
        self.publish_probes();
        result
    }

    fn verify_interruptible(
        &mut self,
        candidate: &CcaSpec,
        deadline: Option<Instant>,
        cancel: Option<&Arc<AtomicBool>>,
    ) -> Verdict<Trace> {
        let interrupt = Interrupt { deadline, cancel: cancel.cloned() };
        let verdict = self.inner.verify_interruptible(candidate, &interrupt);
        self.publish_probes();
        verdict
    }
}

fn make_generator(opts: &SynthOptions) -> GenAdapter {
    GenAdapter::new(SmtGenerator::new(
        opts.shape.clone(),
        opts.net.clone(),
        opts.thresholds.clone(),
        opts.mode.feasibility(),
    ))
}

fn make_verifier(opts: &SynthOptions) -> CcaVerifier {
    CcaVerifier::new(VerifyConfig {
        net: opts.net.clone(),
        thresholds: opts.thresholds.clone(),
        worst_case: opts.mode.worst_case(),
        wce_precision: opts.wce_precision.clone(),
        incremental: opts.incremental,
        certify: opts.certify,
    })
}

/// The replay prefilter matching `opts`' generator semantics.
pub fn make_replay(opts: &SynthOptions) -> TraceReplay {
    TraceReplay::new(opts.net.clone(), opts.thresholds.clone(), opts.mode.feasibility())
}

/// Build the generator/verifier pair for `opts`.
pub fn build_loop(opts: &SynthOptions) -> (GenAdapter, VerAdapter) {
    (make_generator(opts), VerAdapter::new(make_verifier(opts)))
}

/// Run CEGIS until the first solution (or exhaustion/budget).
///
/// `opts.threads == 1` runs the serial loop with the concrete replay
/// prefilter; `> 1` fans candidate batches out to that many worker
/// verifiers through [`ccmatic_cegis::run_parallel`].
pub fn synthesize(opts: &SynthOptions) -> SynthResult {
    let mut generator = make_generator(opts);
    let replayer = make_replay(opts);
    let replay = |c: &CcaSpec, cex: &Trace| replayer.refutes(c, cex);
    let probes = Arc::new(AtomicU64::new(0));
    let certs = Arc::new(CertTotals::default());
    let run = if opts.threads <= 1 {
        let mut verifier =
            VerAdapter::with_sinks(make_verifier(opts), probes.clone(), certs.clone());
        ccmatic_cegis::run_with_replay(&mut generator, &mut verifier, replay, &opts.budget)
    } else {
        let cfg = ParallelConfig::new(opts.threads);
        ccmatic_cegis::run_parallel(
            &mut generator,
            |_worker| VerAdapter::with_sinks(make_verifier(opts), probes.clone(), certs.clone()),
            replay,
            &opts.budget,
            &cfg,
        )
    };
    SynthResult {
        outcome: run.outcome,
        stats: run.stats,
        verifier_probes: probes.load(Ordering::Relaxed),
        cert_audit: certs.load(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::CoeffDomain;
    use ccmatic_num::int;
    use std::time::Duration;

    /// A reduced configuration that keeps unit-test times low: shorter
    /// horizon and lookback 3 (RoCC needs taps at t−1 and t−3, so lookback
    /// 3 still contains it: 3³·... candidates).
    fn quick_opts(mode: OptMode) -> SynthOptions {
        SynthOptions {
            shape: TemplateShape { lookback: 3, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 6,
                history: 4,
                link_rate: Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode,
            budget: Budget { max_iterations: 400, max_wall: Duration::from_secs(240) },
            wce_precision: Rat::new(1i64.into(), 2i64.into()),
            incremental: true,
            threads: 1,
            certify: false,
        }
    }

    #[test]
    fn certified_synthesis_checks_every_unsat_verdict() {
        let opts = SynthOptions { certify: true, ..quick_opts(OptMode::RangePruningWce) };
        let result = synthesize(&opts);
        let Outcome::Solution(_) = result.outcome else { panic!("no solution") };
        // The accepting Pass verdict (and every certified infeasibility
        // probe before it) must have been replayed by the checker.
        assert!(result.cert_audit.checked >= 1, "accepting verdict must be certified");
        assert!(result.cert_audit.bytes > 0);
    }

    #[test]
    fn synthesis_finds_a_working_cca_with_rp_wce() {
        let opts = quick_opts(OptMode::RangePruningWce);
        let result = synthesize(&opts);
        match result.outcome {
            Outcome::Solution(spec) => {
                // Sound by construction, but double-check with a fresh
                // verifier.
                let mut v = CcaVerifier::new(VerifyConfig {
                    net: opts.net.clone(),
                    thresholds: opts.thresholds.clone(),
                    worst_case: false,
                    wce_precision: opts.wce_precision.clone(),
                    incremental: true,
                    certify: false,
                });
                assert!(v.verify(&spec).is_ok(), "synthesized CCA failed re-verification: {spec}");
            }
            other => panic!("expected a solution, got {other:?}"),
        }
        assert!(result.stats.iterations >= 1);
    }

    #[test]
    fn synthesized_solution_resembles_rocc() {
        // In the small no-cwnd space the survivors are RoCC-like: rate
        // taps that sum to ~0 with a positive additive term, i.e. cwnd ≈
        // bytes delivered over a recent window + constant.
        let opts = quick_opts(OptMode::RangePruningWce);
        let result = synthesize(&opts);
        let Outcome::Solution(spec) = result.outcome else { panic!("no solution") };
        let tap_sum = spec.beta.iter().fold(Rat::zero(), |acc, b| &acc + b);
        assert!(tap_sum.is_zero(), "rate taps should cancel (rate-proportional rule), got {spec}");
        assert!(spec.gamma > int(0), "needs a positive additive term, got {spec}");
    }
}
