//! End-to-end synthesis: wire the generator and verifier into the CEGIS
//! engine (the paper's Table-1 experiment, "time to synthesize first
//! solution").
//!
//! With `threads > 1` and a large enough search space, synthesis runs as a
//! *portfolio*: each worker owns a diversified generator/verifier pair, the
//! candidate space is partitioned into coefficient-prefix shards workers
//! steal from a shared queue, counterexamples are broadcast into every
//! worker's replay cache, and (on the incremental path) short learned
//! clauses flow between the workers' SAT cores through a
//! [`ClauseExchange`]. Tiny spaces skip all of that: below
//! [`SynthOptions::dispatch_min`] candidates the serial loop wins on
//! per-candidate overhead alone, so the dispatcher falls back to it.

use crate::generator::{FeasibilityMode, Proposal, SmtGenerator};
use crate::replay::TraceReplay;
use crate::template::{CcaSpec, TemplateShape};
use crate::verifier::{CcaVerifier, CertAudit, VerifyConfig};
use ccac_model::{NetConfig, Thresholds, Trace};
use ccmatic_cegis::{
    BatchProposal, Budget, Generator, Outcome, PortfolioWorker, Stats, StepOutcome, StepReport,
    Verdict, Verifier, WorkerStats,
};
use ccmatic_num::Rat;
use ccmatic_smt::{ClauseExchange, Interrupt, SearchConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Search spaces smaller than this run serially even when `threads > 1`:
/// spinning up worker solvers and barrier rounds costs more than a tiny
/// space's whole enumeration.
pub const DEFAULT_DISPATCH_MIN: u128 = 1024;

/// Which of the paper's §3.1.2 optimizations to enable — the three columns
/// of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptMode {
    /// No optimizations: exact-trace feasibility, first counterexample.
    Baseline,
    /// Range pruning (RP).
    RangePruning,
    /// Range pruning + worst-case counterexamples (RP+WCE).
    RangePruningWce,
}

impl OptMode {
    /// The feasibility encoding this mode uses.
    pub fn feasibility(self) -> FeasibilityMode {
        match self {
            OptMode::Baseline => FeasibilityMode::Baseline,
            _ => FeasibilityMode::RangePruning,
        }
    }

    /// Whether the verifier maximizes counterexample ranges.
    pub fn worst_case(self) -> bool {
        matches!(self, OptMode::RangePruningWce)
    }

    /// Table-1 column label.
    pub fn label(self) -> &'static str {
        match self {
            OptMode::Baseline => "Baseline",
            OptMode::RangePruning => "RP",
            OptMode::RangePruningWce => "RP+WCE",
        }
    }
}

/// All knobs of one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// The search space (Table 1's `Params`/`Domain` columns).
    pub shape: TemplateShape,
    /// Network model shape.
    pub net: NetConfig,
    /// Performance targets.
    pub thresholds: Thresholds,
    /// Optimization level (Table 1's method columns).
    pub mode: OptMode,
    /// Loop budget.
    pub budget: Budget,
    /// WCE binary-search precision.
    pub wce_precision: Rat,
    /// Use the verifier's incremental (push/pop scope) path. Also gates
    /// clause sharing: only incremental workers share an identical base
    /// encoding (and therefore SAT variable numbering).
    pub incremental: bool,
    /// Worker count: 1 runs the serial loop, >1 the shard-stealing
    /// portfolio with this many diversified generator/verifier pairs.
    pub threads: usize,
    /// Base RNG seed for search diversification. Worker `w` searches under
    /// [`SearchConfig::diversified`]`(seed, w)`; fixed seeds make portfolio
    /// runs reproducible.
    pub seed: u64,
    /// Below this many candidates the portfolio dispatcher falls back to
    /// the serial loop regardless of `threads`.
    pub dispatch_min: u128,
    /// Certify every verifier verdict: UNSAT answers must carry a
    /// checker-accepted DRAT+Farkas certificate, SAT answers an
    /// exact-audited model (see [`VerifyConfig::certify`]).
    pub certify: bool,
    /// Region pruning (DESIGN.md §11): region-form σ encoding, the
    /// replay-verified dominance BFS, and counterexample-trace
    /// subsumption. On by default; the differential suite turns it off to
    /// pin pruned == unpruned outcomes.
    pub region_pruning: bool,
    /// Trail-synchronized incremental theory solving in every solver this
    /// run builds (verifier, generator, WCE probes). On by default; the
    /// `--no-theory-sync` escape hatch exists for same-build A/B timing
    /// and the trail-sync differential suite.
    pub theory_sync: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            shape: TemplateShape::no_cwnd_small(),
            net: NetConfig::default(),
            thresholds: Thresholds::default(),
            mode: OptMode::RangePruningWce,
            budget: Budget::default(),
            wce_precision: Rat::new(1i64.into(), 4i64.into()),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
            theory_sync: true,
        }
    }
}

/// Outcome of [`synthesize`].
#[derive(Debug)]
pub struct SynthResult {
    /// Solution / no-solution / budget.
    pub outcome: Outcome<CcaSpec>,
    /// Loop statistics (iterations, generator/verifier split — the columns
    /// of Table 1).
    pub stats: Stats,
    /// Underlying verifier probes (exceeds verifier calls when WCE
    /// binary-searches).
    pub verifier_probes: u64,
    /// Aggregate certificate-audit totals across all worker verifiers
    /// (all zero unless `opts.certify`).
    pub cert_audit: CertAudit,
    /// Per-worker portfolio counters (empty for serial runs).
    pub workers: Vec<WorkerStats>,
}

/// Adapter: [`SmtGenerator`] as a [`ccmatic_cegis::Generator`].
///
/// Deduplicates learned traces (the engine re-submits a counterexample it
/// already holds whenever the replay prefilter kills a candidate with it,
/// and asserting the same trace constraint twice only bloats the solver)
/// and — with region pruning on — *subsumes* them: a new trace whose kill
/// set is contained in an already-asserted trace's
/// ([`TraceReplay::subsumes`]) is dropped before assertion, keeping the
/// per-propose assertion set to the strongest traces only.
pub struct GenAdapter {
    /// The wrapped SMT generator.
    pub inner: SmtGenerator,
    /// Traces asserted into `inner` (append-only: the subsumption skip is
    /// sound only against traces that really are asserted).
    learned: Vec<Trace>,
    /// Subsumption oracle; must match `inner`'s configuration.
    replayer: TraceReplay,
    /// Whether subsumption filtering is enabled (mirrors
    /// [`SynthOptions::region_pruning`]).
    subsume: bool,
    /// Traces dropped because an already-asserted trace subsumed them.
    pub cex_subsumed: u64,
    /// Every (refuted candidate, trace) pair actually asserted, in order —
    /// the warm-start carry for the next sweep point, which re-validates
    /// each pair against *its* thresholds before re-asserting.
    refuted_log: Vec<(CcaSpec, Trace)>,
}

impl GenAdapter {
    /// Wrap `inner` with an empty learned-trace set. `replayer` must be
    /// built from the same net/thresholds/mode as `inner`.
    pub fn new(inner: SmtGenerator, replayer: TraceReplay, subsume: bool) -> Self {
        GenAdapter {
            inner,
            learned: Vec::new(),
            replayer,
            subsume,
            cex_subsumed: 0,
            refuted_log: Vec::new(),
        }
    }

    /// The (refuted candidate, trace) pairs asserted during this run, for
    /// warm-starting a neighboring problem instance.
    pub fn take_refuted_log(&mut self) -> Vec<(CcaSpec, Trace)> {
        std::mem::take(&mut self.refuted_log)
    }
}

impl Generator for GenAdapter {
    type Candidate = CcaSpec;
    type CounterExample = Trace;

    fn propose(&mut self) -> Option<CcaSpec> {
        self.inner.propose()
    }

    fn learn(&mut self, candidate: &CcaSpec, cex: &Trace) {
        // Canonicalize the waste schedule so equal-service traces from
        // distinct probes become comparable (subsumption requires waste
        // domination, and solver models carry arbitrary waste slack). Keep
        // the original when minimal waste no longer refutes the candidate
        // — canonicalization can move waste points, and the learned
        // constraint must exclude `candidate` for CEGIS to progress (see
        // `Trace::canonicalize_waste`).
        let mut canon = cex.clone();
        self.replayer.canonicalize(&mut canon);
        let cex = if self.replayer.refutes(candidate, &canon) { &canon } else { cex };
        if self.learned.iter().any(|t| t == cex) {
            return;
        }
        if self.subsume && self.learned.iter().any(|t| self.replayer.subsumes(t, cex)) {
            // An asserted trace already excludes everything this one
            // would (the refuted candidate included) — skip the assertion.
            self.cex_subsumed += 1;
            return;
        }
        self.inner.learn_refuted(candidate, cex);
        self.learned.push(cex.clone());
        self.refuted_log.push((candidate.clone(), cex.clone()));
    }

    fn propose_batch(&mut self, k: usize, deadline: Option<Instant>) -> BatchProposal<CcaSpec> {
        self.inner.propose_batch(k, deadline)
    }
}

/// Adapter: [`CcaVerifier`] as a [`ccmatic_cegis::Verifier`].
pub struct VerAdapter {
    /// The wrapped verifier. Probe counts and certificate-audit totals are
    /// read off `inner` directly after the run.
    pub inner: CcaVerifier,
}

impl VerAdapter {
    /// Wrap `inner`.
    pub fn new(inner: CcaVerifier) -> Self {
        VerAdapter { inner }
    }
}

impl Verifier for VerAdapter {
    type Candidate = CcaSpec;
    type CounterExample = Trace;

    fn verify(&mut self, candidate: &CcaSpec) -> Result<(), Trace> {
        self.inner.verify(candidate)
    }

    fn verify_interruptible(
        &mut self,
        candidate: &CcaSpec,
        deadline: Option<Instant>,
        cancel: Option<&Arc<AtomicBool>>,
    ) -> Verdict<Trace> {
        let interrupt = Interrupt { deadline, cancel: cancel.cloned() };
        self.inner.verify_interruptible(candidate, &interrupt)
    }
}

/// The serial loop's search configuration: the run seed with the default
/// (deterministic) policies, so single-threaded behaviour is unchanged
/// from the pre-portfolio code.
fn serial_search(opts: &SynthOptions) -> SearchConfig {
    SearchConfig { seed: opts.seed, ..SearchConfig::default() }
}

fn make_generator(opts: &SynthOptions) -> GenAdapter {
    // Certify mode also certifies the *generator*: base-level exhaustion
    // claims then carry an UNSAT certificate (retained by the result
    // cache as the enumeration-completeness proof).
    let build =
        if opts.certify { SmtGenerator::new_certified } else { SmtGenerator::new_with_config };
    let mut inner = build(
        opts.shape.clone(),
        opts.net.clone(),
        opts.thresholds.clone(),
        opts.mode.feasibility(),
        serial_search(opts),
    );
    inner.set_region_pruning(opts.region_pruning);
    inner.set_theory_sync(opts.theory_sync);
    GenAdapter::new(inner, make_replay(opts), opts.region_pruning)
}

fn verify_config(opts: &SynthOptions, search: SearchConfig) -> VerifyConfig {
    VerifyConfig {
        net: opts.net.clone(),
        thresholds: opts.thresholds.clone(),
        worst_case: opts.mode.worst_case(),
        wce_precision: opts.wce_precision.clone(),
        incremental: opts.incremental,
        certify: opts.certify,
        search,
        theory_sync: opts.theory_sync,
    }
}

fn make_verifier(opts: &SynthOptions) -> CcaVerifier {
    CcaVerifier::new(verify_config(opts, serial_search(opts)))
}

/// The replay prefilter matching `opts`' generator semantics.
pub fn make_replay(opts: &SynthOptions) -> TraceReplay {
    TraceReplay::new(opts.net.clone(), opts.thresholds.clone(), opts.mode.feasibility())
}

/// Build the generator/verifier pair for `opts`.
pub fn build_loop(opts: &SynthOptions) -> (GenAdapter, VerAdapter) {
    (make_generator(opts), VerAdapter::new(make_verifier(opts)))
}

/// Partition the candidate space into shards for `workers` workers: each
/// shard pins a prefix of the coefficient vector (in [`CcaSpec::flat`]
/// order) to one combination of domain values. The prefix length is the
/// smallest that yields at least one shard per worker, capped one short of
/// the full coefficient count so a shard always leaves the generator a
/// real sub-space to search.
///
/// Shards are ordered lexicographically by domain position; the portfolio
/// resolves simultaneous solutions in favour of the lowest shard, so this
/// order is part of the deterministic-outcome contract.
pub fn shard_plan(shape: &TemplateShape, workers: usize) -> Vec<Vec<Rat>> {
    let domain = shape.domain.values();
    if domain.is_empty() {
        return Vec::new();
    }
    let max_prefix = shape.num_coefficients().saturating_sub(1).max(1);
    let mut prefix_len = 1usize;
    let mut count = domain.len();
    while count < workers && prefix_len < max_prefix {
        prefix_len += 1;
        count = count.saturating_mul(domain.len());
    }
    let mut prefixes: Vec<Vec<Rat>> = vec![Vec::new()];
    for _ in 0..prefix_len {
        let mut next = Vec::with_capacity(prefixes.len() * domain.len());
        for p in &prefixes {
            for v in &domain {
                let mut q = p.clone();
                q.push(v.clone());
                next.push(q);
            }
        }
        prefixes = next;
    }
    prefixes
}

/// One portfolio worker: a diversified generator/verifier pair plus the
/// broadcast-counterexample replay cache.
struct CcaWorker {
    generator: SmtGenerator,
    verifier: CcaVerifier,
    replay: TraceReplay,
    shards: Arc<Vec<Vec<Rat>>>,
    /// Every counterexample this worker knows (own + broadcast), fed to the
    /// replay prefilter. Outlives shards. With region pruning on, kept
    /// subsumption-reduced: only traces no other cached trace subsumes.
    cached: Vec<Trace>,
    /// Traces asserted into the generator inside the *current* shard scope.
    /// Cleared on shard entry/exit — the assertions vanish with the scope.
    shard_learned: Vec<Trace>,
    /// Whether subsumption filtering is enabled (mirrors
    /// [`SynthOptions::region_pruning`]).
    subsume: bool,
    /// Subsumption drops: shard assertions skipped plus broadcast traces
    /// dropped from (or evicted out of) the replay cache.
    cex_subsumed: u64,
}

impl CcaWorker {
    /// Assert `trace`'s constraint at the current (shard) scope unless it
    /// is already asserted there — or an asserted trace subsumes it, in
    /// which case the shard scope already excludes everything it would.
    fn learn_in_shard(&mut self, refuted: &CcaSpec, trace: Trace) {
        // Same waste canonicalization (with the same refutation guard) as
        // the serial path's `GenAdapter::learn`.
        let mut canon = trace.clone();
        self.replay.canonicalize(&mut canon);
        let trace = if self.replay.refutes(refuted, &canon) { canon } else { trace };
        if self.shard_learned.contains(&trace) {
            return;
        }
        if self.subsume && self.shard_learned.iter().any(|t| self.replay.subsumes(t, &trace)) {
            self.cex_subsumed += 1;
            return;
        }
        self.generator.learn_refuted(refuted, &trace);
        self.shard_learned.push(trace);
    }
}

impl PortfolioWorker for CcaWorker {
    type Candidate = CcaSpec;
    type Cex = Trace;

    fn enter_shard(&mut self, shard: usize) {
        self.generator.enter_shard(&self.shards[shard]);
        self.shard_learned.clear();
    }

    fn exit_shard(&mut self) {
        self.generator.exit_shard();
        self.shard_learned.clear();
    }

    fn cache_cex(&mut self, cex: Trace) {
        if self.cached.contains(&cex) {
            return;
        }
        if self.subsume {
            // Subsumption at the exchange boundary: an incoming trace a
            // cached one subsumes is dropped; cached traces the incoming
            // one subsumes are evicted. Either way every kill the dropped
            // trace could score, a surviving trace scores too, so the
            // prefilter loses no power while the scan stays short.
            if self.cached.iter().any(|t| self.replay.subsumes(t, &cex)) {
                self.cex_subsumed += 1;
                return;
            }
            let before = self.cached.len();
            self.cached.retain(|t| !self.replay.subsumes(&cex, t));
            self.cex_subsumed += (before - self.cached.len()) as u64;
        }
        self.cached.push(cex);
    }

    fn exchange(&mut self, round: u64) -> (u64, u64) {
        self.verifier.exchange_clauses(round)
    }

    fn step(
        &mut self,
        deadline: Option<Instant>,
        cancel: &Arc<AtomicBool>,
    ) -> StepReport<CcaSpec, Trace> {
        if cancel.load(Ordering::Relaxed) || deadline.is_some_and(|d| Instant::now() >= d) {
            return StepReport::bare(StepOutcome::Interrupted);
        }
        let interrupt = Interrupt { deadline, cancel: Some(cancel.clone()) };

        let gen_start = Instant::now();
        let proposal = self.generator.propose_interruptible(&interrupt);
        let mut generator_time = gen_start.elapsed();
        let spec = match proposal {
            Proposal::Candidate(spec) => spec,
            Proposal::Exhausted => {
                return StepReport { generator_time, ..StepReport::bare(StepOutcome::Exhausted) }
            }
            Proposal::Interrupted => {
                return StepReport { generator_time, ..StepReport::bare(StepOutcome::Interrupted) }
            }
        };

        // Replay prefilter over the broadcast cache: a known trace that
        // kills the candidate saves a verifier call. Learning it pins the
        // kill into the generator for the rest of this shard.
        let hit = self.cached.iter().find(|t| self.replay.refutes(&spec, t)).cloned();
        if let Some(trace) = hit {
            let learn_start = Instant::now();
            self.learn_in_shard(&spec, trace);
            generator_time += learn_start.elapsed();
            return StepReport {
                replay_hits: 1,
                generator_time,
                ..StepReport::bare(StepOutcome::Refuted)
            };
        }

        let ver_start = Instant::now();
        let verdict = self.verifier.verify_interruptible(&spec, &interrupt);
        let verifier_time = ver_start.elapsed();
        match verdict {
            Verdict::Pass => StepReport {
                verifier_calls: 1,
                generator_time,
                verifier_time,
                ..StepReport::bare(StepOutcome::Solution(spec))
            },
            Verdict::Fail(trace) => {
                let learn_start = Instant::now();
                self.learn_in_shard(&spec, trace.clone());
                self.cache_cex(trace.clone());
                generator_time += learn_start.elapsed();
                StepReport {
                    new_cexs: vec![trace],
                    verifier_calls: 1,
                    generator_time,
                    verifier_time,
                    ..StepReport::bare(StepOutcome::Refuted)
                }
            }
            Verdict::Timeout => StepReport {
                verifier_calls: 1,
                generator_time,
                verifier_time,
                ..StepReport::bare(StepOutcome::Interrupted)
            },
        }
    }
}

fn synthesize_serial(opts: &SynthOptions) -> SynthResult {
    let mut generator = make_generator(opts);
    let replayer = make_replay(opts);
    let replay = |c: &CcaSpec, cex: &Trace| replayer.refutes(c, cex);
    let mut verifier = VerAdapter::new(make_verifier(opts));
    let mut run =
        ccmatic_cegis::run_with_replay(&mut generator, &mut verifier, replay, &opts.budget);
    run.stats.regions_pruned = generator.inner.regions_pruned;
    run.stats.cex_subsumed = generator.cex_subsumed;
    SynthResult {
        outcome: run.outcome,
        stats: run.stats,
        verifier_probes: verifier.inner.solver_probes,
        cert_audit: verifier.inner.cert_audit,
        workers: Vec::new(),
    }
}

fn synthesize_portfolio(opts: &SynthOptions) -> SynthResult {
    let shards = Arc::new(shard_plan(&opts.shape, opts.threads));
    // Clause sharing requires identical base encodings (and thus variable
    // numbering) across workers — only the incremental path has one.
    let exchange = opts.incremental.then(|| Arc::new(ClauseExchange::new(opts.threads)));
    let mut workers: Vec<CcaWorker> = (0..opts.threads)
        .map(|w| {
            let search = SearchConfig::diversified(opts.seed, w);
            let mut generator = SmtGenerator::new_with_config(
                opts.shape.clone(),
                opts.net.clone(),
                opts.thresholds.clone(),
                opts.mode.feasibility(),
                search.clone(),
            );
            generator.set_region_pruning(opts.region_pruning);
            let mut verifier = CcaVerifier::new(verify_config(opts, search));
            if let Some(ex) = &exchange {
                verifier.attach_exchange(ex.clone(), w);
            }
            CcaWorker {
                generator,
                verifier,
                replay: make_replay(opts),
                shards: shards.clone(),
                cached: Vec::new(),
                shard_learned: Vec::new(),
                subsume: opts.region_pruning,
                cex_subsumed: 0,
            }
        })
        .collect();
    let mut run = ccmatic_cegis::run_portfolio(&mut workers, shards.len(), &opts.budget);
    run.stats.regions_pruned = workers.iter().map(|w| w.generator.regions_pruned).sum();
    run.stats.cex_subsumed = workers.iter().map(|w| w.cex_subsumed).sum();
    let verifier_probes = workers.iter().map(|w| w.verifier.solver_probes).sum();
    let mut cert_audit = CertAudit::default();
    for w in &workers {
        let a = w.verifier.cert_audit;
        cert_audit.checked += a.checked;
        cert_audit.clauses += a.clauses;
        cert_audit.bytes += a.bytes;
        cert_audit.check_ns += a.check_ns;
    }
    SynthResult {
        outcome: run.outcome,
        stats: run.stats,
        verifier_probes,
        cert_audit,
        workers: run.workers,
    }
}

/// Run CEGIS until the first solution (or exhaustion/budget).
///
/// `opts.threads == 1` — or a search space below `opts.dispatch_min` —
/// runs the serial loop with the concrete replay prefilter; otherwise the
/// space is split into coefficient-prefix shards and `opts.threads`
/// diversified workers race over them through
/// [`ccmatic_cegis::run_portfolio`], sharing counterexamples (and, on the
/// incremental path, learned clauses) as they go.
pub fn synthesize(opts: &SynthOptions) -> SynthResult {
    if opts.threads <= 1 || opts.shape.search_space_size() < opts.dispatch_min {
        synthesize_serial(opts)
    } else {
        synthesize_portfolio(opts)
    }
}

/// Serial CEGIS warm-started from externally found counterexamples —
/// the fuzzer's feedback path. Each `(refuted, trace)` seed is re-gated
/// through the replay semantics of *this* configuration: seeds that still
/// refute their candidate are asserted into the generator before the first
/// proposal (counted in `stats.warm_traces_seeded`), the rest are demoted
/// to the replay prefilter (`stats.warm_traces_rejected`). This mirrors
/// the sweep's cross-point warm start ([`crate::enumerate`]), so a seed
/// can come from a different threshold point — or from a simulator — and
/// still be used soundly.
pub fn synthesize_seeded(opts: &SynthOptions, seeds: &[(CcaSpec, Trace)]) -> SynthResult {
    use ccmatic_cegis::Generator as _;
    let mut generator = make_generator(opts);
    let replayer = make_replay(opts);
    let mut verifier = VerAdapter::new(make_verifier(opts));
    let mut warm_seeded = 0u64;
    let mut warm_rejected = 0u64;
    let mut replay_seeds: Vec<Trace> = Vec::new();
    // Fuzz targets need not live in this run's search space (e.g. a broken
    // γ outside the coefficient domain); the region-pruning BFS around a
    // refuted point only makes sense for representable candidates, so
    // off-grid seeds assert their trace constraint alone.
    let domain = opts.shape.domain.values();
    let on_grid = |c: &CcaSpec| {
        let flat = c.flat();
        flat.len() == opts.shape.num_coefficients() && flat.iter().all(|v| domain.contains(v))
    };
    for (refuted, trace) in seeds {
        if replayer.refutes(refuted, trace) {
            if on_grid(refuted) {
                generator.learn(refuted, trace);
            } else {
                generator.inner.learn(trace);
            }
            warm_seeded += 1;
        } else {
            warm_rejected += 1;
            replay_seeds.push(trace.clone());
        }
    }
    let replay = |c: &CcaSpec, cex: &Trace| replayer.refutes(c, cex);
    let mut run = ccmatic_cegis::run_with_replay_seeded(
        &mut generator,
        &mut verifier,
        replay,
        &opts.budget,
        replay_seeds,
    );
    run.stats.warm_traces_seeded = warm_seeded;
    run.stats.warm_traces_rejected = warm_rejected;
    run.stats.regions_pruned = generator.inner.regions_pruned;
    run.stats.cex_subsumed = generator.cex_subsumed;
    SynthResult {
        outcome: run.outcome,
        stats: run.stats,
        verifier_probes: verifier.inner.solver_probes,
        cert_audit: verifier.inner.cert_audit,
        workers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::CoeffDomain;
    use ccmatic_num::int;
    use std::time::Duration;

    /// A reduced configuration that keeps unit-test times low: shorter
    /// horizon and lookback 3 (RoCC needs taps at t−1 and t−3, so lookback
    /// 3 still contains it: 3³·... candidates).
    fn quick_opts(mode: OptMode) -> SynthOptions {
        SynthOptions {
            shape: TemplateShape { lookback: 3, use_cwnd: false, domain: CoeffDomain::Small },
            net: NetConfig {
                horizon: 6,
                history: 4,
                link_rate: Rat::one(),
                jitter: 1,
                buffer: None,
            },
            thresholds: Thresholds::default(),
            mode,
            budget: Budget { max_iterations: 400, max_wall: Duration::from_secs(240) },
            wce_precision: Rat::new(1i64.into(), 2i64.into()),
            incremental: true,
            threads: 1,
            seed: 0,
            dispatch_min: DEFAULT_DISPATCH_MIN,
            certify: false,
            region_pruning: true,
            theory_sync: true,
        }
    }

    #[test]
    fn dominated_serial_trace_is_subsumed_before_assertion() {
        use ccmatic_cegis::Generator as _;
        let opts = quick_opts(OptMode::RangePruningWce);
        let mut gen = make_generator(&opts);
        let cand = CcaSpec::zero(&opts.shape);

        // A hand-built counterexample to the zero CCA: nothing is ever
        // sent or served, so the floors force the link to waste the whole
        // token line (W(t) = C·(t+h)) and utilization is zero.
        let (t_min, t_max) = (opts.net.t_min(), opts.net.t_max());
        let h = opts.net.history as i64;
        let len = (t_max - t_min + 1) as usize;
        let zeros = vec![Rat::zero(); len];
        let cex = Trace {
            t_min,
            t_max,
            a: zeros.clone(),
            s: zeros.clone(),
            w: (t_min..=t_max).map(|t| int(t + h)).collect(),
            l: zeros.clone(),
            cwnd: zeros,
        };
        gen.learn(&cand, &cex);
        assert_eq!(gen.cex_subsumed, 0);

        // A second probe's trace: same service schedule and pre-history,
        // different replayed arrivals, and a differently-slacked waste
        // schedule — exactly how equal-service counterexamples from
        // distinct candidates used to differ before canonicalization.
        let mut other = cex.clone();
        other.a[len - 1] = int(1);
        let ceiling = int(t_max + h);
        for i in (h as usize)..len {
            other.w[i] = ceiling.clone();
        }
        assert_ne!(other, cex);
        gen.learn(&cand, &other);
        assert_eq!(gen.cex_subsumed, 1, "dominated serial trace must be dropped, not asserted");
    }

    #[test]
    fn certified_synthesis_checks_every_unsat_verdict() {
        let opts = SynthOptions { certify: true, ..quick_opts(OptMode::RangePruningWce) };
        let result = synthesize(&opts);
        let Outcome::Solution(_) = result.outcome else { panic!("no solution") };
        // The accepting Pass verdict (and every certified infeasibility
        // probe before it) must have been replayed by the checker.
        assert!(result.cert_audit.checked >= 1, "accepting verdict must be certified");
        assert!(result.cert_audit.bytes > 0);
    }

    #[test]
    fn synthesis_finds_a_working_cca_with_rp_wce() {
        let opts = quick_opts(OptMode::RangePruningWce);
        let result = synthesize(&opts);
        match result.outcome {
            Outcome::Solution(spec) => {
                // Sound by construction, but double-check with a fresh
                // verifier.
                let mut v = CcaVerifier::new(VerifyConfig {
                    net: opts.net.clone(),
                    thresholds: opts.thresholds.clone(),
                    worst_case: false,
                    wce_precision: opts.wce_precision.clone(),
                    incremental: true,
                    certify: false,
                    search: SearchConfig::default(),
                    theory_sync: true,
                });
                assert!(v.verify(&spec).is_ok(), "synthesized CCA failed re-verification: {spec}");
            }
            other => panic!("expected a solution, got {other:?}"),
        }
        assert!(result.stats.iterations >= 1);
    }

    #[test]
    fn synthesized_solution_resembles_rocc() {
        // In the small no-cwnd space the survivors are RoCC-like: rate
        // taps that sum to ~0 with a positive additive term, i.e. cwnd ≈
        // bytes delivered over a recent window + constant.
        let opts = quick_opts(OptMode::RangePruningWce);
        let result = synthesize(&opts);
        let Outcome::Solution(spec) = result.outcome else { panic!("no solution") };
        let tap_sum = spec.beta.iter().fold(Rat::zero(), |acc, b| &acc + b);
        assert!(tap_sum.is_zero(), "rate taps should cancel (rate-proportional rule), got {spec}");
        assert!(spec.gamma > int(0), "needs a positive additive term, got {spec}");
    }

    #[test]
    fn shard_plan_covers_the_space_and_scales_with_workers() {
        let shape = TemplateShape { lookback: 3, use_cwnd: false, domain: CoeffDomain::Small };
        // One worker: a single-coefficient prefix, 3 shards.
        let small = shard_plan(&shape, 1);
        assert_eq!(small.len(), 3);
        assert!(small.iter().all(|p| p.len() == 1));
        // Four workers: 3 < 4, so the prefix grows to 2 coefficients.
        let wide = shard_plan(&shape, 4);
        assert_eq!(wide.len(), 9);
        assert!(wide.iter().all(|p| p.len() == 2));
        // Every shard is distinct.
        for i in 0..wide.len() {
            for j in (i + 1)..wide.len() {
                assert_ne!(wide[i], wide[j]);
            }
        }
    }

    #[test]
    fn shard_plan_prefix_never_consumes_the_whole_template() {
        // 2 coefficients total (β1, γ): even with absurd worker counts the
        // prefix is capped at 1 coefficient, leaving the generator a real
        // sub-space per shard.
        let shape = TemplateShape { lookback: 1, use_cwnd: false, domain: CoeffDomain::Small };
        let plan = shard_plan(&shape, 64);
        assert_eq!(plan.len(), 3);
        assert!(plan.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn tiny_spaces_dispatch_serially_even_with_many_threads() {
        // 3⁴ = 81 < DEFAULT_DISPATCH_MIN: the dispatcher must fall back to
        // the serial loop, so the result carries no per-worker stats.
        let opts = SynthOptions { threads: 4, ..quick_opts(OptMode::RangePruningWce) };
        assert!(opts.shape.search_space_size() < opts.dispatch_min);
        let result = synthesize(&opts);
        let Outcome::Solution(_) = result.outcome else { panic!("no solution") };
        assert!(result.workers.is_empty(), "serial fallback must not spin up workers");
    }
}
