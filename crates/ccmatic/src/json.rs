//! A minimal JSON value + serializer/parser, shared by the persistent
//! result cache ([`crate::cache`]) and — via a re-export — the bench
//! binaries' machine-readable `BENCH_*.json` files, without pulling a
//! serialization dependency into the workspace.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (iteration counts, probe counts).
    UInt(u64),
    /// A float (wall-clock seconds). Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (`UInt` coerces; everything else is `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document — the inverse of [`Json::render`], for the
    /// regression tooling that diffs committed `BENCH_*.json` artifacts
    /// against fresh runs. Numbers parse as `UInt` when they are plain
    /// non-negative integers and as `Num` otherwise; any trailing
    /// non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        // Bulk-copy runs of plain ASCII first: cache entries embed
        // megabyte certificate blobs, and validating the whole remaining
        // input per character would make parsing quadratic.
        let start = *pos;
        while matches!(b.get(*pos), Some(&c) if c != b'"' && c != b'\\' && c.is_ascii()) {
            *pos += 1;
        }
        if *pos > start {
            out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
        }
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // One non-ASCII scalar: decode from a 4-byte window (the
                // input came from a &str, so a boundary cut can't happen).
                let end = (*pos + 4).min(b.len());
                let s = match std::str::from_utf8(&b[*pos..end]) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&b[*pos..*pos + e.valid_up_to()])
                            .expect("validated prefix")
                    }
                    Err(e) => return Err(e.to_string()),
                };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Json::UInt(n));
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// Serialize `value` to `path`, logging the path to stderr.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    std::fs::write(path, value.render())?;
    eprintln!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::Str("table1".into())),
            ("wall_s", Json::Num(1.5)),
            ("solved", Json::Bool(true)),
            ("cells", Json::Arr(vec![Json::UInt(7), Json::Null])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"table1\""));
        assert!(s.contains("\"wall_s\": 1.5"));
        assert!(s.contains("\"cells\": ["));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render(), "{}\n");
    }

    #[test]
    fn parse_roundtrips_render() {
        let v = Json::obj(vec![
            ("name", Json::Str("table1\n\"quoted\"".into())),
            ("wall_s", Json::Num(1.5)),
            ("neg", Json::Num(-0.25)),
            ("count", Json::UInt(7)),
            ("solved", Json::Bool(true)),
            ("nothing", Json::Null),
            ("cells", Json::Arr(vec![Json::UInt(7), Json::Null, Json::Obj(vec![])])),
            ("empty", Json::Arr(vec![])),
        ]);
        let parsed = Json::parse(&v.render()).expect("roundtrip parse");
        assert_eq!(parsed.render(), v.render());
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(7.0));
        assert_eq!(parsed.get("wall_s").and_then(Json::as_f64), Some(1.5));
        assert_eq!(parsed.get("solved").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("table1\n\"quoted\""));
        assert_eq!(parsed.get("cells").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn large_string_parses_in_linear_time() {
        // A certificate-sized blob (1 MB) with escapes and non-ASCII mixed
        // in; the quadratic per-char validation this guards against took
        // ~20 s here.
        let blob = "a 12 strict 3/4 v0:-7/2 β\n".repeat(40_000);
        let doc = Json::obj(vec![("cert", Json::Str(blob.clone()))]).render();
        let t0 = std::time::Instant::now();
        let parsed = Json::parse(&doc).expect("parse");
        assert!(t0.elapsed() < std::time::Duration::from_secs(5), "string parse is quadratic");
        assert_eq!(parsed.get("cert").and_then(Json::as_str), Some(blob.as_str()));
    }

    #[test]
    fn parse_scientific_and_float_numbers() {
        let v = Json::parse("[1e3, 2.5, -4, 18446744073709551615]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(1000.0));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_f64(), Some(-4.0));
        assert!(matches!(items[3], Json::UInt(u64::MAX)));
    }
}
