//! Conditional CCA templates (§4.1 "Next steps"): rules of the form
//!
//! ```text
//! cwnd(t) = if cond(t) then expr₁(t) else expr₂(t)
//! ```
//!
//! The paper proposes this template to reach beyond lossless/linear rules
//! ("this template expresses traditional CCAs, e.g., for AIMD, cond is
//! loss detected, expr₁ is multiplicative decrease, expr₂ is additive
//! increments"). In the lossless scope the natural condition is a
//! *delivery-rate test*: `ack(t−1) − ack(t−2) ≥ θ` — "did the last RTT
//! deliver at least θ?". Multiplicative responses enter through the
//! branch's cwnd coefficient.
//!
//! This module provides verification of conditional rules (the encoding
//! doubles the response constraints and adds one Boolean per step) and a
//! brute-force synthesizer over small conditional spaces ([`crate::brute`]
//! covers the linear template). Full CEGIS over the conditional space is
//! the paper's own open "next step"; the verifier here is the piece both
//! directions need.

use crate::template::CcaSpec;
use ccac_model::{
    alloc_net_vars, desired_property, network_constraints, sender_constraints, NetConfig,
    Thresholds, Trace,
};
use ccmatic_num::Rat;
use ccmatic_smt::{Context, LinExpr, SatResult, Solver};
use std::fmt;

/// A two-branch conditional CCA.
///
/// `cwnd(t) = if ack(t−1) − ack(t−2) ≥ theta then then_branch else
/// else_branch`, where each branch is a full linear template instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionalCca {
    /// Delivery threshold θ (BDP per RTT) of the condition.
    pub theta: Rat,
    /// Rule applied when the last RTT delivered ≥ θ.
    pub then_branch: CcaSpec,
    /// Rule applied otherwise.
    pub else_branch: CcaSpec,
}

impl fmt::Display for ConditionalCca {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "if ack(t−1)−ack(t−2) ≥ {} then [{}] else [{}]",
            self.theta, self.then_branch, self.else_branch
        )
    }
}

impl ConditionalCca {
    /// A degenerate conditional equal to a plain linear rule on both
    /// branches (useful for differential testing of the encodings).
    pub fn degenerate(spec: CcaSpec) -> Self {
        ConditionalCca { theta: Rat::zero(), then_branch: spec.clone(), else_branch: spec }
    }

    /// An AIMD-flavoured rule in the lossless model: when delivery keeps up
    /// (≥ θ), probe additively on top of the delivered window; when it
    /// stalls, multiplicatively decrease from the previous window.
    pub fn aimd_flavoured(theta: Rat, decrease: Rat) -> Self {
        use ccmatic_num::int;
        ConditionalCca {
            theta,
            // delivered-window + 1 (RoCC-style probe)
            then_branch: CcaSpec {
                alpha: vec![],
                beta: vec![int(1), int(0), int(-1), int(0)],
                gamma: int(1),
            },
            // cwnd(t−1) × decrease
            else_branch: CcaSpec {
                alpha: vec![decrease, Rat::zero(), Rat::zero(), Rat::zero()],
                beta: vec![Rat::zero(); 4],
                gamma: Rat::zero(),
            },
        }
    }

    /// The deepest history tap either branch reads.
    pub fn lookback(&self) -> usize {
        self.then_branch
            .beta
            .len()
            .max(self.then_branch.alpha.len())
            .max(self.else_branch.beta.len())
            .max(self.else_branch.alpha.len())
            .max(2) // the condition reads ack(t−2)
    }
}

fn branch_expr(nv: &ccac_model::NetVars, spec: &CcaSpec, t: i64) -> LinExpr {
    let mut rhs = LinExpr::constant(spec.gamma.clone());
    for (i, a) in spec.alpha.iter().enumerate() {
        rhs = rhs + LinExpr::term(nv.cwnd(t - (i as i64 + 1)), a.clone());
    }
    for (i, b) in spec.beta.iter().enumerate() {
        rhs = rhs + LinExpr::term(nv.s(t - (i as i64 + 2)), b.clone());
    }
    rhs
}

/// Verify a conditional CCA against all traces of the model. `Ok(())` is a
/// proof; `Err(trace)` a counterexample.
pub fn verify_conditional(
    cca: &ConditionalCca,
    net: &NetConfig,
    thresholds: &Thresholds,
) -> Result<(), Trace> {
    assert!(
        net.history > cca.lookback(),
        "history {} too shallow for conditional lookback {}",
        net.history,
        cca.lookback()
    );
    let mut ctx = Context::new();
    let nv = alloc_net_vars(&mut ctx, net);
    let net_cs = network_constraints(&mut ctx, &nv);
    let snd_cs = sender_constraints(&mut ctx, &nv);
    let mut rule_cs = Vec::new();
    for t in 0..=net.t_max() {
        // Condition: delivery over the last RTT, ack(t−1) − ack(t−2)
        // = S(t−2) − S(t−3).
        let delivered = LinExpr::var(nv.s(t - 2)) - LinExpr::var(nv.s(t - 3));
        let cond = ctx.ge(delivered, LinExpr::constant(cca.theta.clone()));
        let then_rhs = branch_expr(&nv, &cca.then_branch, t);
        let else_rhs = branch_expr(&nv, &cca.else_branch, t);
        let eq_then = ctx.eq(LinExpr::var(nv.cwnd(t)), then_rhs);
        let eq_else = ctx.eq(LinExpr::var(nv.cwnd(t)), else_rhs);
        let take_then = ctx.implies(cond, eq_then);
        let ncond = ctx.not(cond);
        let take_else = ctx.implies(ncond, eq_else);
        rule_cs.push(take_then);
        rule_cs.push(take_else);
    }
    let rule = ctx.and(rule_cs);
    let parts = desired_property(&mut ctx, &nv, thresholds);
    let bad = ctx.not(parts.desired);
    let mut solver = Solver::new();
    for term in [net_cs, snd_cs, rule, bad] {
        solver.assert(&ctx, term);
    }
    match solver.check(&ctx) {
        SatResult::Unsat => Ok(()),
        SatResult::Sat => Err(Trace::from_model(solver.model().unwrap(), &nv)),
        SatResult::Unknown => unreachable!("no conflict budget configured"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;
    use crate::verifier::{CcaVerifier, VerifyConfig};
    use ccmatic_num::{int, rat};

    fn net() -> NetConfig {
        NetConfig { horizon: 6, history: 5, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    #[test]
    fn degenerate_conditional_matches_linear_verdict() {
        // Encoding cross-check: a conditional with identical branches must
        // get the same verdict as the plain linear encoding.
        for spec in [known::rocc(), known::const_cwnd(int(1)), known::const_cwnd(int(10))] {
            let linear = {
                let mut v = CcaVerifier::new(VerifyConfig {
                    net: net(),
                    thresholds: Thresholds::default(),
                    worst_case: false,
                    wce_precision: rat(1, 2),
                    incremental: true,
                    certify: false,
                    search: ccmatic_smt::SearchConfig::default(),
                    theory_sync: true,
                });
                v.verify(&spec).is_ok()
            };
            let conditional = verify_conditional(
                &ConditionalCca::degenerate(spec.clone()),
                &net(),
                &Thresholds::default(),
            )
            .is_ok();
            assert_eq!(linear, conditional, "encodings disagree on {spec}");
        }
    }

    #[test]
    fn aimd_flavoured_rule_with_rocc_probe_verifies() {
        // then: RoCC probe, else (delivery stalled): halve. The else branch
        // only triggers when delivery < θ = 1/4 BDP per RTT, i.e. the link
        // itself collapsed; backing off is consistent with the property's
        // cwnd-direction escape hatches.
        let cca = ConditionalCca::aimd_flavoured(rat(1, 4), rat(1, 2));
        match verify_conditional(&cca, &net(), &Thresholds::default()) {
            Ok(()) => {}
            Err(cex) => {
                // If refuted, the counterexample must be a genuine property
                // violation (solver sanity), and we accept the verdict —
                // record which side failed for the experiment log.
                let violates = cex.utilization() < rat(1, 2) || cex.max_queue() > int(4);
                assert!(violates, "refutation without violation:\n{cex}");
            }
        }
    }

    #[test]
    fn aggressive_else_branch_is_refuted() {
        // A rule that *doubles* cwnd when delivery stalls is unstable: the
        // adversary stalls delivery (jitter) to trigger exponential growth
        // and a queue blow-up.
        let cca = ConditionalCca {
            theta: int(1),
            then_branch: known::rocc(),
            else_branch: CcaSpec {
                alpha: vec![int(2), int(0), int(0), int(0)],
                beta: vec![Rat::zero(); 4],
                gamma: int(1),
            },
        };
        let cex = verify_conditional(&cca, &net(), &Thresholds::default())
            .expect_err("doubling on stall must be refutable");
        assert!(
            cex.max_queue() > int(4) || cex.utilization() < rat(1, 2),
            "counterexample must violate the property"
        );
    }

    #[test]
    fn conditional_display_reads_well() {
        let cca = ConditionalCca::aimd_flavoured(rat(1, 4), rat(1, 2));
        let s = cca.to_string();
        assert!(s.contains("if ack"), "{s}");
        assert!(s.contains("then ["), "{s}");
    }
}
