//! Concrete counterexample replay: re-run a learned trace against a
//! candidate's rule directly, with no SMT solver.
//!
//! The generator's `learn` asserts `σ(A, τ) = feasible(A, τ) ⟹
//! desired(A, τ)` symbolically over coefficient variables. For a *concrete*
//! candidate the same formula is just exact rational arithmetic: evaluate
//! the template recursion and the sender max-rule on the trace's service
//! schedule, then check feasibility and the desired property. This module
//! mirrors [`SmtGenerator::learn`](crate::generator::SmtGenerator::learn)
//! constraint for constraint — the pair is pinned together by the
//! agreement tests below, which replay every verifier counterexample
//! against the candidate it refuted.
//!
//! The payoff is the speculative engine's prefilter: a queued candidate
//! that an already-learned trace refutes dies for a few hundred rational
//! operations instead of a solver probe. On the serial path (where the
//! generator has already digested every trace) a replay hit is impossible
//! by construction, which makes the prefilter double as a cross-check of
//! the generator encoding.

use crate::generator::FeasibilityMode;
use crate::template::CcaSpec;
use ccac_model::{NetConfig, Thresholds, Trace};
use ccmatic_num::Rat;

/// Replays traces against candidates under one network/threshold/mode
/// configuration (must match the generator's).
#[derive(Clone, Debug)]
pub struct TraceReplay {
    net: NetConfig,
    thresholds: Thresholds,
    mode: FeasibilityMode,
}

impl TraceReplay {
    /// Build a replayer. `mode` must match the generator's feasibility
    /// encoding or the prefilter would disagree with `learn`.
    pub fn new(net: NetConfig, thresholds: Thresholds, mode: FeasibilityMode) -> Self {
        TraceReplay { net, thresholds, mode }
    }

    /// `true` iff `cex` concretely refutes `spec`: the candidate's
    /// behaviour on the trace's schedule is feasible yet undesired —
    /// exactly `¬σ(spec, cex)` from the generator's learned constraint.
    /// Traces of a different shape (or too shallow for the candidate's
    /// lookback) make no claim and return `false`.
    pub fn refutes(&self, spec: &CcaSpec, cex: &Trace) -> bool {
        let t_end = self.net.t_max();
        if cex.t_min != self.net.t_min() || cex.t_max != t_end {
            return false;
        }
        // Deepest sample: β taps need S(t−i−2), α taps cwnd(t−i−1).
        let deepest = (spec.beta.len() as i64 + 1).max(spec.alpha.len() as i64).max(1);
        if cex.t_min > -deepest {
            return false;
        }

        // Template recursion: cwnd(t) = γ + Σᵢ βᵢ·S_τ(t−i−2)
        // + Σᵢ αᵢ·cwnd(t−i−1), with negative-index cwnd a trace constant.
        let mut cwnd: Vec<Rat> = Vec::with_capacity(t_end as usize + 1);
        let cw = |cwnd: &[Rat], t: i64| -> Rat {
            if t >= 0 {
                cwnd[t as usize].clone()
            } else {
                cex.cwnd_at(t).clone()
            }
        };
        for t in 0..=t_end {
            let mut v = spec.gamma.clone();
            for (i, b) in spec.beta.iter().enumerate() {
                v = &v + &(b * cex.s_at(t - i as i64 - 2));
            }
            for (i, a) in spec.alpha.iter().enumerate() {
                v = &v + &(a * &cw(&cwnd, t - i as i64 - 1));
            }
            cwnd.push(v);
        }

        // Sender rule: A(t) = max(A(t−1), S_τ(t−1) + cwnd(t)).
        let mut arr: Vec<Rat> = Vec::with_capacity(t_end as usize + 1);
        let av = |arr: &[Rat], t: i64| -> Rat {
            if t >= 0 {
                arr[t as usize].clone()
            } else {
                cex.a_at(t).clone()
            }
        };
        for t in 0..=t_end {
            let prev = av(&arr, t - 1);
            let window = cex.s_at(t - 1) + &cwnd[t as usize];
            arr.push(prev.max(window));
        }

        // Feasibility of the trace against this candidate's behaviour.
        let history = self.net.history as i64;
        let feasible = match self.mode {
            FeasibilityMode::Baseline => (0..=t_end).all(|t| &arr[t as usize] == cex.a_at(t)),
            FeasibilityMode::RangePruning => (0..=t_end).all(|t| {
                if &arr[t as usize] < cex.s_at(t) {
                    return false;
                }
                if cex.waste_increased(t) {
                    let tokens = &(&self.net.link_rate * &Rat::from(t + history)) - cex.w_at(t);
                    if arr[t as usize] > tokens {
                        return false;
                    }
                }
                true
            }),
        };
        if !feasible {
            return false;
        }

        // Desired property with trace-constant S and replayed A/cwnd.
        let th = &self.thresholds;
        let work = cex.s_at(t_end) - cex.s_at(0);
        let target = &(&th.util * &self.net.link_rate) * &Rat::from(t_end);
        let util_ok = work >= target;
        let cwnd_up = cw(&cwnd, t_end) > cw(&cwnd, 0);
        let cwnd_down = cw(&cwnd, t_end) < cw(&cwnd, 0);
        let queue_ok = (0..=t_end).all(|t| &arr[t as usize] - cex.s_at(t) <= th.delay);
        let q_end = &arr[t_end as usize] - cex.s_at(t_end);
        let q_start = &arr[0] - cex.s_at(0);
        let queue_down = q_end < q_start;
        let desired = (util_ok || cwnd_up) && (queue_ok || queue_down || cwnd_down);
        !desired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;
    use crate::verifier::{CcaVerifier, VerifyConfig};
    use ccmatic_num::int;

    fn net() -> NetConfig {
        NetConfig { horizon: 6, history: 5, link_rate: Rat::one(), jitter: 1, buffer: None }
    }

    fn verifier(worst_case: bool) -> CcaVerifier {
        CcaVerifier::new(VerifyConfig {
            net: net(),
            thresholds: Thresholds::default(),
            worst_case,
            wce_precision: Rat::new(1i64.into(), 2i64.into()),
            incremental: true,
            certify: false,
            search: ccmatic_smt::SearchConfig::default(),
        })
    }

    /// Every counterexample the verifier produces must replay as a
    /// refutation of the candidate it broke — in both feasibility modes
    /// (the verifier's trace satisfies the full network model, which
    /// implies both encodings' feasibility).
    #[test]
    fn verifier_counterexamples_replay_as_refutations() {
        let broken =
            [known::const_cwnd(Rat::zero()), known::const_cwnd(int(20)), known::copy_cwnd()];
        for worst_case in [false, true] {
            let mut v = verifier(worst_case);
            for spec in &broken {
                let cex = v.verify(spec).expect_err("known-broken candidate");
                for mode in [FeasibilityMode::Baseline, FeasibilityMode::RangePruning] {
                    let replay = TraceReplay::new(net(), Thresholds::default(), mode);
                    assert!(
                        replay.refutes(spec, &cex),
                        "replay missed its own counterexample: {spec} (wce={worst_case}, {mode:?})"
                    );
                }
            }
        }
    }

    /// A certified candidate must never be refuted by any trace.
    #[test]
    fn replay_never_refutes_a_solution() {
        let rocc = known::rocc();
        let mut v = verifier(true);
        assert!(v.verify(&rocc).is_ok());
        let replay = TraceReplay::new(net(), Thresholds::default(), FeasibilityMode::RangePruning);
        // Collect traces by refuting other candidates, then replay them
        // against RoCC.
        for broken in [known::const_cwnd(Rat::zero()), known::const_cwnd(int(20))] {
            let cex = v.verify(&broken).expect_err("broken");
            assert!(
                !replay.refutes(&rocc, &cex),
                "replay refuted a verified solution on {broken}'s counterexample"
            );
        }
    }

    /// Shape-mismatched traces make no refutation claim.
    #[test]
    fn mismatched_trace_shape_is_not_a_refutation() {
        let mut v = verifier(false);
        let cex = v.verify(&known::const_cwnd(Rat::zero())).expect_err("broken");
        let other =
            NetConfig { horizon: 4, history: 3, link_rate: Rat::one(), jitter: 1, buffer: None };
        let replay = TraceReplay::new(other, Thresholds::default(), FeasibilityMode::RangePruning);
        assert!(!replay.refutes(&known::const_cwnd(Rat::zero()), &cex));
    }

    /// The replayed cwnd recursion matches the trace's own cwnd when the
    /// trace was generated under the same template (sanity of the
    /// recursion's indexing).
    #[test]
    fn replay_recursion_matches_trace_cwnd() {
        let spec = known::const_cwnd(int(20));
        let mut v = verifier(false);
        let cex = v.verify(&spec).expect_err("broken");
        // const_cwnd: replayed cwnd must be exactly 20 everywhere, matching
        // the trace's enforced template values.
        for t in 0..=cex.t_max {
            assert_eq!(cex.cwnd_at(t), &int(20));
        }
    }
}
